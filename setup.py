"""Setuptools shim.

Kept so that ``pip install -e .`` and ``python setup.py develop`` work in
offline environments whose setuptools predates PEP 660 editable wheels
(which additionally require the ``wheel`` package). All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
