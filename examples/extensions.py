"""The paper's Section 6 extensions, implemented and demonstrated.

1. Iterative bound refinement (6.2): retry with wider bounds when the
   bounded constraint comes back unsat.
2. Bitvector width reduction (6.4): apply the same underapproximate-
   then-verify contract to *already bounded* constraints.

Run with:  python examples/extensions.py
"""

from repro.core import RefinementStaub, Staub, reduce_and_solve
from repro.bv.solver import solve_bounded_script
from repro.smtlib import parse_script


def refinement_demo():
    print("=== iterative bound refinement (Section 6.2) ===")
    # Start from a deliberately tight user-specified width: the first
    # round comes back bounded-unsat, the loop widens and succeeds.
    script = parse_script(
        "(declare-fun a () Int)(declare-fun b () Int)"
        "(assert (>= a 3))(assert (< (- a b) 0))"
        "(assert (> (+ a b) 62))"
    )
    tight = Staub(width_strategy=5).run(script, budget=1_200_000)
    print(f"fixed width 5: {tight.case} (witness needs more headroom)")
    refined = RefinementStaub(max_rounds=4, initial_width=5).run(
        script, budget=1_200_000
    )
    print(f"refined: {refined.case} after rounds {refined.rounds}")
    print(f"model: {refined.model}")
    print()


def width_reduction_demo():
    print("=== bitvector width reduction (Section 6.4) ===")
    script = parse_script(
        "(declare-fun x () (_ BitVec 24))(declare-fun y () (_ BitVec 24))"
        "(assert (= (bvmul x y) (_ bv77 24)))"
        "(assert (bvsgt x (_ bv1 24)))(assert (bvsgt y x))"
        "(assert (bvslt y (_ bv16 24)))"
    )
    direct = solve_bounded_script(script, max_work=10_000_000)
    print(f"direct 24-bit solve: {direct.status}, work {direct.work}")
    reduced = reduce_and_solve(script, 8, budget=10_000_000)
    print(f"reduced to 8 bits: {reduced.case}, work {reduced.work} "
          f"({direct.work / max(reduced.work, 1):.1f}x cheaper)")
    if reduced.usable:
        model = {k: v.signed for k, v in reduced.model.items()}
        print(f"verified 24-bit model recovered from the 8-bit solve: {model}")


if __name__ == "__main__":
    refinement_demo()
    width_reduction_demo()
