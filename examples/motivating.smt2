; The Section 2 motivating constraint (sum-of-three-cubes family), with
; the smaller target used throughout the reproduction so the native
; pure-Python stack solves it in seconds. 378 = 7^3 + 3^3 + 2^3.
;
; Try:  staub arbitrage --trace trace.jsonl --stats examples/motivating.smt2
;       staub profile trace.jsonl
(set-logic QF_NIA)
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (= (+ (* x x x) (* y y y) (* z z z)) 378))
(check-sat)
