"""Driving the termination-proving client analysis (the paper's RQ3).

Analyzes a handful of while-language programs with the Automizer-like
driver: ranking-function synthesis (QF_LIA via Farkas' lemma) plus
geometric nontermination arguments (QF_NIA), with STAUB applied to every
generated constraint under portfolio semantics.

Run with:  python examples/termination_client.py
"""

from repro.evaluation.runner import to_virtual_seconds
from repro.termination import Automizer, parse_program
from repro.termination.ranking import extract_ranking_function, ranking_constraints
from repro.solver import solve_script

PROGRAMS = {
    "countdown": "x := 48; while (x > 0) { x := x - 3; }",
    "race": "x := 0; y := 60; while (x < y) { x := x + 4; y := y - 1; }",
    "geometric-divergence": "x := 2; while (x > 0) { x := 3 * x; }",
    "spiral-divergence": (
        "x := 900; y := 700; "
        "while (x > 500) { x := 2 * x - 1 * y; y := 2 * y - 700; }"
    ),
    "fixed-point": "x := 7; while (x > 0) { x := x; }",
}


def show_ranking_function(program):
    """If a linear ranking function exists, print it."""
    script = ranking_constraints(program, coefficient_bound=16)
    result = solve_script(script, budget=2_000_000)
    if result.is_sat:
        coefficients, constant = extract_ranking_function(program, result.model)
        terms = [str(constant)] + [
            f"{c}*{name}" for name, c in coefficients.items() if c
        ]
        print(f"    ranking function: r = {' + '.join(terms)}")


def main():
    automizer = Automizer(profile="zorro", use_staub=True)
    for name, source in PROGRAMS.items():
        program = parse_program(source, name)
        print(f"{name}: {source}")
        result = automizer.analyze(program)
        print(f"    verdict: {result.verdict} "
              f"({len(result.queries)} solver queries)")
        if result.verdict == "terminating":
            show_ranking_function(program)
        baseline = to_virtual_seconds(result.baseline_work)
        final = to_virtual_seconds(result.final_work)
        marker = ""
        if result.final_work < result.baseline_work:
            marker = f"  <-- STAUB win ({result.baseline_work / result.final_work:.1f}x)"
        print(f"    solver cost: {baseline:.2f} vs -> {final:.2f} vs{marker}")
        print()


if __name__ == "__main__":
    main()
