"""Quickstart: solve an unbounded constraint with and without STAUB.

Run with:  python examples/quickstart.py
"""

from repro.core import Staub
from repro.core.pipeline import portfolio_time
from repro.evaluation.runner import TIMEOUT_WORK, to_virtual_seconds
from repro.smtlib import parse_script, print_script
from repro.solver import solve_script

CONSTRAINT = """
(set-logic QF_NIA)
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (= (+ (* x y) (* y z) (* x z)) 347))
(assert (> x 0))
(assert (< x y))
(assert (< y z))
(check-sat)
"""


def main():
    script = parse_script(CONSTRAINT)
    print("Input constraint:")
    print(print_script(script))

    # 1. Solve directly with the native unbounded solver (the baseline).
    baseline = solve_script(script, budget=TIMEOUT_WORK, profile="zorro")
    print(f"baseline ({baseline.engine}): {baseline.status} "
          f"in {to_virtual_seconds(baseline.work):.2f} virtual seconds")

    # 2. Run theory arbitrage: infer bounds, translate to bitvectors,
    #    solve the bounded constraint, verify the model exactly.
    staub = Staub()
    report = staub.run(script, budget=TIMEOUT_WORK)
    print(f"STAUB: {report.case} at width {report.width} "
          f"in {to_virtual_seconds(report.total_work):.2f} virtual seconds")
    if report.model is not None:
        print(f"verified model: {report.model}")

    # 3. Portfolio semantics: the user sees the better of the two.
    final = portfolio_time(baseline.work, report)
    print(f"portfolio time: {to_virtual_seconds(final):.2f} virtual seconds "
          f"(speedup {baseline.work / final:.2f}x)")


if __name__ == "__main__":
    main()
