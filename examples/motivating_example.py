"""The paper's Section 2 motivating example, end to end.

Reproduces the three variants of Fig. 1 on a sum-of-three-cubes
constraint and compares their solving costs:

  (a) the unbounded QF_NIA original;
  (b) the bitvector translation with overflow guards (theory arbitrage);
  (c) the original with integer *bounds imposed* but still in QF_NIA --
      the paper's point that bound imposition alone is not the win.

Run with:  python examples/motivating_example.py
"""

from repro.core import Staub
from repro.evaluation.runner import TIMEOUT_WORK, to_virtual_seconds
from repro.smtlib import parse_script, print_script
from repro.solver import solve_script

# The paper's instance is STC_0855 (x^3+y^3+z^3 = 855, solved by 7,8,0).
# We use a smaller target from the same family so the whole script runs
# in seconds on the native pure-Python stack; the shape is identical.
TARGET = 378

ORIGINAL = f"""
(set-logic QF_NIA)
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (= (+ (* x x x) (* y y y) (* z z z)) {TARGET}))
(check-sat)
"""


def bounds_imposed_variant(width):
    """Fig. 1c: same theory, with [-2^(w-1), 2^(w-1)-1] bounds asserted."""
    low = -(1 << (width - 1))
    high = (1 << (width - 1)) - 1
    lines = ["(set-logic QF_NIA)"]
    for name in "xyz":
        lines.append(f"(declare-fun {name} () Int)")
    for name in "xyz":
        lines.append(f"(assert (and (<= {name} {high}) (>= {name} (- {abs(low)}))))")
    lines.append(
        f"(assert (= (+ (* x x x) (* y y y) (* z z z)) {TARGET}))"
    )
    lines.append("(check-sat)")
    return parse_script("\n".join(lines))


def main():
    script = parse_script(ORIGINAL)

    print("=== (a) unbounded original ===")
    baseline = solve_script(script, budget=TIMEOUT_WORK, profile="zorro")
    print(f"zorro: {baseline.status}, {to_virtual_seconds(baseline.work):.2f} vs")
    corvus = solve_script(script, budget=TIMEOUT_WORK, profile="corvus")
    print(f"corvus: {corvus.status}, {to_virtual_seconds(corvus.work):.2f} vs "
          f"({'timeout' if corvus.is_unknown else 'solved'})")

    print("\n=== (b) theory arbitrage (Fig. 1b) ===")
    staub = Staub()
    transformed, inference, _ = staub.transform(script)
    print(f"inference: assumption x = {inference.assumption}, "
          f"[S] = {inference.root}, chosen width = {transformed.width}")
    print("translated constraint (excerpt):")
    for line in print_script(transformed.script).splitlines()[:8]:
        print(f"  {line}")
    report = staub.run(script, budget=TIMEOUT_WORK)
    print(f"STAUB: {report.case}, {to_virtual_seconds(report.total_work):.2f} vs, "
          f"model = {report.model}")

    print("\n=== (c) bounds imposed, same unbounded theory (Fig. 1c) ===")
    bounded_int = bounds_imposed_variant(transformed.width)
    result = solve_script(bounded_int, budget=TIMEOUT_WORK, profile="corvus")
    print(f"corvus with bounds: {result.status}, "
          f"{to_virtual_seconds(result.work):.2f} vs")
    print("\nBound imposition alone does not unlock the bounded-theory "
          "tactics; the theory *switch* does (Section 2 of the paper).")


if __name__ == "__main__":
    main()
