"""A miniature version of the paper's Table 3 over a small suite.

Generates scaled-down QF_NIA and QF_LIA suites, runs both solver
profiles with three width strategies, and prints verified-case counts
and geometric-mean speedups -- the same pipeline the full benchmark
harness (`python -m repro.evaluation.run_all`) uses at scale.

Run with:  python examples/mini_evaluation.py
"""

from repro.evaluation.runner import ExperimentCache
from repro.evaluation.stats import geometric_mean, speedup

LOGICS = ("QF_NIA", "QF_LIA")
STRATEGIES = ("fixed8", "fixed16", "staub")


def main():
    cache = ExperimentCache(seed=7, scale=0.25, timeout=800_000)
    for logic in LOGICS:
        print(f"=== {logic} ({len(cache.suite(logic))} constraints) ===")
        for profile in ("zorro", "corvus"):
            cells = []
            for strategy in STRATEGIES:
                rows = cache.rows(logic, profile, strategy)
                verified = [r for r in rows if r["verified"]]
                overall = geometric_mean(
                    [speedup(r["t_pre"], r["final"]) for r in rows]
                )
                tractability = sum(1 for r in rows if r["tractability"])
                cells.append(
                    f"{strategy}: verified={len(verified):2d} "
                    f"tract={tractability:2d} overall={overall:5.2f}x"
                )
            print(f"  {profile:7s} | " + " | ".join(cells))
        print()
    print("(Run `python -m repro.evaluation.run_all` for the full tables.)")


if __name__ == "__main__":
    main()
