"""RQ2: chaining STAUB with SLOT-style compiler optimization.

Theory arbitrage does more than speed up one solve: by landing in a
bounded theory it unlocks optimizations that only make sense for machine
semantics. This example shows the chain on one constraint:

    unbounded QF_NIA --STAUB--> QF_BV --SLOT--> smaller QF_BV

and compares the bounded solving costs with and without the optimizer.

Run with:  python examples/slot_chaining.py
"""

from repro.bv.solver import solve_bounded_script
from repro.core import Staub
from repro.evaluation.runner import to_virtual_seconds
from repro.slot import optimize_script
from repro.smtlib import parse_script, print_script

# Machine-generated constraints are full of redundancy: mirrored products
# (x*y vs y*x), multiplications by powers of two, and dead guards.
CONSTRAINT = """
(set-logic QF_NIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (= (+ (* x y) (* 8 x)) 235))
(assert (< (* y x) 236))
(assert (> (* x 4) 0))
(assert (> y 0))
(check-sat)
"""


def main():
    script = parse_script(CONSTRAINT)
    staub = Staub()
    transformed, inference, _ = staub.transform(script)
    print(f"STAUB chose width {transformed.width} "
          f"(assumption {inference.assumption}, [S] {inference.root})")

    plain = solve_bounded_script(transformed.script, max_work=4_000_000)
    print(f"bounded solve without SLOT: {plain.status}, "
          f"{plain.cnf_clauses} CNF clauses, "
          f"{to_virtual_seconds(plain.work):.2f} vs")

    optimized, statistics = optimize_script(transformed.script)
    print(f"SLOT pass statistics: {statistics}")
    tuned = solve_bounded_script(optimized, max_work=4_000_000)
    print(f"bounded solve with SLOT:    {tuned.status}, "
          f"{tuned.cnf_clauses} CNF clauses, "
          f"{to_virtual_seconds(tuned.work):.2f} vs")
    if tuned.work < plain.work:
        print(f"SLOT speedup on the bounded side: {plain.work / tuned.work:.2f}x")

    print("\noptimized constraint:")
    print(print_script(optimized))


if __name__ == "__main__":
    main()
