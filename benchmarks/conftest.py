"""Shared fixtures for the benchmark harness.

Each benchmark file regenerates one of the paper's tables or figures at a
reduced scale (so the whole harness runs in minutes); the full-scale run
is ``python -m repro.evaluation.run_all``. Results are printed so the
shape (who wins, by how much, where the crossovers are) can be compared
with the paper -- see EXPERIMENTS.md for the recorded comparison.
"""

import pytest

from repro.evaluation.runner import ExperimentCache

#: Reduced-scale settings shared by the table/figure benchmarks.
BENCH_SCALE = 0.2
BENCH_TIMEOUT = 600_000
BENCH_SEED = 2024


@pytest.fixture(scope="session")
def cache():
    """One shared cache so benchmark files reuse each other's solves."""
    return ExperimentCache(seed=BENCH_SEED, scale=BENCH_SCALE, timeout=BENCH_TIMEOUT)
