"""Benchmark: regenerate Table 2 (tractability improvements).

Paper shape to match: QF_NIA dominates; the enumeration-based profile
(corvus ~ CVC5) gains far more tractability improvements than the
contraction-based one (zorro ~ Z3); STAUB's inferred widths give at least
as many improvements as fixed 16-bit.
"""

from repro.evaluation import table2


def test_table2(benchmark, cache):
    table = benchmark.pedantic(
        table2.tractability_counts, args=(cache,), iterations=1, rounds=1
    )
    print()
    print(table2.render(cache))

    nia = table["QF_NIA"]
    # corvus (CVC5-like) gains more than zorro (Z3-like) on QF_NIA.
    assert nia["corvus"]["staub"] >= nia["zorro"]["staub"]
    # The NIA gains dominate the LRA ones (the paper's zero-LRA row).
    assert nia["corvus"]["staub"] >= table["QF_LRA"]["corvus"]["staub"]
    # Inference is at least as good as the oversized fixed width.
    assert nia["corvus"]["staub"] >= nia["corvus"]["fixed16"]
