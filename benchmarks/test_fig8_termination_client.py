"""Benchmark: Figure 8 / RQ3 -- the termination-proving client.

Paper shape to match (97 benchmarks): a small number of verified cases
(the paper has 8), a multi-x mean speedup on them (2.93x), and a modest
overall mean speedup (1.093x) despite the mostly-unsat constraint stream.
A reduced program count keeps the benchmark quick; the full 97-program
run is in EXPERIMENTS.md.
"""

from repro.evaluation import fig8

PROGRAM_COUNT = 30


def test_fig8_client(benchmark):
    summary = benchmark.pedantic(
        fig8.run_client_experiment,
        kwargs={"profile": "zorro", "budget": 800_000, "count": PROGRAM_COUNT},
        iterations=1,
        rounds=1,
    )
    print()
    print(fig8.render.__doc__ or "")
    for key, value in summary.items():
        print(f"  {key}: {value}")

    # The pessimistic profile: most queries are unsat.
    assert summary["unsat_queries"] > summary["queries"] / 2
    # A small verified tail exists and wins big.
    assert 0 < summary["verified_cases"] < PROGRAM_COUNT / 2
    assert summary["verified_speedup"] > 1.5
    # The overall mean speedup is modest but positive (the paper's ~9%).
    assert summary["overall_speedup"] > 1.0
