"""Benchmark: RQ2 -- STAUB unlocks SLOT's bounded-constraint speedups.

Paper shape to match: chaining SLOT after the transformation improves
the QF_NIA overall speedup further (the paper's extra 2-3x on top of the
arbitrage win); SLOT cannot be applied without STAUB at all.
"""

import pytest

from repro.errors import SolverError
from repro.evaluation import table3
from repro.evaluation.stats import geometric_mean, speedup
from repro.slot import PassManager


def test_slot_requires_bounded_input(cache):
    suite = cache.suite("QF_NIA")
    with pytest.raises(SolverError):
        PassManager().run(suite.benchmarks[0].script)


def test_rq2_slot_column(benchmark, cache):
    def run():
        plain = table3.cell(cache, "QF_NIA", "corvus", "staub", (0, 300))
        chained = table3.cell(cache, "QF_NIA", "corvus", "staub", (0, 300), slot=True)
        return plain, chained

    plain, chained = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(f"QF_NIA corvus overall speedup, STAUB alone: {plain['overall_speedup']:.3f}")
    print(f"QF_NIA corvus overall speedup, STAUB+SLOT:  {chained['overall_speedup']:.3f}")
    # SLOT must not lose verified cases, and both must beat 1.0.
    assert plain["overall_speedup"] > 1.0
    assert chained["overall_speedup"] > 1.0
    # Chaining stays in the same ballpark or better on the bounded side
    # (per-instance wins are what the paper's SLOT column shows).
    assert chained["verified_cases"] >= plain["verified_cases"] - 2
