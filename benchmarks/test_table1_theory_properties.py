"""Benchmark: regenerate Table 1 (theory properties summary)."""

from repro.evaluation import table1


def test_table1(benchmark):
    text = benchmark.pedantic(table1.render, iterations=1, rounds=1)
    print()
    print(text)
    assert "Nonlinear Integer Arithmetic" in text
