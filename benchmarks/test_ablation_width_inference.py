"""Benchmark: the Section 5.2 width-inference ablation.

Paper shape to match: inference produces moderate widths (the paper's
mean is 13.1 bits) and at least matches both fixed choices on verified
cases and tractability improvements.
"""

from repro.evaluation import ablation


def test_width_inference_ablation(benchmark, cache):
    stats = benchmark.pedantic(
        ablation.width_statistics, args=(cache,), iterations=1, rounds=1
    )
    comparison = ablation.strategy_comparison(cache)
    print()
    print(ablation.render(cache))

    # Mean inferred width is moderate (single digits to ~16), like 13.1.
    assert 6 <= stats["mean"] <= 18

    staub = comparison["staub"]
    assert staub["tractability"] >= comparison["fixed16"]["tractability"]
    assert staub["verified"] >= comparison["fixed16"]["verified"]
