"""Benchmark: regenerate Table 3 (geometric-mean speedups).

Paper shape to match:
- overall speedups are >= 1 everywhere (portfolio semantics);
- QF_NIA shows the largest gains; QF_LRA shows none;
- speedups grow as the initial-solving-time interval gets harder
  (the 60-300s rows beat the 0-300s rows for the winning logics).
"""

from repro.evaluation import table3


def test_table3(benchmark, cache):
    table = benchmark.pedantic(
        table3.table3, args=(cache,), kwargs={"logics": ("QF_NIA", "QF_LRA")},
        iterations=1, rounds=1,
    )
    print()
    print(table3.render.__doc__ or "")
    for logic, per_logic in table.items():
        for profile, per_profile in per_logic.items():
            for interval, per_interval in per_profile.items():
                for strategy, cell in per_interval.items():
                    overall = cell["overall_speedup"]
                    if overall is not None:
                        assert overall >= 0.999, (logic, profile, interval, strategy)

    # QF_NIA gains, QF_LRA does not (the paper's headline contrast).
    nia_overall = table["QF_NIA"]["corvus"][(0, 300)]["staub"]["overall_speedup"]
    lra_overall = table["QF_LRA"]["corvus"][(0, 300)]["staub"]["overall_speedup"]
    assert nia_overall is not None and nia_overall > 1.02
    assert lra_overall is not None and lra_overall < 1.05
    assert nia_overall > lra_overall


def test_table3_render(cache):
    text = table3.render(cache)
    print()
    print(text)
    assert "QF_NIA / zorro" in text
