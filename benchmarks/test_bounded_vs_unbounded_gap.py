"""Benchmark: the intro's bounded-vs-unbounded solving gap.

Paper shape to match: solving the operation-equivalent bounded constraint
is faster on (geometric) average than solving the unbounded original --
the paper measures 1.8x-5.5x with Z3.
"""

from repro.evaluation import bounded_gap


def test_bounded_gap(benchmark, cache):
    result = benchmark.pedantic(
        bounded_gap.measure_gap, args=(cache,), kwargs={"profile": "zorro"},
        iterations=1, rounds=1,
    )
    print()
    print(bounded_gap.render(cache))
    assert result["count"] > 0
    # The unbounded side is slower on average (ratio above 1).
    assert result["geomean_ratio"] > 1.0
