"""Ablation benchmark: iterative bound refinement (Section 6.2).

The paper discusses refinement as future work and predicts the tradeoff:
widening-and-retrying can rescue under-inferred widths, but every retry
pays bounded-solver time on constraints that were simply unsat. This
ablation measures both effects on the QF_NIA suite.
"""

from repro.core.refinement import RefinementStaub
from repro.evaluation.runner import make_staub


def run_comparison(cache):
    suite = cache.suite("QF_NIA")
    baseline_staub = make_staub("staub")
    refiner = RefinementStaub(max_rounds=3, max_width=20)
    plain_verified = 0
    refined_verified = 0
    plain_work = 0
    refined_work = 0
    for bench in suite:
        plain = baseline_staub.run(bench.script, budget=cache.timeout)
        refined = refiner.run(bench.script, budget=cache.timeout)
        plain_verified += plain.usable
        refined_verified += refined.usable
        plain_work += min(plain.total_work, cache.timeout)
        refined_work += min(refined.total_work, cache.timeout)
    return {
        "plain_verified": plain_verified,
        "refined_verified": refined_verified,
        "plain_work": plain_work,
        "refined_work": refined_work,
    }


def test_refinement_ablation(benchmark, cache):
    result = benchmark.pedantic(run_comparison, args=(cache,), iterations=1, rounds=1)
    print()
    for key, value in result.items():
        print(f"  {key}: {value}")
    # Refinement never verifies fewer constraints...
    assert result["refined_verified"] >= result["plain_verified"]
    # ...but it pays for retries on unsat constraints (the paper's
    # predicted cost), so total work does not shrink.
    assert result["refined_work"] >= result["plain_work"]
