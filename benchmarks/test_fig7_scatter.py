"""Benchmark: regenerate Figure 7 (before/after scatter).

Paper shape to match: no point above the diagonal (portfolio semantics),
improvements and tractability points concentrated in QF_NIA.
"""

from repro.evaluation import fig7
from repro.evaluation.runner import to_virtual_seconds


def test_fig7(benchmark, cache):
    series = benchmark.pedantic(
        fig7.scatter_series, args=(cache,), kwargs={"logics": ("QF_NIA", "QF_LIA")},
        iterations=1, rounds=1,
    )
    print()
    total_improved = 0
    timeout_seconds = to_virtual_seconds(cache.timeout)
    for (logic, profile), points in series.items():
        summary = fig7.quadrant_summary(points, timeout_seconds=timeout_seconds)
        print(f"{logic}/{profile}: {summary}")
        assert summary["above_diagonal"] == 0
        total_improved += summary["improved"] + summary["tractability"]
    assert total_improved > 0
