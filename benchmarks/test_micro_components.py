"""Micro-benchmarks for the performance-critical components.

Unlike the table/figure benchmarks these use pytest-benchmark's normal
multi-round timing: they track the wall-clock performance of the hot
paths (useful when modifying the CDCL loop, the bit-blaster, or the
contractor).
"""

import random

from repro.arith.contractor import Box, Contractor, literals_to_atoms
from repro.arith.interval import Interval
from repro.arith.simplex import Simplex
from repro.bv.bitblast import BitBlaster
from repro.sat.cnf import CNF
from repro.sat.solver import solve_cnf
from repro.smtlib import build, parse_script


def _random_3sat(num_vars, ratio, seed):
    rng = random.Random(seed)
    cnf = CNF(num_vars)
    for _ in range(int(ratio * num_vars)):
        variables = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause([v * rng.choice((1, -1)) for v in variables])
    return cnf


def test_cdcl_random_3sat(benchmark):
    cnf = _random_3sat(150, 4.1, seed=11)

    def solve():
        return solve_cnf(cnf)[0]

    result = benchmark(solve)
    assert result in ("sat", "unsat")


def test_bitblast_multiplier(benchmark):
    x = build.BitVecVar("x", 16)
    y = build.BitVecVar("y", 16)
    term = build.Eq(build.BVMul(x, y), build.BitVecConst(12345, 16))

    def blast():
        blaster = BitBlaster()
        blaster.assert_term(term)
        return len(blaster.cnf.clauses)

    clauses = benchmark(blast)
    assert clauses > 1000


def test_simplex_dense_system(benchmark):
    rng = random.Random(3)
    constraints = []
    for _ in range(40):
        coefficients = {f"v{i}": rng.randint(-5, 5) for i in range(8)}
        constraints.append((coefficients, rng.choice(("<=", ">=")), rng.randint(-20, 20)))

    def solve():
        simplex = Simplex()
        try:
            for coefficients, relation, bound in constraints:
                simplex.assert_constraint(coefficients, relation, bound)
            return simplex.check()
        except Exception:
            return False

    benchmark(solve)


def test_contractor_fixpoint(benchmark):
    script = parse_script(
        "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
        "(assert (= (+ (* x x) (* y y) (* z z)) 450))"
        "(assert (> x 0))(assert (> y x))(assert (> z y))"
    )
    atoms, _ = literals_to_atoms(script.assertions)
    contractor = Contractor(atoms)

    def contract():
        box = Box({name: Interval(-50, 50) for name in ("x", "y", "z")})
        return contractor.contract(box)

    result = benchmark(contract)
    assert result is not None


def test_parser_throughput(benchmark):
    source = "(set-logic QF_NIA)" + "".join(
        f"(declare-fun v{i} () Int)" for i in range(20)
    )
    source += "".join(
        f"(assert (> (+ (* v{i} v{(i + 1) % 20}) {i}) {i * 3}))" for i in range(20)
    )
    script = benchmark(parse_script, source)
    assert len(script.assertions) == 20


def test_exact_evaluator(benchmark):
    from repro.smtlib.evaluator import evaluate

    script = parse_script(
        "(declare-fun x () Int)(declare-fun y () Int)"
        "(assert (= (+ (* x x x) (* y y y)) 1064))"
    )
    term = script.conjunction()

    def run():
        return evaluate(term, {"x": 4, "y": 10})

    assert benchmark(run) is True
