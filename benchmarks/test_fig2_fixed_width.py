"""Benchmark: regenerate Figure 2 (fixed-width transformation sweep).

Paper shape to match:
- Fig. 2a: solving time grows with width (the 16-bit-normalized curve is
  below 1 for narrower widths and above 1 for wider ones).
- Fig. 2b: the fraction of constraints whose satisfiability result
  changes *decreases* as width grows (wider = more often sufficient).
"""

from repro.evaluation import fig2


def test_fig2(benchmark, cache):
    results = benchmark.pedantic(
        fig2.sweep, args=(cache,), kwargs={"logics": ("QF_NIA", "QF_LIA")},
        iterations=1, rounds=1,
    )
    print()
    normalized = fig2.normalized_times(results)
    for logic, row in normalized.items():
        print(f"{logic}: " + "  ".join(f"w{w}={v:.2f}" for w, v in row.items()))
    for logic, per_width in results.items():
        changed = {w: d["changed_fraction"] for w, d in per_width.items()}
        print(f"{logic} changed%: " + "  ".join(f"w{w}={100*v:.0f}%" for w, v in changed.items()))
        # Fig. 2b shape: wider widths preserve semantics at least as often
        # as the narrowest width.
        widths = sorted(changed)
        assert changed[widths[-1]] <= changed[widths[0]]
    # Fig. 2a shape: the widest column is slower than the narrowest.
    for logic in ("QF_NIA",):
        row = normalized[logic]
        widths = sorted(row)
        assert row[widths[-1]] >= row[widths[0]]
