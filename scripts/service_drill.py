#!/usr/bin/env python
"""CI drill for ``staub serve``: cold / warm / chaos, end to end.

Starts the real server as a subprocess (NDJSON on stdio), drives a mixed
multi-tenant request stream, and asserts the service contract:

- **cold**: every request is answered, verdicts match fault-free
  in-process solves (the same parity ``staub solve`` would print), the
  shutdown is acknowledged, and the server exits 0 with no orphaned
  worker processes.
- **warm**: a second server over the same sharded cache directory
  answers every solve from the cache (``cached: true``), same verdicts.
- **chaos**: under an injected fault mix (``--chaos seed:rate``) with
  worker processes, every request still terminates with either the
  fault-free verdict or a structured ``unknown`` carrying a reason --
  never a hang, a traceback, or a missing response -- and the sharded
  store is still loadable afterwards.

Exits nonzero with a one-line diagnosis on the first violated invariant.
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

SUITE = {
    "nia-sat": (
        "(set-logic QF_NIA)"
        "(declare-fun x () Int)(declare-fun y () Int)"
        "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))"
        "(check-sat)"
    ),
    "lia-unsat": (
        "(set-logic QF_LIA)(declare-fun x () Int)"
        "(assert (> x 5))(assert (< x 3))(check-sat)"
    ),
    "lia-sat": (
        "(set-logic QF_LIA)(declare-fun a () Int)"
        "(assert (> a 10))(assert (< a 13))(check-sat)"
    ),
    "bv-sat": (
        "(declare-fun v () (_ BitVec 8))"
        "(assert (= (bvmul v (_ bv4 8)) (_ bv20 8)))(check-sat)"
    ),
}

TENANTS = ("acme", "umbra", "zephyr")


def fail(message):
    print(f"service_drill: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def baseline_verdicts():
    """Fault-free serial verdicts, straight through the library."""
    from repro.smtlib import parse_script
    from repro.solver import solve_script

    return {
        name: solve_script(parse_script(text)).status
        for name, text in SUITE.items()
    }


def traffic(rounds=2):
    """The mixed multi-tenant request stream (deterministic order)."""
    requests = []
    names = sorted(SUITE)
    index = 0
    for _ in range(rounds):
        for name in names:
            requests.append(
                {
                    "op": "solve",
                    "id": index,
                    "tenant": TENANTS[index % len(TENANTS)],
                    "script": SUITE[name],
                    "_name": name,
                }
            )
            index += 1
    return requests


def run_server(cache_dir, requests, workers=0, chaos=None, timeout=300):
    """Start ``staub serve``, drive the stream, return parsed responses."""
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--cache",
        cache_dir,
        "--cache-shards",
        "2",
        "--flush-every",
        "2",
        "--workers",
        str(workers),
    ]
    if chaos:
        command += ["--chaos", chaos]
    stdin_lines = [
        json.dumps({k: v for k, v in request.items() if not k.startswith("_")})
        for request in requests
    ]
    stdin_lines.append(json.dumps({"op": "cache-stats", "id": "stats"}))
    stdin_lines.append(json.dumps({"op": "shutdown", "id": "bye"}))
    process = subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    try:
        out, err = process.communicate("\n".join(stdin_lines) + "\n", timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        fail("server hung past the drill timeout")
    if process.returncode != 0:
        fail(f"server exited {process.returncode}; stderr: {err.strip()[-500:]}")
    if "Traceback" in err:
        fail(f"server stderr contains a traceback: {err.strip()[-500:]}")
    payloads = []
    for line in out.splitlines():
        try:
            payloads.append(json.loads(line))
        except ValueError:
            fail(f"non-JSON response line: {line[:120]!r}")
    return payloads


def orphan_processes(marker, settle=5.0):
    """Processes still running with the per-drill marker in their cmdline.

    Terminated workers reparent to init when the server exits and may
    take a beat to be reaped, so the scan retries over a short settle
    window -- only a process that *persists* is an orphan.
    """
    import time

    deadline = time.monotonic() + settle
    while True:
        orphans = []
        for pid in os.listdir("/proc"):
            if not pid.isdigit() or int(pid) == os.getpid():
                continue
            try:
                with open(f"/proc/{pid}/cmdline", "rb") as handle:
                    cmdline = handle.read().decode("utf-8", "replace")
            except OSError:
                continue
            # The server (and its forked workers) run `-m repro.cli serve
            # --cache <marker>`; requiring both strings avoids matching
            # the driving shell, whose command line also names the dir.
            if marker in cmdline and "repro.cli" in cmdline:
                orphans.append(pid)
        if not orphans or time.monotonic() >= deadline:
            return orphans
        time.sleep(0.2)


def check_responses(payloads, requests, baseline, phase, expect_cached=False):
    by_id = {p.get("id"): p for p in payloads}
    for request in requests:
        payload = by_id.get(request["id"])
        if payload is None:
            fail(f"{phase}: request {request['id']} got no response")
        status = payload.get("status")
        expected = baseline[request["_name"]]
        if status == "unknown":
            if phase != "chaos":
                fail(f"{phase}: request {request['id']} degraded: {payload}")
            if not payload.get("reason"):
                fail(f"{phase}: unknown without a reason: {payload}")
        elif status != expected:
            fail(
                f"{phase}: request {request['id']} verdict {status!r} "
                f"!= serial {expected!r}"
            )
        elif expect_cached and not payload.get("cached"):
            fail(f"{phase}: request {request['id']} was not served from cache")
    if "stats" not in by_id:
        fail(f"{phase}: cache-stats went unanswered")
    if not by_id.get("bye", {}).get("shutdown"):
        fail(f"{phase}: shutdown was not acknowledged")
    return by_id


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default="drill-cache")
    parser.add_argument("--chaos", default="1234:0.2")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    sys.path.insert(0, SRC)
    baseline = baseline_verdicts()
    print(f"serial baseline: {baseline}")
    requests = traffic()
    cache_dir = os.path.abspath(args.cache_dir)

    # -- cold: fresh cache, inline (deterministic) --------------------------
    payloads = run_server(cache_dir, requests, workers=0)
    check_responses(payloads, requests, baseline, "cold")
    print(f"cold: {len(requests)} requests answered, verdict parity holds")

    # -- warm: same store, every solve from the shards ----------------------
    payloads = run_server(cache_dir, requests, workers=0)
    by_id = check_responses(payloads, requests, baseline, "warm", expect_cached=True)
    stats = by_id["stats"]["stats"]
    if stats["cache"] is None or stats["cache"]["entries"] == 0:
        fail("warm: sharded cache reports no entries")
    print(
        f"warm: all {len(requests)} answers cached "
        f"({stats['cache']['entries']} entries across "
        f"{stats['cache']['shards']} shards)"
    )

    # -- chaos: fault mix, real worker processes ----------------------------
    payloads = run_server(
        cache_dir, requests, workers=args.workers, chaos=args.chaos
    )
    check_responses(payloads, requests, baseline, "chaos")
    degraded = sum(1 for p in payloads if p.get("status") == "unknown")
    print(
        f"chaos ({args.chaos}, {args.workers} workers): every request "
        f"terminated; {degraded} structured degradations"
    )

    orphans = orphan_processes(cache_dir)
    if orphans:
        fail(f"orphan processes survived the drills: {orphans}")

    # -- the store survived the whole ordeal --------------------------------
    from repro.cache import ShardedSolveCache

    store = ShardedSolveCache(cache_dir)
    print(
        f"store intact: {len(store)} entries, {store.shards} shards, "
        "all loadable"
    )
    print("service_drill: OK")


if __name__ == "__main__":
    main()
