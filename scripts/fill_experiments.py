#!/usr/bin/env python
"""Splice run_all output into EXPERIMENTS.md's RESULTS placeholders.

Usage: python scripts/fill_experiments.py results_full.txt EXPERIMENTS.md

Each ``<!-- RESULTS:<name> -->`` marker is replaced by the corresponding
experiment's section from the run_all output, fenced as a code block.
Idempotent: an already-filled block (marker followed by a fence) is
replaced rather than duplicated.
"""

import re
import sys

#: Maps marker names to the banner line that opens the section.
SECTION_STARTS = {
    "bounded_gap": "Bounded vs unbounded solving gap",
    "fig2": "Figure 2a:",
    "table2": "Table 2:",
    "table3": "Table 3:",
    "fig7": "Figure 7:",
    "ablation": "Width inference ablation",
    "fig8": "Figure 8:",
    "motivating": "Section 2 motivating comparison",
    "families": "Per-family breakdown",
}


def split_sections(results_text):
    """Split run_all output into {experiment: body} via the took-markers."""
    sections = {}
    blocks = results_text.split("=" * 78)
    for block in blocks:
        match = re.search(r"\[(\w+) took [\d.]+s wall\]", block)
        if not match:
            continue
        name = match.group(1)
        body = re.sub(r"\[\w+ took [\d.]+s wall\]\s*", "", block).strip()
        sections[name] = body
    return sections


def fill(experiments_text, sections):
    for name, body in sections.items():
        marker = f"<!-- RESULTS:{name} -->"
        if marker not in experiments_text:
            continue
        replacement = marker + "\n\n```\n" + body + "\n```"
        # Replace marker plus any previously spliced fence right after it.
        pattern = re.compile(
            re.escape(marker) + r"(\s*\n```.*?```)?", re.DOTALL
        )
        experiments_text = pattern.sub(lambda _m: replacement, experiments_text, count=1)
    return experiments_text


def main(argv):
    results_path, experiments_path = argv[1], argv[2]
    with open(results_path, encoding="utf-8") as handle:
        sections = split_sections(handle.read())
    with open(experiments_path, encoding="utf-8") as handle:
        text = handle.read()
    text = fill(text, sections)
    with open(experiments_path, "w", encoding="utf-8") as handle:
        handle.write(text)
    filled = [name for name in sections if f"RESULTS:{name}" in text]
    print(f"spliced sections: {sorted(sections)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
