#!/usr/bin/env python
"""Deterministic propagation-throughput gate for the perf CI job.

Compares a fresh bench artifact against a checked-in baseline and fails
when the SAT core's propagation throughput regresses. Both sides are
*deterministic* sections -- no wall clock is involved -- so the gate is
exact and machine-independent:

- every baseline case must be present with the same cold verdict (a
  speedup that changes answers is not a speedup);
- the case's propagations-per-unit-of-deterministic-work fraction
  (``solver.propagations / cold.work``) must not fall below the
  baseline's. Work is ``propagations + 10*conflicts + decisions``, so a
  falling fraction means the search now spends its budget on conflicts
  and decisions instead of cheap propagation -- the per-propagation
  cost regression this gate exists to catch.

A PR that legitimately changes search behaviour regenerates the
baselines (same review model as ``staub bench --compare``): the new
counters are then visible in the diff.

Usage: python scripts/prop_gate.py CURRENT.json BASELINE.json
"""

import json
import sys

PROPS = "solver.propagations"


def case_fraction(case):
    """Propagations per unit of deterministic work, or None when the
    case never reached the SAT core (e.g. closed by preprocessing)."""
    props = case.get("counters", {}).get(PROPS, 0)
    work = case.get("cold", {}).get("work", 0)
    if not props or not work:
        return None
    return props / work


def gate(current, baseline):
    failures = []
    reports = []
    current_cases = current.get("deterministic", {}).get("cases", {})
    baseline_cases = baseline.get("deterministic", {}).get("cases", {})
    for name in sorted(baseline_cases):
        base = baseline_cases[name]
        cur = current_cases.get(name)
        if cur is None:
            failures.append(f"{name}: case missing from current artifact")
            continue
        base_verdict = base.get("cold", {}).get("verdict")
        cur_verdict = cur.get("cold", {}).get("verdict")
        if cur_verdict != base_verdict:
            failures.append(
                f"{name}: verdict changed {base_verdict!r} -> {cur_verdict!r}"
            )
            continue
        base_fraction = case_fraction(base)
        cur_fraction = case_fraction(cur)
        if base_fraction is None:
            reports.append(f"{name}: no SAT propagation in baseline, skipped")
            continue
        if cur_fraction is None:
            failures.append(
                f"{name}: baseline propagated, current artifact did not"
            )
            continue
        status = "ok" if cur_fraction >= base_fraction else "REGRESSED"
        reports.append(
            f"{name}: props/work {base_fraction:.4f} -> {cur_fraction:.4f} "
            f"[{status}]"
        )
        if cur_fraction < base_fraction:
            failures.append(
                f"{name}: propagation fraction fell "
                f"{base_fraction:.4f} -> {cur_fraction:.4f}"
            )
    return failures, reports


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        current = json.load(handle)
    with open(argv[2]) as handle:
        baseline = json.load(handle)
    if current.get("suite") != baseline.get("suite"):
        print(
            f"suite mismatch: {current.get('suite')!r} vs "
            f"{baseline.get('suite')!r}",
            file=sys.stderr,
        )
        return 2
    failures, reports = gate(current, baseline)
    for line in reports:
        print(line)
    if failures:
        print(f"\npropagation gate FAILED ({len(failures)}):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\npropagation gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
