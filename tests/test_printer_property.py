"""Printer/cache-key properties over realistic and generated scripts.

Two families of invariants back the solve cache:

- *round trip*: ``parse(print(script))`` reproduces the exact hash-consed
  assertion terms for every generated benchmark in every logic, so the
  printed form is a faithful serialization;
- *canonical stability*: the cache key's canonical text is a fixpoint
  under re-printing and is invariant under assertion order, commutative
  argument order, and duplicated assertions -- the properties that let
  structurally equivalent scripts share one cache entry.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchgen import suite_for
from repro.cache import cache_key, canonical_text
from repro.smtlib import build, parse_script, print_script
from repro.smtlib.script import Script

LOGICS = ("QF_LIA", "QF_NIA", "QF_LRA", "QF_NRA")


def _benchgen_scripts():
    sample = []
    for logic in LOGICS:
        suite = suite_for(logic, seed=7, scale=0.25)
        sample.extend((logic, bench) for bench in suite.benchmarks)
    return sample


BENCH_SCRIPTS = _benchgen_scripts()
BENCH_IDS = [f"{logic}:{bench.name}" for logic, bench in BENCH_SCRIPTS]


@pytest.mark.parametrize(("logic", "bench"), BENCH_SCRIPTS, ids=BENCH_IDS)
class TestBenchgenRoundTrip:
    def test_parse_print_is_structural_identity(self, logic, bench):
        reparsed = parse_script(print_script(bench.script))
        # Terms are hash-consed, so identity (not just equality) holds.
        for original, back in zip(bench.script.assertions, reparsed.assertions):
            assert back is original
        assert reparsed.declarations == bench.script.declarations
        assert reparsed.logic == bench.script.logic

    def test_canonical_text_is_reprint_fixpoint(self, logic, bench):
        text = canonical_text(bench.script)
        assert canonical_text(parse_script(text)) == text

    def test_cache_key_survives_reprinting(self, logic, bench):
        reparsed = parse_script(print_script(bench.script))
        assert cache_key(bench.script, profile="zorro") == cache_key(
            reparsed, profile="zorro"
        )

    def test_cache_key_ignores_assertion_order(self, logic, bench):
        if len(bench.script.assertions) < 2:
            pytest.skip("single-assertion script has no order to permute")
        shuffled = list(bench.script.assertions)
        random.Random(5).shuffle(shuffled)
        permuted = Script(
            assertions=tuple(shuffled),
            declarations=bench.script.declarations,
            logic=bench.script.logic,
        )
        assert cache_key(bench.script) == cache_key(permuted)


# ---------------------------------------------------------------------------
# Hypothesis: generated scripts obey the same invariants
# ---------------------------------------------------------------------------


def _int_terms():
    leaves = st.one_of(
        st.integers(-50, 50).map(build.IntConst),
        st.sampled_from(["x", "y", "z"]).map(build.IntVar),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: build.Add(p[0], p[1])),
            st.tuples(children, children).map(lambda p: build.Mul(p[0], p[1])),
            st.tuples(children, children).map(lambda p: build.Sub(p[0], p[1])),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def _assertions():
    pair = st.tuples(_int_terms(), _int_terms())
    atom = st.one_of(
        pair.map(lambda p: build.Lt(p[0], p[1])),
        pair.map(lambda p: build.Eq(p[0], p[1])),
        pair.map(lambda p: build.And(build.Le(p[0], p[1]), build.Le(p[1], p[0]))),
    )
    return st.lists(atom, min_size=1, max_size=4)


class TestGeneratedScripts:
    @given(_assertions())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_and_canonical_fixpoint(self, assertions):
        script = Script.from_assertions(assertions, logic="QF_NIA")
        reparsed = parse_script(print_script(script))
        for original, back in zip(script.assertions, reparsed.assertions):
            assert back is original
        text = canonical_text(script)
        assert canonical_text(parse_script(text)) == text

    @given(_assertions(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_key_is_permutation_invariant(self, assertions, rng):
        script = Script.from_assertions(assertions, logic="QF_NIA")
        shuffled = list(assertions)
        rng.shuffle(shuffled)
        permuted = Script.from_assertions(shuffled, logic="QF_NIA")
        assert cache_key(script) == cache_key(permuted)

    @given(_int_terms(), _int_terms())
    @settings(max_examples=60, deadline=None)
    def test_key_ignores_commutative_argument_order(self, a, b):
        left = Script.from_assertions([build.Eq(build.Add(a, b), build.IntConst(1))])
        right = Script.from_assertions([build.Eq(build.IntConst(1), build.Add(b, a))])
        assert cache_key(left) == cache_key(right)
