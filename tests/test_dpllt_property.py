"""Property test: DPLL(T) over boolean structure vs brute-force ground truth.

Random boolean combinations of small-domain linear integer atoms are
decided both by the full solver stack and by exhaustive evaluation over a
small grid; the verdicts must agree whenever the solver is conclusive.
"""

from hypothesis import given, settings, strategies as st

from repro.smtlib import build
from repro.smtlib.evaluator import evaluate
from repro.smtlib.script import Script
from repro.solver import solve_script

GRID = range(-4, 5)


def _atoms(draw):
    x = build.IntVar("x")
    y = build.IntVar("y")
    variable = draw(st.sampled_from((x, y)))
    other = draw(
        st.one_of(
            st.integers(-4, 4).map(build.IntConst),
            st.sampled_from((x, y)),
        )
    )
    op = draw(st.sampled_from((build.Le, build.Lt, build.Ge, build.Gt, build.Eq)))
    return op(variable, other)


def _formula(draw, depth):
    if depth == 0:
        return _atoms(draw)
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return build.Not(_formula(draw, depth - 1))
    if kind == 1:
        return build.And(_formula(draw, depth - 1), _formula(draw, depth - 1))
    if kind == 2:
        return build.Or(_formula(draw, depth - 1), _formula(draw, depth - 1))
    if kind == 3:
        return build.Implies(_formula(draw, depth - 1), _formula(draw, depth - 1))
    return build.Xor(_formula(draw, depth - 1), _formula(draw, depth - 1))


def _brute_force(assertion):
    for xv in GRID:
        for yv in GRID:
            if evaluate(assertion, {"x": xv, "y": yv}):
                return True
    return False


class TestDpllTAgainstBruteForce:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_structure_decided_correctly(self, data):
        assertion = _formula(data.draw, depth=data.draw(st.integers(1, 3)))
        # Restrict to the brute-force grid so ground truth is computable.
        x = build.IntVar("x")
        y = build.IntVar("y")
        bounds = [
            build.Ge(x, build.IntConst(-4)),
            build.Le(x, build.IntConst(4)),
            build.Ge(y, build.IntConst(-4)),
            build.Le(y, build.IntConst(4)),
        ]
        script = Script.from_assertions([assertion] + bounds, logic="QF_LIA")
        result = solve_script(script, budget=600_000)
        expected = _brute_force(assertion)
        if result.is_unknown:
            return  # budget ran out: no verdict to compare
        assert result.is_sat == expected
        if result.is_sat:
            model = {"x": result.model["x"], "y": result.model["y"]}
            assert evaluate(assertion, model)
