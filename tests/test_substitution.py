"""Tests for term substitution."""

import pytest

from repro.errors import SortError
from repro.smtlib import build
from repro.smtlib.evaluator import evaluate
from repro.smtlib.substitution import rename_variables, substitute, substitute_all


class TestSubstitute:
    def test_simple_replacement(self):
        x = build.IntVar("x")
        term = build.Add(x, build.IntConst(1))
        result = substitute(term, {"x": build.IntConst(41)})
        assert evaluate(result, {}) == 42

    def test_replacement_with_term(self):
        x = build.IntVar("x")
        y = build.IntVar("y")
        term = build.Mul(x, x)
        result = substitute(term, {"x": build.Add(y, build.IntConst(1))})
        assert evaluate(result, {"y": 3}) == 16

    def test_untouched_variables_remain(self):
        x = build.IntVar("x")
        y = build.IntVar("y")
        term = build.Add(x, y)
        result = substitute(term, {"x": build.IntConst(1)})
        assert "y" in result.variables()

    def test_sort_mismatch_rejected(self):
        x = build.IntVar("x")
        with pytest.raises(SortError):
            substitute(build.Add(x, x), {"x": build.RealConst(1)})

    def test_sharing_preserved(self):
        x = build.IntVar("x")
        shared = build.Mul(x, x)
        root = build.Add(shared, shared)
        result = substitute(root, {"x": build.IntConst(2)})
        assert result.size() == root.size()  # same DAG shape

    def test_substitute_all_consistent_across_roots(self):
        x = build.IntVar("x")
        a = build.Gt(x, build.IntConst(0))
        b = build.Lt(x, build.IntConst(9))
        ra, rb = substitute_all([a, b], {"x": build.IntConst(5)})
        assert evaluate(ra, {}) and evaluate(rb, {})


class TestRename:
    def test_rename_keeps_sort(self):
        x = build.IntVar("x")
        term = build.Gt(x, build.IntConst(3))
        renamed = rename_variables(term, {"x": "fresh"})
        assert set(renamed.variables()) == {"fresh"}
        assert renamed.variables()["fresh"].sort.is_int

    def test_noop_rename(self):
        x = build.IntVar("x")
        term = build.Gt(x, build.IntConst(3))
        assert rename_variables(term, {"other": "z"}) is term
