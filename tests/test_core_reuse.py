"""Unsat-core reuse across the solve cache (Cache-a-lot).

Covers the subsumption index directly (inverted-index unit tests), the
cache-accounting bugfixes that rode along (eviction-kind attribution,
counter-rolling persistent ``clear()``), the root-UNSAT empty-core
guard, and seeded differential replays of benchgen and termination query
streams: cold, then warm with core reuse, against a reuse-disabled
oracle -- verdicts and models must be byte-identical, and adversarial
near-miss queries whose assertion sets are proper *subsets* of a cached
core must never hit.
"""

from collections import OrderedDict

import pytest

from repro import telemetry
from repro.benchgen import suite_for
from repro.cache import SolveCache, activated, script_digests, set_cache
from repro.cli import main as cli_main
from repro.core.pipeline import Staub
from repro.smtlib import build, parse_script
from repro.smtlib.script import Script
from repro.solver import solve_script
from repro.solver.session import Session, _BoundedBackend
from repro.termination.automizer import Automizer
from repro.termination.programs import termination_benchmark_suite

BUDGET = 200_000


@pytest.fixture(autouse=True)
def clean_state():
    set_cache(None)
    telemetry.disable()
    telemetry.get_registry().reset()
    yield
    set_cache(None)
    telemetry.disable()
    telemetry.get_registry().reset()


UNSAT_BASE = (
    "(set-logic QF_BV)\n"
    "(declare-fun x () (_ BitVec 8))\n"
    "(assert (bvult x #x05))\n"
    "(assert (bvult #x0a x))\n"
    "(check-sat)\n"
)

SUPERSET = (
    "(set-logic QF_BV)\n"
    "(declare-fun x () (_ BitVec 8))\n"
    "(declare-fun y () (_ BitVec 8))\n"
    "(assert (bvult x #x05))\n"
    "(assert (bvult #x0a x))\n"
    "(assert (bvult y #x07))\n"
    "(check-sat)\n"
)

#: Proper subset of the UNSAT_BASE assertion set: satisfiable, so a core
#: hit here would be an unsound answer, not just a missed optimization.
NEAR_MISS = (
    "(set-logic QF_BV)\n"
    "(declare-fun x () (_ BitVec 8))\n"
    "(assert (bvult x #x05))\n"
    "(check-sat)\n"
)


class _CountingCores(OrderedDict):
    """An OrderedDict that counts core materializations (``__getitem__``)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.reads = 0

    def __getitem__(self, key):
        self.reads += 1
        return super().__getitem__(key)


class TestCoreIndex:
    def test_subset_core_answers_superset_query(self):
        cache = SolveCache()
        assert cache.add_core({"a", "b"})
        assert cache.has_cores()
        assert cache.find_core({"a", "b", "c"}) == frozenset({"a", "b"})
        assert cache.core_hits == 1

    def test_proper_subset_query_never_hits(self):
        cache = SolveCache()
        cache.add_core({"a", "b"})
        assert cache.find_core({"a"}) is None
        assert cache.find_core({"b"}) is None
        assert cache.find_core({"b", "c"}) is None
        assert cache.core_hits == 0

    def test_empty_core_is_rejected(self):
        telemetry.enable()
        cache = SolveCache()
        assert not cache.add_core(frozenset())
        assert not cache.has_cores()
        assert cache.find_core({"a"}) is None
        snap = telemetry.snapshot()
        assert snap["cache.core_rejected{reason=empty}"] == 1

    def test_duplicate_core_stored_once(self):
        cache = SolveCache()
        assert cache.add_core({"a", "b"})
        assert not cache.add_core({"b", "a"})
        assert cache.stats()["cores"] == 1

    def test_weaker_core_is_redundant(self):
        cache = SolveCache()
        assert cache.add_core({"a"})
        # {a, b} answers strictly fewer queries than {a}: skip it.
        assert not cache.add_core({"a", "b"})
        assert cache.stats()["cores"] == 1
        # The reverse order keeps both: {a} is strictly stronger.
        other = SolveCache()
        assert other.add_core({"a", "b"})
        assert other.add_core({"a"})
        assert other.stats()["cores"] == 2

    def test_inverted_index_files_cores_under_min_digest(self):
        cache = SolveCache()
        cache.add_core({"b", "d"})
        cache.add_core({"a", "c"})
        assert set(cache._core_index) == {"a", "b"}

    def test_lookup_is_indexed_not_a_linear_scan(self):
        cache = SolveCache()
        cache.add_core({"b", "d"})
        cache.add_core({"a", "c"})
        counting = _CountingCores(cache._cores)
        cache._cores = counting
        # No query digest matches any core's representative (minimum)
        # digest: the lookup must answer without touching a single core.
        assert cache.find_core({"c", "d", "e"}) is None
        assert counting.reads == 0
        # A query containing a representative examines only that bucket.
        assert cache.find_core({"a", "c"}) == frozenset({"a", "c"})
        assert counting.reads == 1

    def test_core_eviction_keeps_index_consistent(self):
        cache = SolveCache(max_cores=2)
        cache.add_core({"a", "x"})
        cache.add_core({"b", "y"})
        cache.add_core({"c", "z"})
        assert cache.stats()["cores"] == 2
        assert cache.find_core({"a", "x"}) is None  # evicted (oldest)
        assert cache.find_core({"b", "y"}) is not None
        assert cache.find_core({"c", "z"}) is not None
        assert "a" not in cache._core_index
        assert all(bucket for bucket in cache._core_index.values())

    def test_core_reuse_disabled_is_inert(self):
        cache = SolveCache(core_reuse=False)
        assert not cache.add_core({"a"})
        assert not cache.has_cores()
        assert cache.find_core({"a", "b"}) is None

    def test_cores_persist_with_checksum(self, tmp_path):
        path = tmp_path / "cache.json"
        first = SolveCache(path=path)
        first.add_core({"a", "b"})
        first.save()
        second = SolveCache(path=path)
        assert second.has_cores()
        assert second.find_core({"a", "b", "c"}) == frozenset({"a", "b"})

    def test_garbled_cores_section_is_dropped_not_trusted(self, tmp_path):
        import json

        path = tmp_path / "cache.json"
        first = SolveCache(path=path)
        first.put("k", {"status": "sat"})
        first.add_core({"a"})
        first.save()
        payload = json.loads(path.read_text())
        payload["cores"] = [["a", "evil"]]  # checksum now stale
        path.write_text(json.dumps(payload))
        second = SolveCache(path=path)
        # Entries survive; the tampered core section does not.
        assert "k" in second
        assert not second.has_cores()
        assert second.quarantined == 1


class TestEvictionKindAttribution:
    def test_eviction_counts_the_victim_kind(self):
        telemetry.enable()
        cache = SolveCache(max_entries=1)
        cache.put("old", {}, kind="arbitrage")
        cache.put("new", {}, kind="solve")
        snap = telemetry.snapshot()
        # The *arbitrage* entry was dropped; before the fix this counted
        # as an eviction of the inserted "solve" kind.
        assert snap["cache.eviction{kind=arbitrage}"] == 1
        assert "cache.eviction{kind=solve}" not in snap

    def test_victim_kind_survives_reload(self, tmp_path):
        telemetry.enable()
        path = tmp_path / "cache.json"
        first = SolveCache(path=path)
        first.put("old", {"kind": "refine-round"}, kind="refine-round")
        first.save()
        second = SolveCache(path=path, max_entries=1)
        second.put("new", {}, kind="solve")
        snap = telemetry.snapshot()
        assert snap["cache.eviction{kind=refine-round}"] == 1


class TestClearRollsAndPersists:
    def test_clear_rolls_session_counters_into_lifetime(self):
        cache = SolveCache()
        cache.put("k", {})
        cache.get("k")
        cache.get("missing")
        cache.add_core({"a"})
        cache.find_core({"a", "b"})
        cache.clear()
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["cores"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["core_hits"] == 0
        assert stats["lifetime_hits"] == 1
        assert stats["lifetime_misses"] == 1
        assert stats["lifetime_core_hits"] == 1

    def test_clear_persists_so_save_cannot_resurrect(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = SolveCache(path=path)
        cache.put("k", {"status": "sat"})
        cache.get("k")
        cache.add_core({"a"})
        cache.save()
        cache.clear()
        # Even a reload straight from disk sees the cleared store with
        # the rolled-up lifetime counters.
        reloaded = SolveCache(path=path)
        assert len(reloaded) == 0
        assert not reloaded.has_cores()
        assert reloaded.stats()["lifetime_hits"] == 1
        # An explicit save() after clear() must not bring entries back.
        cache.save()
        assert len(SolveCache(path=path)) == 0

    def test_cli_clear_then_stats_sequence(self, tmp_path, capsys):
        path = str(tmp_path / "cache.json")
        cache = SolveCache(path=path)
        cache.put("k", {"status": "sat"})
        cache.get("k")
        cache.add_core({"a"})
        cache.save()
        assert cli_main(["cache", "clear", path]) == 0
        assert cli_main(["cache", "stats", path]) == 0
        out = capsys.readouterr().out
        assert "cleared 1 entries and 1 cores" in out
        assert "entries = 0" in out
        assert "cores = 0" in out
        assert "lifetime hits = 1" in out


class TestRootUnsatGuard:
    def test_root_unsat_backend_reports_no_core(self):
        backend = _BoundedBackend()
        backend._root_unsat = True
        term = parse_script(
            "(declare-fun p () Bool)(assert p)(check-sat)"
        ).assertions[0]
        result = backend.check([[term]], {"p": build.BOOL}, None)
        assert result.status == "unsat"
        assert backend.last_core_terms is None

    def test_root_unsat_session_never_poisons_core_index(self):
        cache = SolveCache()
        session = Session(cache=cache)
        session.assert_term(
            parse_script("(declare-fun p () Bool)(assert p)(check-sat)").assertions[0]
        )
        assert session.check_sat().status == "sat"
        # Force the permanent root-UNSAT fast path (hard clauses dead),
        # and grow the stack so the check misses the whole-key cache.
        session._backend._root_unsat = True
        session.assert_term(
            parse_script("(declare-fun r () Bool)(assert r)(check-sat)").assertions[0]
        )
        assert session.check_sat().status == "unsat"
        assert not cache.has_cores()
        # A fresh, satisfiable session question on the same cache must
        # not be answered unsat by a poisoned (empty) core.
        probe = Session(cache=cache)
        probe.assert_term(
            parse_script("(declare-fun q () Bool)(assert q)(check-sat)").assertions[0]
        )
        assert probe.check_sat().status == "sat"


class TestFacadeCoreReuse:
    def test_superset_query_is_answered_by_subsumption(self):
        cache = SolveCache()
        with activated(cache):
            first = solve_script(parse_script(UNSAT_BASE))
            hit = solve_script(parse_script(SUPERSET))
        assert first.status == "unsat" and not first.cached
        assert hit.status == "unsat"
        assert hit.engine == "core-reuse"
        assert hit.cached and hit.work == 0
        assert cache.core_hits == 1

    def test_near_miss_subset_query_solves_fresh(self):
        cache = SolveCache()
        with activated(cache):
            solve_script(parse_script(UNSAT_BASE))
            near = solve_script(parse_script(NEAR_MISS))
        assert near.status == "sat"  # a core hit here would be unsound
        assert near.engine != "core-reuse"
        assert cache.core_hits == 0

    def test_core_hit_matches_reuse_disabled_oracle(self):
        queries = [UNSAT_BASE, SUPERSET, NEAR_MISS]
        with activated(SolveCache()) as cache:
            reused = [solve_script(parse_script(q)) for q in queries]
        with activated(SolveCache(core_reuse=False)):
            oracle = [solve_script(parse_script(q)) for q in queries]
        assert cache.core_hits == 1
        for got, want in zip(reused, oracle):
            assert got.status == want.status
            assert got.model == want.model


def _benchgen_stream():
    """A deterministic slice of generated NIA scripts (unsat-heavy)."""
    return [b.script for b in suite_for("QF_NIA", seed=2024, scale=0.08)]


class TestBenchgenDifferential:
    def test_cold_and_warm_match_reuse_disabled_run(self):
        scripts = _benchgen_stream()

        def replay(cache):
            with activated(cache):
                cold = [
                    solve_script(s, budget=BUDGET, profile="zorro") for s in scripts
                ]
                warm = [
                    solve_script(s, budget=BUDGET, profile="zorro") for s in scripts
                ]
            return cold, warm

        cold, warm = replay(SolveCache(max_entries=None))
        oracle_cold, oracle_warm = replay(
            SolveCache(max_entries=None, core_reuse=False)
        )
        for got, want in zip(cold + warm, oracle_cold + oracle_warm):
            assert got.status == want.status
            assert got.model == want.model

    def test_arbitrage_stream_parity_with_reuse_disabled(self):
        scripts = _benchgen_stream()
        staub = Staub()

        def replay(cache):
            with activated(cache):
                return [
                    (staub.run(s, budget=BUDGET).case, staub.run(s, budget=BUDGET).case)
                    for s in scripts
                ]

        reused = replay(SolveCache(max_entries=None))
        oracle = replay(SolveCache(max_entries=None, core_reuse=False))
        assert reused == oracle


class TestTerminationDifferential:
    @pytest.mark.parametrize("use_sessions", [False, True])
    def test_warm_replay_hits_cores_at_identical_verdicts(self, use_sessions):
        programs = [
            program
            for program, _expected in termination_benchmark_suite(seed=2024, count=2)
        ]

        def verdicts(cache):
            rounds = []
            with activated(cache):
                for _ in range(2):  # cold, then warm
                    rounds.append(
                        [
                            Automizer(budget=BUDGET, use_sessions=use_sessions)
                            .analyze(program)
                            .verdict
                            for program in programs
                        ]
                    )
            return rounds

        cache = SolveCache(max_entries=None)
        cold, warm = verdicts(cache)
        oracle_cold, oracle_warm = verdicts(
            SolveCache(max_entries=None, core_reuse=False)
        )
        assert cold == oracle_cold
        assert warm == oracle_warm
        assert cold == warm
        # The termination stream is the acceptance workload: the warm
        # replay must answer part of it by subsumption, deterministically.
        assert cache.cores_stored > 0
        assert cache.core_hits > 0
        rerun = SolveCache(max_entries=None)
        verdicts(rerun)
        assert rerun.core_hits == cache.core_hits
