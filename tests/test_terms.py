"""Tests for the hash-consed term DAG."""

from repro.smtlib import build
from repro.smtlib.terms import Op, Term, map_terms


class TestHashConsing:
    def test_identical_constants_share_nodes(self):
        assert build.IntConst(42) is build.IntConst(42)

    def test_distinct_constants_are_distinct(self):
        assert build.IntConst(42) is not build.IntConst(43)

    def test_identical_applications_share_nodes(self):
        x = build.IntVar("x")
        assert build.Add(x, x) is build.Add(x, x)

    def test_argument_order_matters(self):
        x = build.IntVar("x")
        y = build.IntVar("y")
        assert build.Add(x, y) is not build.Add(y, x)

    def test_variables_keyed_by_name_and_sort(self):
        assert build.IntVar("x") is build.IntVar("x")
        assert build.IntVar("x") is not build.RealVar("x")

    def test_payload_distinguishes_extracts(self):
        v = build.BitVecVar("v", 8)
        assert build.Extract(3, 0, v) is not build.Extract(4, 1, v)
        assert build.Extract(3, 0, v) is build.Extract(3, 0, v)

    def test_tids_unique(self):
        x = build.IntVar("x")
        term = build.Add(x, build.IntConst(1))
        assert term.tid != x.tid


class TestTraversal:
    def test_subterms_postorder_each_once(self):
        x = build.IntVar("x")
        shared = build.Mul(x, x)
        root = build.Add(shared, shared)
        nodes = list(root.subterms())
        assert nodes.count(shared) == 1
        assert nodes[-1] is root
        assert nodes.index(x) < nodes.index(shared) < nodes.index(root)

    def test_variables(self):
        x = build.IntVar("x")
        y = build.IntVar("y")
        root = build.Add(build.Mul(x, y), x)
        assert set(root.variables()) == {"x", "y"}

    def test_constants(self):
        root = build.Add(build.IntConst(2), build.IntConst(3))
        values = sorted(c.value for c in root.constants())
        assert values == [2, 3]

    def test_size_counts_dag_nodes(self):
        x = build.IntVar("x")
        shared = build.Mul(x, x)
        root = build.Add(shared, shared)
        assert root.size() == 3  # x, x*x, sum

    def test_tree_size_counts_occurrences(self):
        x = build.IntVar("x")
        shared = build.Mul(x, x)
        root = build.Add(shared, shared)
        assert root.tree_size() == 7  # (x x *) twice + root

    def test_depth(self):
        x = build.IntVar("x")
        assert x.depth() == 1
        assert build.Mul(x, x).depth() == 2
        assert build.Add(build.Mul(x, x), x).depth() == 3

    def test_deep_term_traversal_is_iterative(self):
        # Far beyond Python's default recursion limit.
        term = build.IntVar("x")
        for _ in range(5000):
            term = build.Add(term, build.IntConst(1))
        assert term.size() == 5002

    def test_deep_term_repr_is_safe(self):
        term = build.IntVar("x")
        for _ in range(3000):
            term = build.Neg(term)
        assert isinstance(repr(term), str)


class TestMapTerms:
    def test_identity_transform_preserves_nodes(self):
        x = build.IntVar("x")
        root = build.Add(build.Mul(x, x), build.IntConst(1))

        def identity(term, new_args):
            if not term.args:
                return term
            return Term(term.op, tuple(new_args), term.payload, term.sort)

        assert map_terms([root], identity)[0] is root

    def test_substitution(self):
        x = build.IntVar("x")
        root = build.Add(x, build.IntConst(1))

        def substitute(term, new_args):
            if term.is_var:
                return build.IntConst(5)
            if not term.args:
                return term
            return Term(term.op, tuple(new_args), term.payload, term.sort)

        result = map_terms([root], substitute)[0]
        assert result is build.Add(build.IntConst(5), build.IntConst(1))

    def test_multiple_roots_share_memo(self):
        x = build.IntVar("x")
        a = build.Mul(x, x)
        b = build.Add(a, x)
        calls = []

        def spy(term, new_args):
            calls.append(term)
            if not term.args:
                return term
            return Term(term.op, tuple(new_args), term.payload, term.sort)

        map_terms([a, b], spy)
        # Each distinct node visited exactly once across both roots.
        assert len(calls) == len(set(t.tid for t in calls))
