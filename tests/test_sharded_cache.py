"""Sharded-cache tests: routing, quarantine, batched flush, two writers.

The two-writer scenarios pin down the concurrency contract added for the
solve service: :meth:`SolveCache.save` runs a read-merge-write cycle
under an advisory file lock, so a shard flush never silently discards
entries another process persisted since we loaded (the old behaviour
was last-writer-wins).
"""

import json
import multiprocessing
import os

import pytest

from repro import telemetry
from repro.cache import DEFAULT_SHARDS, ShardedSolveCache, SolveCache, open_cache
from repro.guard import chaos


@pytest.fixture(autouse=True)
def clean_slate():
    chaos.uninstall()
    telemetry.disable()
    telemetry.get_registry().reset()
    yield
    chaos.uninstall()
    telemetry.disable()
    telemetry.get_registry().reset()


def _key(index, shard=None, shards=4):
    """A hex cache key; with ``shard`` given, one routed to that shard."""
    if shard is None:
        return f"{index:08x}feedc0de"
    base = shard + shards * index
    return f"{base:08x}feedc0de"


def _entry(work=7, status="sat"):
    return {"status": status, "work": work, "engine": "test", "model": None,
            "stats": {}}


def _digests(*seeds):
    return frozenset(f"{seed:024x}" for seed in seeds)


# -- open_cache dispatch -----------------------------------------------------


class TestOpenCache:
    def test_json_path_opens_flat_store(self, tmp_path):
        cache = open_cache(str(tmp_path / "cache.json"))
        assert isinstance(cache, SolveCache)

    def test_directory_opens_sharded_store(self, tmp_path):
        target = tmp_path / "shards"
        target.mkdir()
        assert isinstance(open_cache(str(target)), ShardedSolveCache)

    def test_shards_request_creates_sharded_store(self, tmp_path):
        cache = open_cache(str(tmp_path / "new-dir"), shards=3)
        assert isinstance(cache, ShardedSolveCache)
        assert cache.shards == 3


# -- routing and the store interface -----------------------------------------


class TestSharding:
    def test_routing_is_stable_and_partitioned(self, tmp_path):
        cache = ShardedSolveCache(str(tmp_path / "s"), shards=4)
        keys = [_key(i) for i in range(32)]
        for index, key in enumerate(keys):
            cache.put(key, _entry(work=index))
        assert len(cache) == 32
        for index, key in enumerate(keys):
            assert key in cache
            assert cache.get(key)["work"] == index
        # Every entry lives in exactly one shard, chosen by key prefix.
        per_shard = cache.stats()["per_shard_entries"]
        assert sum(per_shard) == 32
        for store in cache._stores:
            for key in store._entries:
                assert cache._shard_for_key(key) is store

    def test_same_key_routes_identically_across_opens(self, tmp_path):
        cache = ShardedSolveCache(str(tmp_path / "s"), shards=4)
        key = _key(5, shard=2)
        cache.put(key, _entry())
        cache.save()
        reopened = ShardedSolveCache(str(tmp_path / "s"))
        assert reopened.get(key) == _entry()

    def test_cores_shard_and_probe_across_shards(self, tmp_path):
        cache = ShardedSolveCache(str(tmp_path / "s"), shards=4)
        first = _digests(1, 2)
        second = _digests(3, 4, 5)
        assert cache.add_core(first)
        assert cache.add_core(second)
        assert cache.has_cores()
        # find_core probes every shard: both cores are reachable even
        # though they live in different files.
        assert cache.find_core(_digests(1, 2, 9)) == first
        assert cache.find_core(_digests(3, 4, 5, 6)) == second
        assert cache.find_core(_digests(7)) is None

    def test_meta_pins_shard_count(self, tmp_path):
        ShardedSolveCache(str(tmp_path / "s"), shards=2).save(force=True)
        reopened = ShardedSolveCache(str(tmp_path / "s"), shards=8)
        assert reopened.shards == 2  # the recorded layout wins

    def test_garbled_meta_falls_back_to_default_layout(self, tmp_path):
        target = tmp_path / "s"
        ShardedSolveCache(str(target), shards=2)
        (target / "meta.json").write_text("{not json", encoding="utf-8")
        assert ShardedSolveCache(str(target)).shards == DEFAULT_SHARDS

    def test_default_shard_count(self, tmp_path):
        assert ShardedSolveCache(str(tmp_path / "s")).shards == DEFAULT_SHARDS


# -- batched flushes ---------------------------------------------------------


class TestBatchedFlush:
    def test_save_flushes_only_dirty_shards(self, tmp_path):
        cache = ShardedSolveCache(str(tmp_path / "s"), shards=4)
        cache.put(_key(0, shard=1), _entry())
        cache.put(_key(1, shard=1), _entry())
        cache.put(_key(0, shard=3), _entry())
        assert cache.save() == 2  # shards 1 and 3
        assert cache.save() == 0  # nothing dirty anymore
        cache.put(_key(2, shard=1), _entry())
        assert cache.save() == 1

    def test_force_flushes_everything(self, tmp_path):
        cache = ShardedSolveCache(str(tmp_path / "s"), shards=3)
        assert cache.save(force=True) == 3
        for index in range(3):
            assert (tmp_path / "s" / f"shard-{index:02d}.json").exists()

    def test_clear_empties_all_shards_persistently(self, tmp_path):
        cache = ShardedSolveCache(str(tmp_path / "s"), shards=2)
        for index in range(8):
            cache.put(_key(index), _entry())
        cache.save()
        cache.clear()
        # clear() persists with merge=False: a reopen must not
        # resurrect what was just dropped.
        assert len(ShardedSolveCache(str(tmp_path / "s"))) == 0


# -- per-shard quarantine ----------------------------------------------------


class TestQuarantine:
    def test_one_corrupt_shard_never_takes_down_the_store(self, tmp_path):
        target = tmp_path / "s"
        cache = ShardedSolveCache(str(target), shards=4)
        keys = [_key(i, shard=s) for s in range(4) for i in range(3)]
        for key in keys:
            cache.put(key, _entry())
        cache.save()
        (target / "shard-02.json").write_text("garbage{{{", encoding="utf-8")
        reopened = ShardedSolveCache(str(target))
        # Shard 2's entries are gone (quarantined aside), the other nine
        # survive, and nothing raised.
        assert len(reopened) == 9
        assert (target / "shard-02.json.corrupt").exists()
        for key in keys:
            if cache._shard_for_key(key) is not cache._stores[2]:
                assert reopened.get(key) == _entry()


# -- two writers, one store --------------------------------------------------


def _writer_process(path, prefix, count, barrier):
    cache = SolveCache(path=path)
    for index in range(count):
        cache.put(f"{prefix}{index:06x}aa", _entry(work=index))
    barrier.wait()
    cache.save()


class TestTwoWriters:
    def test_merge_on_save_keeps_both_writers_entries(self, tmp_path):
        path = str(tmp_path / "shared.json")
        ours = SolveCache(path=path)
        theirs = SolveCache(path=path)
        ours.put(_key(1), _entry(work=1))
        theirs.put(_key(2), _entry(work=2))
        theirs.save()
        ours.save()  # last writer: must merge, not clobber
        merged = SolveCache(path=path)
        assert merged.get(_key(1)) == _entry(work=1)
        assert merged.get(_key(2)) == _entry(work=2)

    def test_clear_does_not_merge_back_disk_state(self, tmp_path):
        path = str(tmp_path / "shared.json")
        cache = SolveCache(path=path)
        cache.put(_key(1), _entry())
        cache.save()
        cache.clear()
        assert len(SolveCache(path=path)) == 0

    def test_merge_skips_checksum_failures(self, tmp_path):
        path = str(tmp_path / "shared.json")
        seed = SolveCache(path=path)
        seed.put(_key(1), _entry(work=1))
        seed.put(_key(2), _entry(work=2))
        seed.save()
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["entries"][_key(1)]["work"] = 999  # bit-rot, checksum now wrong
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        other = SolveCache()  # no path: save(path=...) writes explicitly
        other.put(_key(3), _entry(work=3))
        other.save(path=path)
        merged = SolveCache(path=path)
        assert merged.get(_key(1)) is None  # rotten entry not rescued
        assert merged.get(_key(2)) == _entry(work=2)
        assert merged.get(_key(3)) == _entry(work=3)

    def test_merge_preserves_cores(self, tmp_path):
        path = str(tmp_path / "shared.json")
        ours = SolveCache(path=path)
        theirs = SolveCache(path=path)
        ours.add_core(_digests(1, 2))
        theirs.add_core(_digests(3, 4))
        theirs.save()
        ours.save()
        merged = SolveCache(path=path)
        assert merged.find_core(_digests(1, 2, 5)) == _digests(1, 2)
        assert merged.find_core(_digests(3, 4, 5)) == _digests(3, 4)

    def test_two_processes_flush_the_same_shard(self, tmp_path):
        # The real drill: two OS processes race save() on one file. The
        # advisory lock serializes the read-merge-write cycles, so both
        # result sets land regardless of who wins the race.
        path = str(tmp_path / "contested.json")
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        barrier = context.Barrier(2)
        writers = [
            context.Process(target=_writer_process, args=(path, prefix, 20, barrier))
            for prefix in ("aa", "bb")
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join(timeout=30)
            assert process.exitcode == 0
        merged = SolveCache(path=path)
        assert len(merged) == 40
        for prefix in ("aa", "bb"):
            for index in range(20):
                assert merged.get(f"{prefix}{index:06x}aa") == _entry(work=index)

    def test_two_sharded_stores_interleave_without_loss(self, tmp_path):
        target = str(tmp_path / "s")
        first = ShardedSolveCache(target, shards=2)
        second = ShardedSolveCache(target, shards=2)
        for index in range(10):
            first.put(_key(index, shard=index % 2, shards=2), _entry(work=index))
            second.put(
                _key(100 + index, shard=index % 2, shards=2), _entry(work=100 + index)
            )
        first.save()
        second.save()
        merged = ShardedSolveCache(target)
        assert merged.shards == 2
        assert len(merged) == 20

    def test_no_lock_files_leak_into_entries(self, tmp_path):
        path = str(tmp_path / "shared.json")
        cache = SolveCache(path=path)
        cache.put(_key(1), _entry())
        cache.save()
        # The advisory lock uses a sibling .lock file; it must never be
        # mistaken for cache payload by a reopen of the directory.
        siblings = sorted(os.listdir(tmp_path))
        assert "shared.json" in siblings
        reopened = SolveCache(path=path)
        assert len(reopened) == 1
