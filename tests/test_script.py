"""Tests for the Script container and logic inference."""

import pytest

from repro.errors import SmtLibError
from repro.smtlib import build, parse_script
from repro.smtlib.script import Script
from repro.smtlib.sorts import INT


class TestConstruction:
    def test_from_assertions_collects_declarations(self):
        x = build.IntVar("x")
        y = build.IntVar("y")
        script = Script.from_assertions([build.Lt(x, y)])
        assert set(script.declarations) == {"x", "y"}

    def test_add_assertion_requires_bool(self):
        script = Script()
        with pytest.raises(SmtLibError):
            script.add_assertion(build.IntConst(1))

    def test_sort_conflict_rejected(self):
        script = Script()
        script.add_assertion(build.Gt(build.IntVar("x"), build.IntConst(0)))
        with pytest.raises(SmtLibError):
            script.add_assertion(build.RealVar("x"))
        # a bool var named x would conflict too
        with pytest.raises(SmtLibError):
            script.add_assertion(build.BoolVar("x"))

    def test_conjunction(self):
        x = build.IntVar("x")
        a1 = build.Gt(x, build.IntConst(0))
        a2 = build.Lt(x, build.IntConst(9))
        script = Script.from_assertions([a1, a2])
        conjunction = script.conjunction()
        assert set(conjunction.args) == {a1, a2}

    def test_empty_conjunction_is_true(self):
        assert Script().conjunction() is build.TRUE


class TestLogicInference:
    CASES = [
        ("(declare-fun x () Int)(assert (< x 3))", "QF_LIA"),
        ("(declare-fun x () Int)(assert (= (* x x) 4))", "QF_NIA"),
        ("(declare-fun x () Int)(assert (= (* 3 x) 4))", "QF_LIA"),
        ("(declare-fun x () Real)(assert (< x 3.0))", "QF_LRA"),
        ("(declare-fun x () Real)(assert (= (* x x) 4.0))", "QF_NRA"),
        (
            "(declare-fun x () Real)(declare-fun y () Real)(assert (> (/ x y) 1.0))",
            "QF_NRA",
        ),
        ("(declare-fun x () Real)(assert (> (/ x 2.0) 1.0))", "QF_LRA"),
        ("(declare-fun v () (_ BitVec 4))(assert (= v (_ bv3 4)))", "QF_BV"),
        ("(declare-fun x () Int)(assert (= (div x 3) 1))", "QF_LIA"),
        ("(declare-fun x () Int)(declare-fun y () Int)(assert (= (div x y) 1))", "QF_NIA"),
    ]

    @pytest.mark.parametrize("source,expected", CASES)
    def test_inferred_logic(self, source, expected):
        script = parse_script(source)
        assert script.infer_logic() == expected


class TestBoundedness:
    def test_bounded_detection(self):
        bv = parse_script("(declare-fun v () (_ BitVec 4))(assert (= v v))")
        assert bv.is_bounded
        integer = parse_script("(declare-fun x () Int)(assert (= x x))")
        assert not integer.is_bounded

    def test_size(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (= (* x x) 4))(assert (> (* x x) 0))"
        )
        # Shared nodes counted once: x, x*x, 4, =, 0, > -> 6.
        assert script.size() == 6
