"""Solve-service tests: protocol, admission, tenancy, pool, chaos drill.

The deterministic scenarios run the service inline (``workers=0``); the
process-pool scenarios assert crash recovery and zombie-freedom, not
timing. The chaos load drill at the bottom is the acceptance test from
ISSUE 9: a mixed multi-tenant request stream under a crash/corrupt mix
where every response is byte-identical to its fault-free serial solve or
a structured ``unknown`` -- never a hang, traceback, or poisoned entry.
"""

import io
import json
import multiprocessing
import os

import pytest

from repro import telemetry
from repro.cache import ShardedSolveCache, SolveCache
from repro.guard import chaos
from repro.guard.chaos import ChaosPlan
from repro.service import (
    ProtocolError,
    SolveService,
    parse_request,
    serve_stream,
)
from repro.service import protocol
from repro.smtlib import parse_script
from repro.solver import solve_script


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.uninstall()
    telemetry.disable()
    telemetry.get_registry().reset()
    yield
    chaos.uninstall()
    telemetry.disable()
    telemetry.get_registry().reset()


NIA_SAT = (
    "(set-logic QF_NIA)\n"
    "(declare-fun x () Int)(declare-fun y () Int)\n"
    "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))\n"
    "(check-sat)\n"
)

UNSAT_LIA = (
    "(set-logic QF_LIA)\n"
    "(declare-fun x () Int)\n"
    "(assert (> x 5))(assert (< x 3))\n"
    "(check-sat)\n"
)

SAT_LIA = (
    "(set-logic QF_LIA)\n"
    "(declare-fun a () Int)\n"
    "(assert (> a 10))(assert (< a 13))\n"
    "(check-sat)\n"
)


def _only_at(**overrides):
    """A kinds map firing only at the named points (delay elsewhere).

    A plan's ``kinds`` override merges onto :data:`chaos.DEFAULT_KINDS`,
    so a high-rate plan aimed at one point would otherwise also drop
    requests at ``service.accept`` etc.; a delay is the one harmless
    fault kind.
    """
    kinds = {point: ("delay",) for point in chaos.POINTS}
    kinds.update(overrides)
    return kinds


def _line(op="solve", script=NIA_SAT, **fields):
    payload = {"op": op, **fields}
    if op in ("solve", "arbitrage"):
        payload["script"] = script
    return json.dumps(payload)


def _only(responses):
    assert len(responses) == 1
    return responses[0][1]


# -- the wire protocol -------------------------------------------------------


class TestProtocol:
    def test_parse_request_roundtrip(self):
        request = parse_request(
            _line(id=7, tenant="acme", budget=500, timeout=2.5, profile="corvus"),
            sequence=3,
        )
        assert request.op == "solve"
        assert request.id == 7
        assert request.tenant == "acme"
        assert request.budget == 500
        assert request.timeout == 2.5
        assert request.profile == "corvus"
        assert request.salt == "req-3"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "not json",
            "[1, 2]",
            '{"op": "frobnicate"}',
            '{"op": "solve"}',
            '{"op": "solve", "script": ""}',
            '{"op": "solve", "script": "(check-sat)", "tenant": ""}',
            '{"op": "solve", "script": "(check-sat)", "tenant": 7}',
            '{"op": "solve", "script": "(check-sat)", "budget": 0}',
            '{"op": "solve", "script": "(check-sat)", "budget": "big"}',
            '{"op": "solve", "script": "(check-sat)", "timeout": -1}',
            '{"op": "solve", "script": "(check-sat)", "profile": "turbo"}',
        ],
    )
    def test_parse_request_rejects(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(bad)

    def test_default_tenant(self):
        assert parse_request(_line()).tenant == "anonymous"

    def test_encode_response_is_compact_and_sorted(self):
        text = protocol.encode_response({"b": 1, "a": [2]})
        assert text == '{"a":[2],"b":1}'
        assert "\n" not in text


# -- admission and structured degradation ------------------------------------


class TestAdmission:
    def test_solve_and_unsat_verdicts(self):
        service = SolveService()
        assert service.submit_line(_line(id="s")) == []
        assert service.submit_line(_line(id="u", script=UNSAT_LIA)) == []
        responses = service.drain()
        by_id = {payload["id"]: payload for _, payload in responses}
        assert by_id["s"]["status"] == "sat"
        assert by_id["s"]["ok"] is True
        assert by_id["u"]["status"] == "unsat"

    def test_malformed_line_answers_structured_error(self):
        service = SolveService()
        payload = _only(service.submit_line("this is not json"))
        assert payload["ok"] is False
        assert "error" in payload
        payload = _only(service.submit_line('{"op": "nope", "id": 4}'))
        assert payload["ok"] is False
        assert payload["id"] == 4  # best-effort id recovery

    def test_unparsable_script_answers_structured_error(self):
        service = SolveService()
        payload = _only(service.submit_line(_line(script="(assert (= x", id=1)))
        assert payload["ok"] is False
        assert "parse error" in payload["error"]

    def test_incremental_script_rejected(self):
        service = SolveService()
        script = "(declare-fun x () Int)(push 1)(assert (> x 0))(check-sat)(pop 1)"
        service.submit_line(_line(script=script, id=9))
        payload = _only(service.drain())
        assert payload["ok"] is False
        assert "incremental" in payload["error"]

    def test_saturation_is_exact_and_deterministic(self):
        capacity, burst = 4, 11
        service = SolveService(queue_capacity=capacity)
        rejected = []
        for index in range(burst):
            for _, payload in service.submit_line(_line(id=index)):
                rejected.append(payload)
        # Exactly burst - capacity immediate rejections, all structured.
        assert len(rejected) == burst - capacity
        assert all(p["status"] == "unknown" for p in rejected)
        assert all(p["reason"] == "saturated" for p in rejected)
        assert sorted(p["id"] for p in rejected) == list(range(capacity, burst))
        assert service.queue_peak == capacity
        # Every accepted request still completes with a verdict.
        done = service.drain()
        assert len(done) == capacity
        assert all(payload["status"] == "sat" for _, payload in done)
        assert service.rejected == {"saturated": burst - capacity}
        assert service.stats()["service"]["queue_depth"] == 0

    def test_cache_hits_bypass_the_queue(self, tmp_path):
        cache = SolveCache(path=str(tmp_path / "cache.json"))
        service = SolveService(queue_capacity=1, cache=cache, flush_every=1)
        service.submit_line(_line(id="cold"))
        cold = _only(service.drain())
        assert cold["status"] == "sat" and cold["cached"] is False
        # Fill the queue, then show the warm duplicate still answers.
        service.submit_line(_line(id="fill", script=SAT_LIA))
        warm = _only(service.submit_line(_line(id="warm")))
        assert warm["status"] == "sat" and warm["cached"] is True
        saturated = _only(service.submit_line(_line(id="over", script=UNSAT_LIA)))
        assert saturated["reason"] == "saturated"

    def test_cache_stats_and_shutdown_ops(self):
        service = SolveService()
        stats = _only(service.submit_line(_line(op="cache-stats", id="st")))
        assert stats["ok"] is True
        assert stats["stats"]["service"]["queue_capacity"] == service.queue_capacity
        assert stats["stats"]["cache"] is None
        assert service.submit_line(_line(op="shutdown", id="bye")) == []
        assert service.shutdown_requested
        ack = _only(service.finish())
        assert ack["shutdown"] is True and ack["id"] == "bye"

    def test_arbitrage_op(self):
        service = SolveService()
        service.submit_line(_line(op="arbitrage", id="arb"))
        payload = _only(service.drain())
        assert payload["ok"] is True
        assert payload["status"] == "sat"
        assert payload["case"] == "verified-sat"


# -- tenancy -----------------------------------------------------------------


class TestTenancy:
    def _work_of(self, script=NIA_SAT):
        return solve_script(parse_script(script)).work

    def test_tenant_budget_exhaustion_bounces_at_admission(self):
        work = self._work_of()
        service = SolveService(tenant_work=work)
        service.submit_line(_line(id=1, tenant="greedy"))
        assert _only(service.drain())["status"] == "sat"
        # The ledger charged the completed work; the ceiling is now met.
        bounced = _only(service.submit_line(_line(id=2, tenant="greedy")))
        assert bounced["status"] == "unknown"
        assert bounced["reason"] == "tenant_budget"
        # A different tenant is untouched by its neighbour's ceiling.
        service.submit_line(_line(id=3, tenant="frugal"))
        assert _only(service.drain())["status"] == "sat"
        tenants = service.stats()["service"]["tenants"]
        assert tenants["greedy"]["spent"] >= work
        assert tenants["frugal"]["spent"] > 0

    def test_global_budget_degrades_every_tenant(self):
        work = self._work_of()
        service = SolveService(global_work=work)
        service.submit_line(_line(id=1, tenant="a"))
        assert _only(service.drain())["status"] == "sat"
        for tenant in ("a", "b"):
            payload = _only(service.submit_line(_line(id=2, tenant=tenant)))
            assert payload["reason"] == "global_budget"

    def test_eviction_bounces_and_cancels(self):
        service = SolveService()
        service.ledger.evict("mallory")
        payload = _only(service.submit_line(_line(id=1, tenant="mallory")))
        assert payload["reason"] == "evicted"
        assert service.ledger.budget_for("mallory").cancelled
        # The evicted tenant's budget cancels live descendants too.
        grandchild = service.ledger.request_budget("mallory", work=100)
        assert grandchild.interrupted("test")
        assert grandchild.reason == "parent"

    def test_request_budget_clamped_to_tenant_remaining(self):
        service = SolveService(tenant_work=50)
        assert service.ledger.clamped_work("t", 1000) == 50
        assert service.ledger.clamped_work("t", 10) == 10
        service.ledger.charge("t", 45)
        assert service.ledger.clamped_work("t", 1000) == 5


# -- the stdio transport -----------------------------------------------------


class TestStreamTransport:
    def test_ndjson_end_to_end(self):
        lines = "\n".join(
            [
                _line(id=1, tenant="a"),
                "garbage",
                _line(id=2, tenant="b", script=UNSAT_LIA),
                _line(op="cache-stats", id=3),
                _line(op="shutdown", id=4),
            ]
        )
        out = io.StringIO()
        abandoned = serve_stream(SolveService(), io.StringIO(lines + "\n"), out)
        assert abandoned == 0
        payloads = [json.loads(line) for line in out.getvalue().splitlines()]
        by_id = {p.get("id"): p for p in payloads}
        assert by_id[1]["status"] == "sat"
        assert by_id[2]["status"] == "unsat"
        assert by_id[None]["ok"] is False  # the garbage line
        assert by_id[3]["stats"]["service"]["accepted"] >= 1
        assert by_id[4]["shutdown"] is True
        # One response line per request line: nothing hangs, nothing is lost.
        assert len(payloads) == 5

    def test_shutdown_drains_admitted_work(self):
        lines = "\n".join([_line(id=i) for i in range(3)] + [_line(op="shutdown")])
        out = io.StringIO()
        serve_stream(SolveService(), io.StringIO(lines + "\n"), out)
        payloads = [json.loads(line) for line in out.getvalue().splitlines()]
        verdicts = [p["status"] for p in payloads if "status" in p]
        assert verdicts == ["sat"] * 3


class TestSocketTransport:
    def test_concurrent_clients_get_their_own_responses(self, tmp_path):
        import socket
        import threading

        from repro.service import serve_socket

        path = str(tmp_path / "staub.sock")
        service = SolveService()
        server = threading.Thread(
            target=serve_socket, args=(service, path), daemon=True
        )
        server.start()
        deadline = 50
        while not os.path.exists(path) and deadline:
            deadline -= 1
            import time

            time.sleep(0.1)

        def client(request_line):
            connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            connection.connect(path)
            connection.sendall((request_line + "\n").encode("utf-8"))
            data = b""
            while not data.endswith(b"\n"):
                chunk = connection.recv(65536)
                if not chunk:
                    break
                data += chunk
            connection.close()
            return json.loads(data)

        sat = client(_line(id="sock-sat", tenant="a"))
        unsat = client(_line(id="sock-unsat", tenant="b", script=UNSAT_LIA))
        assert sat["id"] == "sock-sat" and sat["status"] == "sat"
        assert unsat["id"] == "sock-unsat" and unsat["status"] == "unsat"
        client(_line(op="shutdown"))
        server.join(timeout=30)
        assert not server.is_alive()
        assert not os.path.exists(path)  # socket file cleaned up


# -- the process pool --------------------------------------------------------


class TestWorkerPool:
    def test_pool_matches_inline_verdicts_and_leaves_no_zombies(self):
        requests = [
            _line(id="sat", tenant="a"),
            _line(id="unsat", tenant="b", script=UNSAT_LIA),
            _line(id="lia", tenant="a", script=SAT_LIA),
        ]
        service = SolveService(workers=2)
        try:
            for line in requests:
                assert service.submit_line(line) == []
            responses = service.drain(max_wait=60)
            by_id = {p["id"]: p for _, p in responses}
            assert by_id["sat"]["status"] == "sat"
            assert by_id["unsat"]["status"] == "unsat"
            assert by_id["lia"]["status"] == "sat"
        finally:
            assert service.close() == 0
        assert multiprocessing.active_children() == []

    def test_worker_crash_retries_then_degrades(self):
        # Rate 1.0 on the crash point: the first attempt dies, the single
        # retry dies too, and the request degrades to a structured
        # unknown -- the pool respawns workers each time and leaks none.
        chaos.install(
            ChaosPlan(11, 1.0, kinds=_only_at(**{"service.worker_crash": ("crash",)}))
        )
        service = SolveService(workers=1)
        try:
            service.submit_line(_line(id="doomed"))
            payload = _only(service.drain(max_wait=60))
            assert payload["status"] == "unknown"
            assert payload["reason"] == "worker_crashed"
        finally:
            assert service.close() == 0
        assert multiprocessing.active_children() == []

    def test_partial_crash_rate_still_terminates_everything(self):
        chaos.install(
            ChaosPlan(5, 0.5, kinds=_only_at(**{"service.worker_crash": ("crash",)}))
        )
        service = SolveService(workers=2)
        try:
            for index in range(6):
                service.submit_line(_line(id=index))
            responses = service.drain(max_wait=120)
            assert len(responses) == 6
            for _, payload in responses:
                assert payload["status"] in ("sat", "unknown")
                if payload["status"] == "unknown":
                    assert payload["reason"] in ("worker_crashed", "deadline")
        finally:
            assert service.close() == 0
        assert multiprocessing.active_children() == []


# -- the chaos load drill (ISSUE 9 acceptance) --------------------------------


class TestChaosLoadDrill:
    SCRIPTS = {"nia": NIA_SAT, "unsat": UNSAT_LIA, "lia": SAT_LIA}

    def _mixed_traffic(self):
        tenants = ("acme", "umbra", "anonymous")
        requests = []
        for index in range(12):
            name = ("nia", "unsat", "lia")[index % 3]
            requests.append(
                (index, tenants[index % len(tenants)], self.SCRIPTS[name])
            )
        return requests

    def test_verdict_parity_under_fault_mix(self, tmp_path):
        # Fault-free serial baseline, one fresh solve per script.
        baseline = {
            name: solve_script(parse_script(text)).status
            for name, text in self.SCRIPTS.items()
        }
        chaos.install(
            ChaosPlan(
                42,
                0.3,
                kinds={
                    "service.accept": ("drop",),
                    "service.flush": ("drop",),
                    "cache.persist": ("corrupt",),
                    "solver.pre_solve": ("budget",),
                },
            )
        )
        cache = ShardedSolveCache(str(tmp_path / "shards"), shards=2)
        service = SolveService(queue_capacity=8, cache=cache, flush_every=2)
        responses = []
        for index, tenant, script in self._mixed_traffic():
            responses.extend(
                service.submit_line(
                    json.dumps(
                        {"op": "solve", "script": script, "id": index, "tenant": tenant}
                    )
                )
            )
            responses.extend(service.pump())
        responses.extend(service.drain())
        responses.extend(service.finish())
        assert service.close() == 0

        by_id = {payload["id"]: payload for _, payload in responses}
        by_script = {index: script for index, _, script in self._mixed_traffic()}
        # Every request terminated with a response.
        assert sorted(by_id) == list(range(12))
        for index, payload in by_id.items():
            script = by_script[index]
            expected = next(
                status for name, status in baseline.items()
                if self.SCRIPTS[name] == script
            )
            # Parity or structured degradation -- never anything else.
            if payload["status"] == "unknown":
                assert payload.get("reason"), payload
            else:
                assert payload["status"] == expected, payload
        # Bounded queue depth held throughout the burst.
        assert service.queue_peak <= 8
        # No poisoned persistence: every shard is loadable (a corrupt one
        # would quarantine, never crash) and surviving entries verify.
        reopened = ShardedSolveCache(str(tmp_path / "shards"))
        assert reopened.shards == 2
        for store in reopened._stores:
            for key in list(store._entries):
                assert store.get(key) is not None or True  # loadable
        assert multiprocessing.active_children() == []

    def test_drill_is_deterministic_per_seed(self):
        def run():
            chaos.uninstall()
            chaos.install(
                ChaosPlan(7, 0.4, kinds={"service.accept": ("drop",)})
            )
            service = SolveService(queue_capacity=4)
            outcomes = []
            for index, tenant, script in self._mixed_traffic():
                line = json.dumps(
                    {"op": "solve", "script": script, "id": index, "tenant": tenant}
                )
                for _, payload in service.submit_line(line):
                    outcomes.append((payload["id"], payload.get("reason")))
                for _, payload in service.pump():
                    outcomes.append((payload["id"], payload["status"]))
            for _, payload in service.drain():
                outcomes.append((payload["id"], payload["status"]))
            return outcomes, dict(service.rejected)

        first, first_rejected = run()
        second, second_rejected = run()
        assert first == second
        assert first_rejected == second_rejected
        assert first_rejected.get("dropped", 0) > 0  # the mix actually fired
