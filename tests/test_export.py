"""Tests for the results exporter."""

import csv
import io
import json

import pytest

from repro.evaluation.export import rows_as_dicts, to_csv, to_json, write_results
from repro.evaluation.runner import ExperimentCache


@pytest.fixture(scope="module")
def cache():
    return ExperimentCache(seed=21, scale=0.08, timeout=150_000)


class TestExport:
    def test_rows_cover_all_cells(self, cache):
        rows = rows_as_dicts(cache, logics=("QF_LIA",))
        suite_size = len(cache.suite("QF_LIA"))
        assert len(rows) == suite_size * 2 * 3  # profiles x strategies

    def test_json_round_trips(self, cache):
        data = json.loads(to_json(cache, logics=("QF_LIA",)))
        assert data
        sample = data[0]
        for field in ("logic", "profile", "strategy", "t_pre", "final"):
            assert field in sample

    def test_csv_has_header_and_rows(self, cache):
        text = to_csv(cache, logics=("QF_LIA",))
        reader = csv.DictReader(io.StringIO(text))
        rows = list(reader)
        assert rows
        assert set(("logic", "profile", "final")) <= set(rows[0])

    def test_write_results(self, cache, tmp_path):
        json_path = tmp_path / "results.json"
        csv_path = tmp_path / "results.csv"
        written = write_results(
            cache, json_path=str(json_path), csv_path=str(csv_path), logics=("QF_LIA",)
        )
        assert len(written) == 2
        assert json_path.exists() and csv_path.exists()

    def test_portfolio_invariant_in_export(self, cache):
        for record in rows_as_dicts(cache, logics=("QF_LIA",)):
            assert record["final"] <= record["t_pre"]
