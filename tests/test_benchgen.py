"""Tests for the benchmark generators."""

import pytest

from repro.benchgen import suite_for
from repro.smtlib.evaluator import evaluate_assertions

LOGICS = ("QF_NIA", "QF_LIA", "QF_NRA", "QF_LRA")


class TestDeterminism:
    @pytest.mark.parametrize("logic", LOGICS)
    def test_same_seed_same_suite(self, logic):
        first = suite_for(logic, seed=7)
        second = suite_for(logic, seed=7)
        assert [b.name for b in first] == [b.name for b in second]
        for a, b in zip(first, second):
            assert a.script.assertions == b.script.assertions

    def test_different_seeds_differ(self):
        first = suite_for("QF_NIA", seed=1)
        second = suite_for("QF_NIA", seed=2)
        assert any(
            a.script.assertions != b.script.assertions
            for a, b in zip(first, second)
        )


class TestPlantedModels:
    @pytest.mark.parametrize("logic", LOGICS)
    def test_planted_models_actually_satisfy(self, logic):
        for benchmark in suite_for(logic, seed=11):
            if benchmark.planted_model is not None:
                assert evaluate_assertions(
                    benchmark.script.assertions, benchmark.planted_model
                ), benchmark.name

    @pytest.mark.parametrize("logic", LOGICS)
    def test_sat_benchmarks_have_witnesses_except_irrational(self, logic):
        for benchmark in suite_for(logic, seed=11):
            if benchmark.expected == "sat" and benchmark.family != "irrational":
                assert benchmark.planted_model is not None, benchmark.name


class TestSuiteShape:
    def test_counts_at_default_scale(self):
        assert len(suite_for("QF_NIA")) == 54
        assert len(suite_for("QF_LIA")) == 42
        assert len(suite_for("QF_NRA")) == 36
        assert len(suite_for("QF_LRA")) == 30

    def test_scaling(self):
        full = len(suite_for("QF_NIA", scale=1.0))
        half = len(suite_for("QF_NIA", scale=0.5))
        assert half < full
        assert half >= 5

    def test_unsat_fraction_present(self):
        suite = suite_for("QF_NIA")
        expected = [b.expected for b in suite]
        assert expected.count("unsat") >= 5
        assert expected.count("sat") >= 20

    def test_logics_declared_consistently(self):
        for logic in LOGICS:
            for benchmark in suite_for(logic):
                declared = benchmark.script.logic
                assert declared == logic, (benchmark.name, declared)

    def test_names_unique(self):
        for logic in LOGICS:
            names = [b.name for b in suite_for(logic)]
            assert len(names) == len(set(names))

    def test_unknown_logic_rejected(self):
        with pytest.raises(ValueError):
            suite_for("QF_S")


class TestFamilyProperties:
    def test_cube_unsat_targets_are_mod9_impossible(self):
        for benchmark in suite_for("QF_NIA"):
            if benchmark.family == "math-cubes" and benchmark.expected == "unsat":
                constant = max(
                    c.value
                    for c in benchmark.script.assertions[0].constants()
                    if isinstance(c.value, int)
                )
                assert constant % 9 in (4, 5)

    def test_parity_family_is_even_sum_odd_target(self):
        for benchmark in suite_for("QF_NIA"):
            if benchmark.family == "parity":
                assert benchmark.expected == "unsat"

    def test_decimal_lra_has_non_dyadic_constants(self):
        from repro.core.absint import dig

        found_non_dyadic = False
        for benchmark in suite_for("QF_LRA"):
            if benchmark.family != "decimal-systems":
                continue
            for assertion in benchmark.script.assertions:
                for constant in assertion.constants():
                    if dig(constant.value) is None:
                        found_non_dyadic = True
        assert found_non_dyadic

    def test_coin_unsat_targets_unreachable(self):
        # Spot-check the Frobenius arithmetic with brute force.
        for benchmark in suite_for("QF_LIA"):
            if benchmark.family == "coin" and benchmark.expected == "unsat":
                constants = [
                    c.value
                    for c in benchmark.script.assertions[0].constants()
                ]
                target = max(constants)
                coefficients = sorted(
                    c for c in constants if c not in (0, target)
                )
                a, b = coefficients[0], coefficients[1]
                reachable = {
                    a * i + b * j
                    for i in range(target // a + 1)
                    for j in range(target // b + 1)
                }
                assert target not in reachable, benchmark.name
