"""Clause-arena identity and lifecycle: locked-clause survival across
DB reduction, deferred detach soundness, learned-clause implication, and
the Luby restart sequence against its defining recurrence."""

import random

from repro import telemetry
from repro.bv.bitblast import BitBlaster
from repro.sat.arena import ClauseArena, decode_literal, encode_literal
from repro.sat.cnf import CNF
from repro.sat.solver import SAT, UNSAT, SatSolver, luby, solve_cnf
from repro.smtlib import build
from repro.smtlib.script import Script


def random_3sat(seed, num_vars=60, ratio=4.0):
    rng = random.Random(seed)
    cnf = CNF(num_vars)
    for _ in range(int(ratio * num_vars)):
        variables = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause([v * rng.choice((1, -1)) for v in variables])
    return cnf


def watch_refs(solver):
    """Every arena offset currently present in a watch list (binary
    clauses are stored as negated offsets)."""
    refs = set()
    for watch_list in solver._watches:
        refs.update(abs(entry) for entry in watch_list[0::2])
    return refs


class TestLubySequence:
    def reference(self, i):
        # Defining recurrence (1-based): luby(i) = 2**(k-1) when
        # i == 2**k - 1, else luby(i - 2**(k-1) + 1).
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        return self.reference(i - (1 << (k - 1)) + 1)

    def test_matches_reference_recurrence(self):
        assert [luby(i) for i in range(256)] == [
            self.reference(i + 1) for i in range(256)
        ]

    def test_prefix(self):
        assert [luby(i) for i in range(15)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestLockedClauseSurvival:
    """Regression: with the old ``id()``-based locked set, a reason clause
    whose Python wrapper was not the identical object could be reclaimed
    by ``_reduce_db`` while still recorded as a variable's reason,
    leaving conflict analysis reading freed memory after a restart. The
    arena-offset check must keep it alive."""

    def build_locked_state(self):
        solver = SatSolver(3)
        # Decisions: -2 then -3; then a learned clause (1 2 3) forces 1.
        solver._trail_lim.append(len(solver._trail))
        solver._enqueue(encode_literal(-2))
        solver._trail_lim.append(len(solver._trail))
        solver._enqueue(encode_literal(-3))
        ref = solver._alloc_learned(
            [encode_literal(1), encode_literal(2), encode_literal(3)]
        )
        solver._enqueue(encode_literal(1), ref)
        assert solver.is_locked(ref)
        return solver, ref

    def fill_learned_db(self, solver, count=40):
        # Higher-activity padding clauses so the locked clause sorts into
        # the deletion half of the database.
        for _ in range(count):
            base = solver.num_vars
            solver.grow_to(base + 3)
            padding = solver._alloc_learned(
                [encode_literal(base + 1), encode_literal(base + 2),
                 encode_literal(base + 3)]
            )
            solver._bump_clause(padding)

    def test_reason_survives_reduce(self):
        solver, ref = self.build_locked_state()
        self.fill_learned_db(solver)
        solver._reduce_db()
        # The reason pointer must still reference a live block with the
        # original literals (the offset may have moved if the reduction
        # triggered a compaction -- follow the reason array, not ``ref``).
        reason_ref = solver._reason[encode_literal(1) >> 1]
        assert reason_ref >= 0
        assert not solver._arena.is_dead(reason_ref)
        assert sorted(solver.clause_literals(reason_ref)) == [1, 2, 3]
        assert solver.is_locked(reason_ref)
        assert reason_ref in solver.learned_refs()

    def test_reduce_then_restart_stays_consistent(self):
        solver, _ = self.build_locked_state()
        self.fill_learned_db(solver)
        solver._reduce_db()
        # No watch list may hold a dead offset after reduction.
        for watched in watch_refs(solver):
            assert not solver._arena.is_dead(watched)
        # Restart (backtrack to the root) and solve: the padding clauses
        # are all satisfiable together, so the search must finish cleanly.
        solver._backtrack(0)
        assert solver.solve() == SAT

    def test_unlocked_clauses_still_deleted(self):
        solver, ref = self.build_locked_state()
        self.fill_learned_db(solver)
        deleted_before = solver.stats.deleted_clauses
        solver._reduce_db()
        assert solver.stats.deleted_clauses > deleted_before


class TestDetachMidSearch:
    def test_detach_unlocked_removes_immediately(self):
        solver = SatSolver(4)
        solver.add_clause([1, 2, 3])
        ref = solver._alloc_learned(
            [encode_literal(2), encode_literal(3), encode_literal(4)]
        )
        assert solver.detach_clause(ref) is True
        assert ref not in solver.learned_refs()
        assert ref not in watch_refs(solver)
        assert solver._arena.is_dead(ref)

    def test_detach_locked_is_deferred_until_backtrack(self):
        solver = SatSolver(3)
        solver._trail_lim.append(len(solver._trail))
        solver._enqueue(encode_literal(-2))
        solver._trail_lim.append(len(solver._trail))
        solver._enqueue(encode_literal(-3))
        ref = solver._alloc_learned(
            [encode_literal(1), encode_literal(2), encode_literal(3)]
        )
        solver._enqueue(encode_literal(1), ref)

        # Refused while the clause is some variable's reason: it must
        # stay watched (conflict analysis may still resolve on it), and
        # a second request must not double-register.
        assert solver.detach_clause(ref) is False
        assert solver.detach_clause(ref) is False
        assert ref in solver.learned_refs()
        assert ref in watch_refs(solver)

        # Backtracking past the implied literal completes the detach.
        solver._backtrack(0)
        assert ref not in solver.learned_refs()
        assert ref not in watch_refs(solver)
        assert solver._arena.is_dead(ref)
        assert solver.stats.deleted_clauses == 1

    def test_detach_leaves_no_stale_offsets(self):
        # Detach every other learned clause after a real search; every
        # offset remaining in any watch list must be a live block.
        cnf = random_3sat(11)
        solver = SatSolver(cnf=cnf)
        assert solver.attach()
        solver.solve()
        for position, ref in enumerate(solver.learned_refs()):
            if position % 2 == 0:
                solver.detach_clause(ref)
        live = set(solver._arena.blocks())
        for watched in watch_refs(solver):
            assert watched in live
        # The solver must still answer correctly with the survivors.
        assert solver.solve() in (SAT, UNSAT)


class TestLearnedClausesImplied:
    """Property: every clause the solver learns -- including minimized
    ones -- is a logical consequence of the problem clauses. Witnessed by
    re-solving the problem with the learned clause's negation: UNSAT."""

    def test_learned_clauses_follow_from_problem(self):
        checked = 0
        for seed in range(6):
            cnf = random_3sat(seed, num_vars=40)
            solver = SatSolver(cnf.num_vars)
            for clause in cnf.clauses:
                solver.add_clause(clause)
            solver.solve()
            if solver.stats.minimized_literals:
                checked += 1
            for ref in solver.learned_refs()[:8]:
                negation = CNF(cnf.num_vars)
                for clause in cnf.clauses:
                    negation.add_clause(clause)
                for literal in solver.clause_literals(ref):
                    negation.add_clause([-literal])
                result, _, _ = solve_cnf(negation)
                assert result == UNSAT
        # The property is only interesting if minimization actually fired
        # on at least one instance.
        assert checked > 0


class TestStructureSharing:
    def test_gate_blocks_reused_not_reemitted(self):
        telemetry.enable()
        try:
            blaster = BitBlaster()
            a = blaster.cnf.new_var()
            b = blaster.cnf.new_var()
            first = blaster._gate_and(a, b)
            clauses_after_first = len(blaster.cnf)
            reuse_before = blaster.stats.block_reuse
            second = blaster._gate_and(a, b)
        finally:
            telemetry.disable()
            telemetry.get_registry().reset()
        assert second == first
        assert len(blaster.cnf) == clauses_after_first
        assert blaster.stats.block_reuse == reuse_before + 3
        (start, end), = [
            span for key, span in blaster.block_spans().items()
            if key[0] == "and"
        ]
        assert end - start == 3
        # Spans are clause indices, stable across arena compaction.
        for index in range(start, end):
            assert blaster.cnf.clause_ref(index) >= 0

    def test_attached_solver_matches_copying_solver(self):
        x = build.BitVecVar("x", 6)
        y = build.BitVecVar("y", 6)
        product = build.BVMul(x, y)
        script = Script.from_assertions(
            [build.Eq(product, build.BitVecConst(35, 6))]
        )
        blaster = BitBlaster()
        for assertion in script.assertions:
            blaster.assert_term(assertion)
        attached = SatSolver(cnf=blaster.cnf)
        assert attached.attach()
        copied_result, _, _ = solve_cnf(blaster.cnf)
        assert attached.solve() == copied_result == SAT


class TestArenaInvariants:
    def test_literal_encoding_roundtrip(self):
        for literal in list(range(-9, 0)) + list(range(1, 10)):
            assert decode_literal(encode_literal(literal)) == literal

    def test_compact_preserves_live_blocks_in_order(self):
        arena = ClauseArena()
        refs = [
            arena.add([encode_literal(lit) for lit in clause])
            for clause in ([1, -2], [2, 3, -4], [-1, 4], [3, -3 - 1])
        ]
        arena.mark_dead(refs[1])
        assert arena.wasted == 3 + 3  # literals + header
        before = [arena.dimacs(ref) for ref in refs if ref != refs[1]]
        mapping = arena.compact()
        assert refs[1] not in mapping
        remapped = [mapping[ref] for ref in refs if ref != refs[1]]
        assert remapped == sorted(remapped)  # relative order kept
        assert [arena.dimacs(ref) for ref in remapped] == before
        assert arena.wasted == 0

    def test_mark_dead_is_idempotent(self):
        arena = ClauseArena()
        ref = arena.add([0, 2, 4])
        arena.mark_dead(ref)
        arena.mark_dead(ref)
        assert arena.wasted == 6
        assert list(arena.blocks()) == []
