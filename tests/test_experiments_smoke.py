"""Tiny-scale smoke tests for every experiment module.

These run the real pipelines at a very small scale and budget so the
whole file stays fast; the full-scale runs live in benchmarks/ and
`python -m repro.evaluation.run_all`.
"""

import pytest

from repro.evaluation import ablation, bounded_gap, fig2, fig7, fig8, table2, table3
from repro.evaluation.runner import ExperimentCache


@pytest.fixture(scope="module")
def cache():
    return ExperimentCache(seed=13, scale=0.08, timeout=200_000)


class TestFig2:
    def test_sweep_structure(self, cache):
        results = fig2.sweep(cache, logics=("QF_LIA",), widths=(4, 8, 16))
        per_width = results["QF_LIA"]
        assert set(per_width) == {4, 8, 16}
        for data in per_width.values():
            assert data["geomean_work"] > 0
            assert 0.0 <= data["changed_fraction"] <= 1.0

    def test_normalization_reference_is_one(self, cache):
        results = fig2.sweep(cache, logics=("QF_LIA",), widths=(8, 16))
        normalized = fig2.normalized_times(results, reference_width=16)
        assert normalized["QF_LIA"][16] == pytest.approx(1.0)


class TestTable2:
    def test_counts_nonnegative_and_keyed(self, cache):
        table = table2.tractability_counts(cache, logics=("QF_LIA",))
        per_logic = table["QF_LIA"]
        for profile in ("zorro", "corvus"):
            for strategy in ("fixed8", "fixed16", "staub"):
                assert per_logic[profile][strategy] >= 0
        assert "intersection" in per_logic

    def test_intersection_bounded_by_profiles(self, cache):
        table = table2.tractability_counts(cache, logics=("QF_NIA",))
        per_logic = table["QF_NIA"]
        for strategy in ("fixed8", "fixed16", "staub"):
            both = per_logic["intersection"][strategy]
            assert both <= max(
                per_logic["zorro"][strategy], per_logic["corvus"][strategy]
            ) + both  # intersection counts a (possibly disjoint) subset


class TestTable3:
    def test_cell_fields(self, cache):
        cell = table3.cell(cache, "QF_LIA", "zorro", "staub", (0, 300))
        assert cell["count"] >= cell["verified_cases"] >= 0
        if cell["overall_speedup"] is not None:
            assert cell["overall_speedup"] >= 0.999

    def test_render_smoke(self, cache):
        text = table3.render.__module__  # render on tiny cache is heavy;
        assert text  # structure checked in benchmarks/


class TestFig7:
    def test_points_and_quadrants(self, cache):
        series = fig7.scatter_series(cache, logics=("QF_LIA",))
        points = series[("QF_LIA", "zorro")]
        assert points
        summary = fig7.quadrant_summary(points, timeout_seconds=200_000 / 4000)
        assert summary["above_diagonal"] == 0
        assert sum(
            summary[k] for k in ("improved", "tractability", "unchanged")
        ) == len(points)


class TestBoundedGap:
    def test_gap_positive(self, cache):
        result = bounded_gap.measure_gap(cache, profile="zorro", logic="QF_NIA")
        if result["count"]:
            assert result["geomean_ratio"] > 0


class TestFig8Small:
    def test_client_smoke(self):
        summary = fig8.run_client_experiment(budget=150_000, count=8)
        assert summary["benchmarks"] == 8
        assert summary["queries"] >= 8
        assert summary["overall_speedup"] >= 1.0


class TestAblationSmoke:
    def test_width_statistics(self, cache):
        stats = ablation.width_statistics(cache, logics=("QF_LIA", "QF_NIA"))
        assert stats["count"] > 0
        assert stats["min"] >= 4


class TestRunAllCli:
    def test_single_experiment_via_cli(self, capsys):
        from repro.evaluation.run_all import main

        assert main(["--experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_unknown_experiment(self):
        from repro.evaluation.run_all import main, run

        with pytest.raises(ValueError):
            run("table9", None, None)


class TestFamilies:
    def test_breakdown_covers_all_benchmarks(self, cache):
        from repro.evaluation.families import family_breakdown

        breakdown = family_breakdown(cache, "QF_LIA", "zorro")
        total = sum(data["count"] for data in breakdown.values())
        assert total == len(cache.suite("QF_LIA"))
        for data in breakdown.values():
            assert data["verified"] <= data["count"]
            assert data["overall_speedup"] >= 0.999


class TestAsciiScatter:
    def test_scatter_renders(self):
        from repro.evaluation.fig7 import ascii_scatter

        points = [(10.0, 1.0, "a"), (300.0, 5.0, "b"), (0.5, 0.5, "c")]
        art = ascii_scatter(points)
        assert "o" in art and ">" in art


class TestMotivating:
    def test_motivating_records(self):
        from repro.evaluation.motivating import run_motivating

        records = run_motivating(profile="zorro", budget=400_000)
        by_name = {record["instance"]: record for record in records}
        eigen = by_name["eigen"]
        # The magnitude-hard instance: the unbounded baseline flounders,
        # arbitrage verifies far cheaper, bounds imposition does not help.
        assert eigen["arbitrage_case"] == "verified-sat"
        assert eigen["arbitrage_work"] < eigen["original_work"]
        assert eigen["bounds_imposed_work"] >= eigen["arbitrage_work"]
