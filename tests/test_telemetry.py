"""Tests for the telemetry subsystem: spans, metrics, determinism, CLI."""

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.core.pipeline import Staub
from repro.smtlib import parse_script
from repro.solver import solve_script
from repro.telemetry.metrics import MetricsRegistry, format_metric
from repro.telemetry.profile import FIG3_STAGES, aggregate, load_trace, render_profile
from repro.telemetry.spans import NULL_SPAN, Tracer
from repro.telemetry.stats import STAT_KEYS, merge_stats, unified_stats


@pytest.fixture(autouse=True)
def telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    telemetry.disable()
    telemetry.get_registry().reset()
    yield
    telemetry.disable()
    telemetry.get_registry().reset()


CUBES = (
    "(set-logic QF_NIA)\n"
    "(declare-fun x () Int)(declare-fun y () Int)\n"
    "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))\n"
    "(check-sat)\n"
)


@pytest.fixture()
def nia_file(tmp_path):
    path = tmp_path / "cubes.smt2"
    path.write_text(CUBES)
    return str(path)


class TestSpans:
    def test_nesting_and_depths(self):
        tracer = Tracer()
        closed = []
        tracer.sink = closed.append
        with tracer.span("outer") as outer:
            outer.add_work(5)
            with tracer.span("inner") as inner:
                inner.add_work(7)
            outer.add_work(1)
        assert [s["name"] for s in closed] == ["inner", "outer"]
        assert closed[0]["depth"] == 1
        assert closed[1]["depth"] == 0
        assert closed[0]["work"] == 7
        # Outer includes its own work plus the child's.
        assert closed[1]["work"] == 13

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        closed = []
        tracer.sink = closed.append
        with pytest.raises(ValueError):
            with tracer.span("doomed") as span:
                span.add_work(3)
                raise ValueError("boom")
        assert len(closed) == 1
        assert closed[0]["name"] == "doomed"
        assert closed[0]["work"] == 3
        assert closed[0]["attrs"]["error"] is True
        assert tracer.depth == 0

    def test_forgotten_children_are_closed_with_parent(self):
        tracer = Tracer()
        closed = []
        tracer.sink = closed.append
        outer = tracer.span("outer")
        tracer.span("leaked")
        tracer.close(outer)
        assert [s["name"] for s in closed] == ["leaked", "outer"]
        assert tracer.depth == 0

    def test_settle_tops_up_without_double_counting(self):
        tracer = Tracer()
        with tracer.span("stage") as stage:
            with tracer.span("child") as child:
                child.add_work(30)
            stage.settle(100)
        assert stage.work == 100

    def test_virtual_timestamps_are_deterministic(self):
        def run():
            tracer = Tracer()
            out = []
            tracer.sink = out.append
            with tracer.span("a") as a:
                a.add_work(2)
                with tracer.span("b") as b:
                    b.add_work(3)
            return out

        assert run() == run()

    def test_disabled_span_is_noop_singleton(self):
        assert telemetry.span("anything") is NULL_SPAN
        with telemetry.span("x") as span:
            span.add_work(5)
            span.settle(10)
        assert span.work == 0


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c", engine="sat").inc(3)
        registry.counter("c", engine="sat").inc()
        registry.gauge("g").set(17)
        registry.histogram("h").observe(5)
        registry.histogram("h").observe(1)
        snap = registry.snapshot()
        assert snap["c{engine=sat}"] == 4
        assert snap["g"] == 17
        assert snap["h"] == {"count": 2, "sum": 6, "min": 1, "max": 5}

    def test_label_order_is_canonical(self):
        assert format_metric("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        registry = MetricsRegistry()
        registry.counter("m", b=1, a=2).inc()
        registry.counter("m", a=2, b=1).inc()
        assert registry.snapshot() == {"m{a=2,b=1}": 2}

    def test_type_confusion_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_disabled_helpers_record_nothing(self):
        telemetry.counter_add("x")
        telemetry.gauge_set("y", 1)
        telemetry.observe("z", 2)
        telemetry.record_counters({"k": 5})
        assert telemetry.snapshot() == {}


class TestUnifiedStats:
    def test_every_canonical_key_present(self):
        stats = unified_stats(propagations=10)
        for key in STAT_KEYS:
            assert key in stats
        assert stats["propagations"] == 10
        assert stats["pivots"] == 0

    def test_merge_adds_numbers_and_overwrites_labels(self):
        target = unified_stats(pivots=2)
        merge_stats(target, {"pivots": 3, "case": "verified-sat"})
        assert target["pivots"] == 5
        assert target["case"] == "verified-sat"

    def test_solve_result_stats_uniform_across_engines(self):
        bounded = parse_script(
            "(declare-fun v () (_ BitVec 6))(assert (= (bvmul v v) (_ bv36 6)))"
        )
        unbounded = parse_script(
            "(declare-fun x () Int)(assert (= (* x x) 49))"
        )
        bv = solve_script(bounded, budget=1_000_000)
        nia = solve_script(unbounded, budget=1_000_000)
        for key in STAT_KEYS:
            assert key in bv.stats, key
            assert key in nia.stats, key
        assert bv.stats["cnf_clauses"] > 0
        assert nia.stats["contractions"] > 0

    def test_detail_is_alias_of_stats(self):
        script = parse_script(
            "(declare-fun v () (_ BitVec 6))(assert (= (bvmul v v) (_ bv36 6)))"
        )
        result = solve_script(script, budget=1_000_000)
        assert result.detail is result.stats
        assert result.detail["cnf_vars"] == result.stats["cnf_vars"]

    def test_arbitrage_report_stats(self):
        report = Staub().run(parse_script(CUBES), budget=1_200_000)
        assert report.case == "verified-sat"
        assert report.stats["case"] == "verified-sat"
        assert report.stats["width"] == report.width
        assert report.stats["propagations"] > 0


class TestDeterminism:
    def _run_cell(self):
        """One small seeded suite cell with a fresh registry."""
        from repro.evaluation.runner import ExperimentCache
        from repro.telemetry import set_registry

        registry = MetricsRegistry()
        previous = set_registry(registry)
        telemetry.enable()
        try:
            cache = ExperimentCache(seed=7, scale=0.05)
            cache.rows("QF_NIA", "zorro", "staub")
        finally:
            telemetry.disable()
            set_registry(previous)
        return json.dumps(registry.snapshot(), sort_keys=True)

    def test_counters_byte_identical_across_runs(self):
        first = self._run_cell()
        assert first != "{}"  # the cell actually recorded counters
        assert first == self._run_cell()

    def test_telemetry_summary_deterministic(self):
        from repro.evaluation.runner import ExperimentCache

        def summarize():
            cache = ExperimentCache(seed=7, scale=0.05)
            cache.rows("QF_LIA", "zorro", "staub")
            return json.dumps(cache.telemetry_summary(), sort_keys=True)

        assert summarize() == summarize()

    def test_disabled_run_produces_no_counters_or_trace(self, tmp_path):
        solve_script(parse_script(CUBES), budget=1_000_000)
        Staub().run(parse_script(CUBES), budget=1_000_000)
        assert telemetry.snapshot() == {}
        assert list(tmp_path.iterdir()) == []

    def test_results_identical_with_and_without_telemetry(self, tmp_path):
        script = parse_script(CUBES)
        plain = solve_script(script, budget=1_000_000)
        telemetry.enable(trace_path=str(tmp_path / "t.jsonl"))
        traced = solve_script(script, budget=1_000_000)
        telemetry.disable()
        assert plain.status == traced.status
        assert plain.work == traced.work
        assert plain.model == traced.model
        assert plain.stats == traced.stats


class TestTraceFile:
    def test_arbitrage_trace_has_all_stages_summing_to_total(self, nia_file, tmp_path):
        trace = str(tmp_path / "run.jsonl")
        assert main(["arbitrage", "--trace", trace, nia_file]) == 0
        spans = load_trace(trace)
        by_name = aggregate(spans)
        for stage in FIG3_STAGES:
            assert stage in by_name, stage
        report = Staub().run(parse_script(CUBES), budget=1_200_000)
        stage_total = sum(by_name[s]["work"] for s in FIG3_STAGES)
        assert stage_total == report.total_work

    def test_trace_lines_are_json_with_schema(self, nia_file, tmp_path):
        trace = str(tmp_path / "run.jsonl")
        assert main(["solve", "--trace", trace, nia_file]) == 0
        spans = load_trace(trace)
        assert spans
        for span in spans:
            assert {"name", "depth", "t_start", "t_end", "work"} <= set(span)
            assert span["t_end"] - span["t_start"] == span["work"]


class TestCli:
    def test_version_flag(self, capsys):
        from repro.version import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_no_subcommand_exits_2_with_usage(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err

    def test_stats_flag_prints_counters(self, nia_file, capsys):
        assert main(["arbitrage", "--stats", nia_file]) == 0
        out = capsys.readouterr().out
        assert "stats:" in out
        assert "propagations" in out
        assert "cnf_clauses" in out

    def test_profile_includes_every_fig3_stage(self, nia_file, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert main(["arbitrage", "--trace", trace, nia_file]) == 0
        capsys.readouterr()
        assert main(["profile", trace]) == 0
        out = capsys.readouterr().out
        for stage in FIG3_STAGES:
            assert stage in out, stage
        assert "total (pipeline)" in out

    def test_profile_missing_file_errors(self, capsys):
        assert main(["profile", "/nonexistent.jsonl"]) == 1
        assert "error" in capsys.readouterr().err

    def test_profile_non_json_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "garbage.jsonl"
        bad.write_text("not json\n")
        assert main(["profile", str(bad)]) == 1
        assert "not a JSONL trace" in capsys.readouterr().err

    def test_trace_to_unwritable_path_errors(self, nia_file, capsys):
        assert main(["solve", "--trace", "/nonexistent-dir/t.jsonl", nia_file]) == 1
        assert "error" in capsys.readouterr().err

    def test_render_profile_empty_stage_shows_zero(self):
        out = render_profile(
            [{"name": "infer", "work": 4, "depth": 0, "t_start": 0, "t_end": 4}]
        )
        assert "verify" in out


class TestRunAllArtifact:
    def test_run_all_writes_telemetry_artifact(self, tmp_path, capsys):
        from repro.evaluation import run_all

        artifact = str(tmp_path / "results_telemetry.json")
        code = run_all.main(
            [
                "--experiment",
                "table1",
                "--scale",
                "0.05",
                "--telemetry",
                artifact,
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "took" in captured.err  # progress line moved to stderr
        assert "took" not in captured.out
        with open(artifact, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert {"experiments", "cells", "metrics"} <= set(payload)
        assert payload["experiments"][0]["experiment"] == "table1"


class TestWallClockTracer:
    def _trace(self, tmp_path, name, wall_clock):
        trace = str(tmp_path / name)
        telemetry.enable(trace_path=trace, wall_clock=wall_clock)
        solve_script(parse_script(CUBES), budget=1_000_000)
        telemetry.disable()
        return load_trace(trace)

    def test_wall_fields_populated_when_requested(self, tmp_path):
        spans = self._trace(tmp_path, "wall.jsonl", wall_clock=True)
        assert spans
        for span in spans:
            assert isinstance(span["wall_seconds"], float)
            assert span["wall_seconds"] >= 0.0

    def test_wall_fields_absent_by_default(self, tmp_path):
        spans = self._trace(tmp_path, "virtual.jsonl", wall_clock=False)
        assert spans
        for span in spans:
            assert "wall_seconds" not in span

    def test_wall_clock_leaves_deterministic_fields_untouched(self, tmp_path):
        with_wall = self._trace(tmp_path, "wall.jsonl", wall_clock=True)
        without = self._trace(tmp_path, "virtual.jsonl", wall_clock=False)
        stripped = []
        for span in with_wall:
            record = dict(span)
            record.pop("wall_seconds", None)
            stripped.append(record)
        canonical = [json.dumps(r, sort_keys=True) for r in stripped]
        baseline = [json.dumps(r, sort_keys=True) for r in without]
        assert canonical == baseline


class TestProfileTop:
    def _spans(self):
        # Pipeline stages plus three extra stages with tie-broken works.
        spans = []
        clock = 0
        stages = [("infer", 5), ("transform", 5), ("bounded-solve", 50),
                  ("verify", 5), ("blast", 9), ("alpha", 4), ("beta", 4)]
        for name, work in stages:
            spans.append({"name": name, "depth": 0, "t_start": clock,
                          "t_end": clock + work, "work": work})
            clock += work
        return spans

    def test_top_caps_extras_but_keeps_pipeline_stages(self):
        out = render_profile(self._spans(), top=1)
        for stage in FIG3_STAGES:
            assert stage in out, stage
        assert "blast" in out
        assert "alpha" not in out
        assert "beta" not in out

    def test_extras_sorted_by_work_then_name(self):
        out = render_profile(self._spans())
        lines = [line.split()[0] for line in out.splitlines()[1:] if line.strip()]
        extras = [name for name in lines if name not in FIG3_STAGES][:3]
        # blast is heaviest; alpha and beta tie on work, alphabetical after.
        assert extras == ["blast", "alpha", "beta"]

    def test_profile_cli_top_flag(self, nia_file, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert main(["arbitrage", "--trace", trace, nia_file]) == 0
        capsys.readouterr()
        assert main(["profile", trace, "--top", "0"]) == 0
        out = capsys.readouterr().out
        for stage in FIG3_STAGES:
            assert stage in out, stage
        assert "blast" not in out
