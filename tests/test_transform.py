"""Tests for the constraint transformation (Section 4.3)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correspondence import FixedPointShape
from repro.core.transform import transform_script
from repro.errors import TransformError
from repro.smtlib import build, parse_script, print_script
from repro.smtlib.evaluator import evaluate, evaluate_assertions
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue


def int_script(text):
    return parse_script(text)


class TestIntegerTransform:
    def test_motivating_example_shape(self):
        script = int_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))"
        )
        result = transform_script(script, "int", width=12)
        text = print_script(result.script)
        assert "(_ BitVec 12)" in text
        assert "(_ bv855 12)" in text
        assert "bvmul" in text and "bvadd" in text
        assert "(not (bvsmulo x x))" in text  # Fig. 1b line 4
        assert result.script.logic == "QF_BV"

    def test_all_variables_share_the_width(self):
        script = int_script(
            "(declare-fun a () Int)(declare-fun b () Int)(assert (< a b))"
        )
        result = transform_script(script, "int", width=9)
        assert all(s.width == 9 for s in result.script.declarations.values())

    def test_constants_that_do_not_fit_are_rejected(self):
        script = int_script("(declare-fun x () Int)(assert (> x 1000))")
        with pytest.raises(TransformError):
            transform_script(script, "int", width=8)

    def test_comparisons_are_signed(self):
        script = int_script(
            "(declare-fun a () Int)(assert (< a (- 3)))"
        )
        result = transform_script(script, "int", width=8)
        ops = {sub.op for assertion in result.script.assertions for sub in assertion.subterms()}
        assert Op.BVSLT in ops
        assert Op.BVULT not in ops

    def test_guards_deduplicated(self):
        script = int_script(
            "(declare-fun x () Int)"
            "(assert (> (* x x) 3))(assert (< (* x x) 30))"
        )
        result = transform_script(script, "int", width=8)
        # One shared (* x x) product -> one bvsmulo guard.
        assert result.guards == 1

    def test_div_mod_guards_restrict_to_agreement_region(self):
        script = int_script(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (= (div a b) 3))"
        )
        result = transform_script(script, "int", width=8)
        text = print_script(result.script)
        assert "bvsge" in text and "bvsgt" in text  # a >= 0, b > 0

    def test_back_map_produces_integers(self):
        script = int_script("(declare-fun x () Int)(assert (> x 3))")
        result = transform_script(script, "int", width=8)
        assignment = result.back_map({"x": BVValue(250, 8)})
        assert assignment == {"x": -6}

    def test_booleans_pass_through(self):
        script = int_script(
            "(declare-fun p () Bool)(declare-fun x () Int)"
            "(assert (ite p (> x 0) (< x 0)))"
        )
        result = transform_script(script, "int", width=8)
        assert result.script.declarations["p"].is_bool


class TestSoundnessProperty:
    """Guarded bounded semantics agree with unbounded semantics.

    If a bounded assignment satisfies the transformed constraint
    (including guards), its back-mapped integer assignment satisfies the
    original -- this is the exactness the verification step relies on,
    so here it is checked directly by enumeration on small widths.
    """

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_guarded_transform_is_exact(self, data):
        x = build.IntVar("x")
        y = build.IntVar("y")
        pool = [
            x,
            y,
            build.Add(x, y),
            build.Sub(x, y),
            build.Mul(x, y),
            build.Mul(x, x),
            build.Neg(y),
            build.Abs(x),
        ]
        left = data.draw(st.sampled_from(pool))
        constant = build.IntConst(data.draw(st.integers(-7, 7)))
        op = data.draw(st.sampled_from([build.Le, build.Lt, build.Ge, build.Gt, build.Eq]))
        assertion = op(left, constant)
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(assert true)"
        )
        script.assertions = [assertion]
        width = 5
        result = transform_script(script, "int", width=width)
        bounded_assertions = result.script.assertions
        for xv in range(-8, 8):
            for yv in range(-8, 8):
                bounded_env = {"x": BVValue(xv, width), "y": BVValue(yv, width)}
                bounded_holds = all(
                    evaluate(a, bounded_env) for a in bounded_assertions
                )
                if bounded_holds:
                    assert evaluate(assertion, {"x": xv, "y": yv}), (
                        assertion,
                        xv,
                        yv,
                    )


class TestRealTransform:
    def test_dyadic_constants_are_exact(self):
        script = parse_script(
            "(declare-fun x () Real)(assert (> x (/ 3.0 4.0)))"
        )
        result = transform_script(script, "real", shape=FixedPointShape(8, 4))
        assert not result.inexact_constants

    def test_decimal_constants_are_inexact(self):
        script = parse_script("(declare-fun x () Real)(assert (> x 0.1))")
        result = transform_script(script, "real", shape=FixedPointShape(8, 4))
        assert result.inexact_constants

    def test_width_is_shape_total(self):
        script = parse_script("(declare-fun x () Real)(assert (> x 1.0))")
        result = transform_script(script, "real", shape=FixedPointShape(8, 4))
        assert result.width == 12
        assert result.script.declarations["x"].width == 12

    def test_back_map_rescales(self):
        script = parse_script("(declare-fun x () Real)(assert (> x 0.0))")
        shape = FixedPointShape(8, 4)
        result = transform_script(script, "real", shape=shape)
        assignment = result.back_map({"x": BVValue(24, 12)})
        assert assignment == {"x": Fraction(24, 16)}

    def test_multiplication_widens_and_guards(self):
        script = parse_script(
            "(declare-fun x () Real)(assert (= (* x x) 4.0))"
        )
        result = transform_script(script, "real", shape=FixedPointShape(8, 4))
        text = print_script(result.script)
        assert "sign_extend" in text
        assert "bvsmulo" in text
        assert "bvashr" in text  # the rescale shift

    def test_division_guards_against_zero(self):
        script = parse_script(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (= (/ x y) 2.0))"
        )
        result = transform_script(script, "real", shape=FixedPointShape(8, 2))
        text = print_script(result.script)
        assert "bvsdiv" in text
        assert "(not (=" in text  # divisor != 0 guard

    def test_exact_dyadic_model_satisfies_bounded_constraint(self):
        # x * x = 9/4 with x = 3/2 at precision 2: everything is exact.
        script = parse_script(
            "(declare-fun x () Real)(assert (= (* x x) (/ 9.0 4.0)))"
        )
        shape = FixedPointShape(8, 2)
        result = transform_script(script, "real", shape=shape)
        image = Fraction(3, 2) * shape.scale
        env = {"x": BVValue(int(image), shape.width)}
        assert evaluate_assertions(result.script.assertions, env)


class TestArgumentValidation:
    def test_int_needs_width(self):
        script = parse_script("(declare-fun x () Int)(assert (> x 0))")
        with pytest.raises(TransformError):
            transform_script(script, "int")

    def test_real_needs_shape(self):
        script = parse_script("(declare-fun x () Real)(assert (> x 0.0))")
        with pytest.raises(TransformError):
            transform_script(script, "real")
