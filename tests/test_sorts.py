"""Tests for repro.smtlib.sorts."""

import pytest

from repro.errors import SortError
from repro.smtlib.sorts import (
    BOOL,
    FLOAT32,
    FLOAT64,
    INT,
    REAL,
    STANDARD_FP_SORTS,
    bv_sort,
    fp_sort,
)


class TestInterning:
    def test_bv_sorts_are_interned(self):
        assert bv_sort(12) is bv_sort(12)

    def test_distinct_widths_are_distinct_sorts(self):
        assert bv_sort(12) is not bv_sort(13)

    def test_fp_sorts_are_interned(self):
        assert fp_sort(8, 24) is fp_sort(8, 24)

    def test_fp_distinct_shapes(self):
        assert fp_sort(8, 24) is not fp_sort(11, 53)


class TestClassification:
    def test_bool_is_bounded(self):
        assert BOOL.is_bounded
        assert BOOL.is_bool

    def test_int_is_unbounded(self):
        assert not INT.is_bounded
        assert INT.is_int
        assert INT.is_numeric

    def test_real_is_unbounded(self):
        assert not REAL.is_bounded
        assert REAL.is_real

    def test_bv_is_bounded(self):
        sort = bv_sort(8)
        assert sort.is_bounded
        assert sort.is_bv
        assert sort.width == 8

    def test_fp_is_bounded(self):
        sort = fp_sort(5, 11)
        assert sort.is_bounded
        assert sort.is_fp

    def test_bool_is_not_numeric(self):
        assert not BOOL.is_numeric


class TestNames:
    def test_bv_name_is_smtlib(self):
        assert bv_sort(12).name == "(_ BitVec 12)"

    def test_fp_name_is_smtlib(self):
        assert fp_sort(8, 24).name == "(_ FloatingPoint 8 24)"

    def test_base_names(self):
        assert BOOL.name == "Bool"
        assert INT.name == "Int"
        assert REAL.name == "Real"


class TestValidation:
    def test_zero_width_bv_rejected(self):
        with pytest.raises(SortError):
            bv_sort(0)

    def test_tiny_fp_rejected(self):
        with pytest.raises(SortError):
            fp_sort(1, 11)


class TestStandardFpSorts:
    def test_float32_shape(self):
        assert (FLOAT32.eb, FLOAT32.sb) == (8, 24)

    def test_float64_shape(self):
        assert (FLOAT64.eb, FLOAT64.sb) == (11, 53)

    def test_standard_widths(self):
        assert [s.width for s in STANDARD_FP_SORTS] == [16, 32, 64, 128]
