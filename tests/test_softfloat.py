"""Softfloat tests: bit-exact agreement with hardware IEEE-754.

The strongest oracle available offline is the host CPU: numpy float32
arithmetic is IEEE-754 binary32 with RNE, so we fuzz our softfloat against
it bit-for-bit.
"""

import math
import struct

import numpy
import pytest
from fractions import Fraction
from hypothesis import given, settings, strategies as st

from repro.fp import softfloat
from repro.smtlib.values import FPValue


def to_float32_bits(value):
    return struct.unpack("<I", struct.pack("<f", value))[0]


def from_bits32(bits):
    return softfloat.unpack(bits, 8, 24)


def float32s():
    return st.integers(0, 2**32 - 1).map(
        lambda bits: struct.unpack("<f", struct.pack("<I", bits))[0]
    )


def finite_float32s():
    return float32s().filter(lambda x: math.isfinite(x))


class TestPackUnpack:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=300)
    def test_pack_unpack_roundtrip(self, bits):
        value = from_bits32(bits)
        if value.is_nan:
            # All NaN payloads canonicalize to one quiet NaN.
            assert from_bits32(softfloat.pack(value)).is_nan
        else:
            assert softfloat.pack(value) == bits

    def test_special_values(self):
        assert from_bits32(0x7F800000).is_inf
        assert from_bits32(0xFF800000).sign == 1
        assert from_bits32(0x7FC00000).is_nan
        assert from_bits32(0x00000000).is_zero
        assert from_bits32(0x80000000).sign == 1

    def test_subnormal_roundtrip(self):
        smallest = from_bits32(1)  # smallest positive subnormal
        assert smallest.is_finite
        assert smallest.to_fraction() == Fraction(1, 2**149)
        assert softfloat.pack(smallest) == 1


class TestRounding:
    def test_one_third_rounds_like_hardware(self):
        ours = softfloat.fp_from_fraction(Fraction(1, 3), 8, 24)
        assert softfloat.pack(ours) == to_float32_bits(numpy.float32(1.0) / numpy.float32(3.0))

    def test_overflow_to_infinity(self):
        huge = Fraction(2) ** 200
        assert softfloat.fp_from_fraction(huge, 8, 24).is_inf

    def test_underflow_to_zero(self):
        tiny = Fraction(1, 2**200)
        assert softfloat.fp_from_fraction(tiny, 8, 24).is_zero

    def test_ties_to_even(self):
        # 2**24 + 1 is exactly halfway between representables 2**24 and
        # 2**24 + 2; RNE picks the even significand (2**24).
        value = softfloat.fp_from_fraction(Fraction(2**24 + 1), 8, 24)
        assert value.to_fraction() == 2**24

    def test_exact_values_stay_exact(self):
        value = softfloat.fp_from_fraction(Fraction(3, 4), 8, 24)
        assert value.to_fraction() == Fraction(3, 4)


class TestArithmeticVsHardware:
    @given(finite_float32s(), finite_float32s())
    @settings(max_examples=400, deadline=None)
    def test_add_bit_exact(self, x, y):
        ours = softfloat.fp_add(
            from_bits32(to_float32_bits(x)), from_bits32(to_float32_bits(y))
        )
        theirs = numpy.float32(x) + numpy.float32(y)
        if ours.is_nan:
            assert math.isnan(theirs)
        else:
            assert softfloat.pack(ours) == to_float32_bits(float(theirs))

    @given(finite_float32s(), finite_float32s())
    @settings(max_examples=400, deadline=None)
    def test_mul_bit_exact(self, x, y):
        with numpy.errstate(over="ignore", under="ignore"):
            theirs = numpy.float32(x) * numpy.float32(y)
        ours = softfloat.fp_mul(
            from_bits32(to_float32_bits(x)), from_bits32(to_float32_bits(y))
        )
        if ours.is_nan:
            assert math.isnan(theirs)
        else:
            assert softfloat.pack(ours) == to_float32_bits(float(theirs))

    @given(finite_float32s(), finite_float32s())
    @settings(max_examples=400, deadline=None)
    def test_div_bit_exact(self, x, y):
        with numpy.errstate(divide="ignore", invalid="ignore", over="ignore", under="ignore"):
            theirs = numpy.float32(x) / numpy.float32(y)
        ours = softfloat.fp_div(
            from_bits32(to_float32_bits(x)), from_bits32(to_float32_bits(y))
        )
        if ours.is_nan:
            assert math.isnan(theirs)
        else:
            assert softfloat.pack(ours) == to_float32_bits(float(theirs))


class TestSpecialCases:
    def test_inf_plus_minus_inf_is_nan(self):
        pos = FPValue.inf(8, 24, 0)
        neg = FPValue.inf(8, 24, 1)
        assert softfloat.fp_add(pos, neg).is_nan

    def test_zero_times_inf_is_nan(self):
        assert softfloat.fp_mul(FPValue.zero(8, 24), FPValue.inf(8, 24)).is_nan

    def test_x_minus_x_is_positive_zero(self):
        x = softfloat.fp_from_fraction(Fraction(5, 2), 8, 24)
        result = softfloat.fp_sub(x, x)
        assert result.is_zero and result.sign == 0

    def test_neg_zero_plus_neg_zero(self):
        neg_zero = FPValue.zero(8, 24, 1)
        result = softfloat.fp_add(neg_zero, neg_zero)
        assert result.is_zero and result.sign == 1

    def test_div_by_zero_is_signed_inf(self):
        one = softfloat.fp_from_fraction(1, 8, 24)
        result = softfloat.fp_div(one, FPValue.zero(8, 24, 1))
        assert result.is_inf and result.sign == 1

    def test_zero_div_zero_is_nan(self):
        assert softfloat.fp_div(FPValue.zero(8, 24), FPValue.zero(8, 24)).is_nan


class TestComparisons:
    def test_nan_is_unordered(self):
        nan = FPValue.nan(8, 24)
        one = softfloat.fp_from_fraction(1, 8, 24)
        assert not softfloat.fp_eq(nan, nan)
        assert not softfloat.fp_lt(nan, one)
        assert not softfloat.fp_leq(nan, one)
        assert not softfloat.fp_gt(nan, one)

    def test_zero_signs_compare_equal(self):
        assert softfloat.fp_eq(FPValue.zero(8, 24, 0), FPValue.zero(8, 24, 1))
        assert softfloat.fp_leq(FPValue.zero(8, 24, 1), FPValue.zero(8, 24, 0))

    def test_infinity_ordering(self):
        pos = FPValue.inf(8, 24, 0)
        neg = FPValue.inf(8, 24, 1)
        one = softfloat.fp_from_fraction(1, 8, 24)
        assert softfloat.fp_lt(neg, one)
        assert softfloat.fp_lt(one, pos)
        assert softfloat.fp_eq(pos, pos)

    @given(finite_float32s(), finite_float32s())
    @settings(max_examples=200, deadline=None)
    def test_lt_matches_hardware(self, x, y):
        ours = softfloat.fp_lt(
            from_bits32(to_float32_bits(x)), from_bits32(to_float32_bits(y))
        )
        assert ours == (numpy.float32(x) < numpy.float32(y))


class TestNegAbs:
    def test_neg_flips_inf(self):
        assert softfloat.fp_neg(FPValue.inf(8, 24, 0)).sign == 1

    def test_abs_clears_sign(self):
        value = softfloat.fp_from_fraction(Fraction(-7, 2), 8, 24)
        assert softfloat.fp_abs(value).to_fraction() == Fraction(7, 2)

    def test_format_mismatch_rejected(self):
        a = softfloat.fp_from_fraction(1, 8, 24)
        b = softfloat.fp_from_fraction(1, 11, 53)
        with pytest.raises(ValueError):
            softfloat.fp_add(a, b)


class TestFloat64CrossCheck:
    """binary64 agreement with the host's double arithmetic."""

    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_add_matches_hardware_double(self, x, y):
        bits_x = struct.unpack("<Q", struct.pack("<d", x))[0]
        bits_y = struct.unpack("<Q", struct.pack("<d", y))[0]
        ours = softfloat.fp_add(
            softfloat.unpack(bits_x, 11, 53), softfloat.unpack(bits_y, 11, 53)
        )
        theirs = x + y
        if ours.is_nan:
            assert math.isnan(theirs)
        else:
            assert softfloat.pack(ours) == struct.unpack(
                "<Q", struct.pack("<d", theirs)
            )[0]

    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_mul_matches_hardware_double(self, x, y):
        bits_x = struct.unpack("<Q", struct.pack("<d", x))[0]
        bits_y = struct.unpack("<Q", struct.pack("<d", y))[0]
        ours = softfloat.fp_mul(
            softfloat.unpack(bits_x, 11, 53), softfloat.unpack(bits_y, 11, 53)
        )
        theirs = x * y
        if ours.is_nan:
            assert math.isnan(theirs)
        else:
            assert softfloat.pack(ours) == struct.unpack(
                "<Q", struct.pack("<d", theirs)
            )[0]
