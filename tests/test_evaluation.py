"""Tests for the evaluation harness (stats, runner, experiment shapes)."""

import math

import pytest

from repro.evaluation.runner import (
    ExperimentCache,
    TIMEOUT_WORK,
    make_staub,
    to_virtual_seconds,
)
from repro.evaluation.stats import format_ratio, geometric_mean, speedup
from repro.evaluation import table1


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 1.0
        assert geometric_mean([1, 1, 1]) == pytest.approx(1.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_speedup(self):
        assert speedup(10, 5) == 2.0
        assert speedup(10, 0) > 1e6  # floored denominator

    def test_format_ratio(self):
        assert format_ratio(1.2345) == "1.234"
        assert format_ratio(12.34) == "12.3"
        assert format_ratio(123.4) == "123"

    def test_virtual_seconds(self):
        assert to_virtual_seconds(TIMEOUT_WORK) == pytest.approx(300, rel=0.01)


class TestMakeStaub:
    def test_strategies(self):
        assert make_staub("staub").width_strategy == "absint"
        assert make_staub("fixed8").width_strategy == 8
        assert make_staub("fixed16").width_strategy == 16
        assert make_staub(12).width_strategy == 12

    def test_slot_attaches_optimizer(self):
        assert make_staub("staub").optimizer is None
        assert make_staub("staub", slot=True).optimizer is not None

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_staub("huge")


class TestCacheSmoke:
    """Tiny-scale end-to-end run through the cache machinery."""

    @pytest.fixture(scope="class")
    def cache(self):
        return ExperimentCache(seed=3, scale=0.08, timeout=300_000)

    def test_baseline_memoized(self, cache):
        suite = cache.suite("QF_LIA")
        name = suite.benchmarks[0].name
        first = cache.baseline("QF_LIA", name, "zorro")
        second = cache.baseline("QF_LIA", name, "zorro")
        assert first is second

    def test_arbitrage_memoized_across_aliases(self, cache):
        suite = cache.suite("QF_LIA")
        name = suite.benchmarks[0].name
        assert cache.arbitrage("QF_LIA", name, "fixed8") is cache.arbitrage(
            "QF_LIA", name, 8
        )

    def test_rows_have_portfolio_invariant(self, cache):
        for logic in ("QF_LIA", "QF_NIA"):
            for row in cache.rows(logic, "zorro", "staub"):
                assert row["final"] <= row["t_pre"]
                assert row["t_pre"] <= cache.timeout

    def test_tractability_implies_timeout_and_verified(self, cache):
        for row in cache.rows("QF_NIA", "corvus", "staub"):
            if row["tractability"]:
                assert row["timed_out"] and row["verified"]

    def test_baseline_statuses_sane(self, cache):
        for logic in ("QF_LIA",):
            for benchmark in cache.suite(logic):
                record = cache.baseline(logic, benchmark.name, "zorro")
                if benchmark.expected and not record.timed_out:
                    assert record.status == benchmark.expected, benchmark.name


class TestTable1:
    def test_rows(self):
        rows = table1.table1_rows()
        assert len(rows) == 4
        nia = next(r for r in rows if "Nonlinear Integer" in r["logic"])
        assert nia["decidable"] == "No"
        lia = next(r for r in rows if "Linear Integer" in r["logic"])
        assert lia["theoretically_bounded"] == "Yes"
        assert lia["practically_bounded"] == "No"

    def test_bound_demonstration_is_impractical(self):
        for example in table1.lia_bound_demonstration():
            assert example["bits_needed"] > 64

    def test_render(self):
        text = table1.render()
        assert "Linear Real Arithmetic" in text
        assert "bitvector" in text
