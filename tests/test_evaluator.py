"""Tests for the exact-semantics evaluator."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError
from repro.smtlib import build, evaluate, parse_term
from repro.smtlib.evaluator import euclidean_divmod, evaluate_assertions
from repro.smtlib.sorts import INT, REAL, bv_sort
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue


class TestEuclideanDivision:
    """SMT-LIB division: remainder always in [0, |b|)."""

    @given(st.integers(-200, 200), st.integers(-20, 20).filter(lambda b: b != 0))
    def test_euclidean_invariants(self, a, b):
        quotient, remainder = euclidean_divmod(a, b)
        assert a == b * quotient + remainder
        assert 0 <= remainder < abs(b)

    def test_examples_from_smtlib_semantics(self):
        assert euclidean_divmod(7, 2) == (3, 1)
        assert euclidean_divmod(-7, 2) == (-4, 1)
        assert euclidean_divmod(7, -2) == (-3, 1)
        assert euclidean_divmod(-7, -2) == (4, 1)

    def test_division_by_zero_is_total(self):
        assert euclidean_divmod(5, 0) == (0, 5)


class TestCoreOps:
    def test_boolean_connectives(self):
        p = build.BoolVar("p")
        q = build.BoolVar("q")
        env = {"p": True, "q": False}
        assert evaluate(build.And(p, q), env) is False
        assert evaluate(build.Or(p, q), env) is True
        assert evaluate(build.Xor(p, q), env) is True
        assert evaluate(build.Implies(p, q), env) is False
        assert evaluate(build.Implies(q, p), env) is True

    def test_ite(self):
        x = build.IntVar("x")
        term = build.Ite(build.Gt(x, build.IntConst(0)), x, build.Neg(x))
        assert evaluate(term, {"x": -5}) == 5
        assert evaluate(term, {"x": 7}) == 7

    def test_distinct(self):
        terms = [build.IntVar(n) for n in "abc"]
        term = build.Distinct(*terms)
        assert evaluate(term, {"a": 1, "b": 2, "c": 3}) is True
        assert evaluate(term, {"a": 1, "b": 2, "c": 1}) is False


class TestArithmetic:
    def test_motivating_example(self):
        term = parse_term(
            "(= (+ (* x x x) (* y y y) (* z z z)) 855)",
            {"x": INT, "y": INT, "z": INT},
        )
        assert evaluate(term, {"x": 7, "y": 8, "z": 0}) is True
        assert evaluate(term, {"x": 7, "y": 8, "z": 1}) is False

    def test_real_division_exact(self):
        term = parse_term("(= (/ x 3.0) 0.5)", {"x": REAL})
        assert evaluate(term, {"x": Fraction(3, 2)}) is True

    def test_real_division_by_zero_is_zero(self):
        term = parse_term("(/ 1.0 0.0)", {})
        assert evaluate(term, {}) == 0

    def test_abs_and_neg(self):
        x = build.IntVar("x")
        assert evaluate(build.Abs(x), {"x": -3}) == 3
        assert evaluate(build.Neg(x), {"x": -3}) == 3

    def test_to_real_to_int(self):
        x = build.IntVar("x")
        assert evaluate(build.ToReal(x), {"x": 3}) == Fraction(3)
        r = build.RealVar("r")
        assert evaluate(build.ToInt(r), {"r": Fraction(7, 2)}) == 3
        assert evaluate(build.ToInt(r), {"r": Fraction(-7, 2)}) == -4


class TestBitvectorSemantics:
    """Spot checks; the exhaustive check is the bit-blaster fuzz test."""

    def test_wraparound_add(self):
        a = build.BitVecVar("a", 8)
        term = build.BVAdd(a, a)
        assert evaluate(term, {"a": BVValue(200, 8)}).unsigned == 144

    def test_udiv_by_zero_all_ones(self):
        a = build.BitVecVar("a", 8)
        term = build.bv_binary(Op.BVUDIV, a, build.BitVecConst(0, 8))
        assert evaluate(term, {"a": BVValue(5, 8)}).unsigned == 255

    def test_urem_by_zero_is_dividend(self):
        a = build.BitVecVar("a", 8)
        term = build.bv_binary(Op.BVUREM, a, build.BitVecConst(0, 8))
        assert evaluate(term, {"a": BVValue(5, 8)}).unsigned == 5

    def test_sdiv_truncates_toward_zero(self):
        term = build.bv_binary(
            Op.BVSDIV, build.BitVecConst(-7, 8), build.BitVecConst(2, 8)
        )
        assert evaluate(term, {}).signed == -3

    def test_smod_follows_divisor_sign(self):
        term = build.bv_binary(
            Op.BVSMOD, build.BitVecConst(7, 8), build.BitVecConst(-2, 8)
        )
        assert evaluate(term, {}).signed == -1

    def test_srem_follows_dividend_sign(self):
        term = build.bv_binary(
            Op.BVSREM, build.BitVecConst(-7, 8), build.BitVecConst(2, 8)
        )
        assert evaluate(term, {}).signed == -1

    def test_shift_beyond_width(self):
        a = build.BitVecVar("a", 8)
        term = build.bv_binary(Op.BVSHL, a, build.BitVecConst(9, 8))
        assert evaluate(term, {"a": BVValue(255, 8)}).unsigned == 0

    def test_ashr_fills_sign(self):
        term = build.bv_binary(
            Op.BVASHR, build.BitVecConst(-4, 8), build.BitVecConst(1, 8)
        )
        assert evaluate(term, {}).signed == -2

    @given(st.integers(-128, 127), st.integers(-128, 127))
    @settings(max_examples=200)
    def test_smulo_matches_definition(self, a, b):
        term = build.bv_overflow(
            Op.BVSMULO, build.BitVecConst(a, 8), build.BitVecConst(b, 8)
        )
        assert evaluate(term, {}) == (not -128 <= a * b <= 127)

    @given(st.integers(-128, 127), st.integers(-128, 127))
    @settings(max_examples=200)
    def test_saddo_matches_definition(self, a, b):
        term = build.bv_overflow(
            Op.BVSADDO, build.BitVecConst(a, 8), build.BitVecConst(b, 8)
        )
        assert evaluate(term, {}) == (not -128 <= a + b <= 127)

    def test_sdivo_only_int_min_minus_one(self):
        overflow = build.bv_overflow(
            Op.BVSDIVO, build.BitVecConst(-128, 8), build.BitVecConst(-1, 8)
        )
        fine = build.bv_overflow(
            Op.BVSDIVO, build.BitVecConst(-127, 8), build.BitVecConst(-1, 8)
        )
        assert evaluate(overflow, {}) is True
        assert evaluate(fine, {}) is False

    def test_extract_concat_roundtrip(self):
        v = build.BitVecVar("v", 8)
        term = build.Concat(build.Extract(7, 4, v), build.Extract(3, 0, v))
        value = BVValue(0xA7, 8)
        assert evaluate(term, {"v": value}) == value


class TestErrors:
    def test_missing_variable(self):
        with pytest.raises(EvaluationError):
            evaluate(build.IntVar("x"), {})

    def test_wrong_sort_value(self):
        with pytest.raises(EvaluationError):
            evaluate(build.IntVar("x"), {"x": True})

    def test_wrong_width_bv(self):
        a = build.BitVecVar("a", 8)
        with pytest.raises(EvaluationError):
            evaluate(a, {"a": BVValue(1, 9)})

    def test_real_accepts_int_value(self):
        r = build.RealVar("r")
        assert evaluate(r, {"r": 3}) == Fraction(3)


class TestEvaluateAssertions:
    def test_all_must_hold(self):
        x = build.IntVar("x")
        assertions = [build.Gt(x, build.IntConst(0)), build.Lt(x, build.IntConst(10))]
        assert evaluate_assertions(assertions, {"x": 5}) is True
        assert evaluate_assertions(assertions, {"x": 20}) is False
