"""Tests for the abstract domains, including the Galois connection laws
of Lemmas 4.3 and 4.4."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.absint import (
    IntWidthDomain,
    MagPrec,
    RealMagnitudePrecisionDomain,
    dig,
    int_width,
)


class TestIntWidth:
    def test_widths_of_small_constants(self):
        assert int_width(0) == 1
        assert int_width(1) == 2
        assert int_width(15) == 5
        assert int_width(-15) == 5
        assert int_width(855) == 11

    @given(st.integers(-(10**9), 10**9))
    def test_gamma_alpha_containment(self, value):
        """x in gamma(alpha({x})) -- half of the Galois property."""
        width = IntWidthDomain.alpha([value])
        assert IntWidthDomain.gamma_contains(width, value)

    @given(st.lists(st.integers(-(10**6), 10**6), min_size=1, max_size=5))
    def test_galois_connection(self, values):
        """alpha(C) <= a  iff  C subset gamma(a) (Lemma 4.3)."""
        alpha = IntWidthDomain.alpha(values)
        for a in range(1, alpha + 3):
            lhs = alpha <= a
            rhs = all(IntWidthDomain.gamma_contains(a, v) for v in values)
            assert lhs == rhs, (values, a)

    def test_gamma_bounds_are_twos_complement(self):
        assert IntWidthDomain.gamma_bounds(12) == (-2048, 2047)

    def test_alpha_of_booleans_is_one(self):
        assert IntWidthDomain.alpha([True, False]) == 1


class TestIntTransfer:
    def setup_method(self):
        self.domain = IntWidthDomain(4)

    def test_var_uses_assumption(self):
        assert self.domain.var() == 4

    def test_add_binary_is_max_plus_one(self):
        assert self.domain.add([4, 4]) == 5

    def test_add_folds_nary(self):
        assert self.domain.add([4, 4, 4]) == 6

    def test_mul_sums_widths(self):
        assert self.domain.mul([4, 4, 4]) == 12

    def test_neg_abs_add_a_bit(self):
        assert self.domain.neg(4) == 5
        assert self.domain.abs(4) == 5

    def test_div_mod(self):
        assert self.domain.idiv(8, 4) == 9
        assert self.domain.mod(8, 4) == 4

    def test_join_is_max(self):
        assert self.domain.join([3, 7, 5]) == 7

    def test_figure4_example_widths(self):
        """Fig. 4: constants width 4, subtraction gives 5, '<' keeps 5."""
        domain = IntWidthDomain(4)
        const_width = domain.const(15)
        assert const_width == 5  # |15| needs 4 bits + sign
        subtraction = domain.add([domain.var(), domain.var()])
        assert subtraction == 5
        assert domain.join([subtraction, domain.const(0)]) == 5

    def test_soundness_of_transfer_on_samples(self):
        """The Fig. 5a semantics over-approximate concrete operations."""
        domain = IntWidthDomain(4)
        for a in range(-8, 8):
            for b in range(-8, 8):
                width_a = IntWidthDomain.alpha([a])
                width_b = IntWidthDomain.alpha([b])
                assert IntWidthDomain.gamma_contains(domain.add([width_a, width_b]), a + b)
                assert IntWidthDomain.gamma_contains(domain.add([width_a, width_b]), a - b)
                assert IntWidthDomain.gamma_contains(domain.mul([width_a, width_b]), a * b)
                assert IntWidthDomain.gamma_contains(domain.neg(width_a), -a)
                assert IntWidthDomain.gamma_contains(domain.abs(width_a), abs(a))


class TestDig:
    def test_dyadic_values(self):
        assert dig(Fraction(1)) == 0
        assert dig(Fraction(1, 2)) == 1
        assert dig(Fraction(3, 8)) == 3
        assert dig(Fraction(5, 4)) == 2

    def test_non_dyadic_is_infinite(self):
        assert dig(Fraction(1, 10)) is None
        assert dig(Fraction(1, 3)) is None

    @given(st.fractions(max_denominator=256))
    def test_dig_definition(self, value):
        digits = dig(value)
        if digits is not None:
            assert (value * 2**digits).denominator == 1
            if digits > 0:
                assert (value * 2 ** (digits - 1)).denominator != 1


class TestMagPrecOrdering:
    def test_componentwise_not_lexicographic(self):
        # (2, 5) vs (3, 4): incomparable under Equation 3.
        a = MagPrec(2, 5)
        b = MagPrec(3, 4)
        assert not a.leq(b) and not b.leq(a)

    def test_infinite_precision_is_top(self):
        assert MagPrec(2, 5).leq(MagPrec(2, None))
        assert not MagPrec(2, None).leq(MagPrec(2, 5))


class TestRealDomain:
    def test_alpha_of_rationals(self):
        element = RealMagnitudePrecisionDomain.alpha([Fraction(5, 2)])
        assert element.precision == 1
        assert RealMagnitudePrecisionDomain.gamma_contains(element, Fraction(5, 2))

    @given(st.fractions(min_value=-1000, max_value=1000, max_denominator=64))
    def test_gamma_alpha_containment(self, value):
        element = RealMagnitudePrecisionDomain.alpha([value])
        assert RealMagnitudePrecisionDomain.gamma_contains(element, value)

    @given(
        st.lists(
            st.fractions(min_value=-100, max_value=100, max_denominator=16),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=100)
    def test_galois_connection(self, values):
        """alpha(C) <= (m,p) iff C subset gamma((m,p)) (Lemma 4.4)."""
        alpha = RealMagnitudePrecisionDomain.alpha(values)
        candidates = [
            MagPrec(alpha.magnitude, alpha.precision),
            MagPrec(alpha.magnitude + 1, alpha.precision),
            MagPrec(max(1, alpha.magnitude - 1), alpha.precision),
            MagPrec(alpha.magnitude, None),
        ]
        if alpha.precision is not None:
            candidates.append(MagPrec(alpha.magnitude, alpha.precision + 1))
            candidates.append(MagPrec(alpha.magnitude, max(0, alpha.precision - 1)))
        for element in candidates:
            lhs = alpha.leq(element)
            rhs = all(
                RealMagnitudePrecisionDomain.gamma_contains(element, v) for v in values
            )
            assert lhs == rhs, (values, element)

    def test_transfer_functions(self):
        domain = RealMagnitudePrecisionDomain(MagPrec(4, 2))
        product = domain.mul([MagPrec(3, 1), MagPrec(2, 2)])
        assert product == MagPrec(5, 3)
        total = domain.add([MagPrec(3, 1), MagPrec(2, 2)])
        assert total == MagPrec(4, 2)
        quotient = domain.div(MagPrec(3, 1), MagPrec(2, 2))
        assert quotient == MagPrec(5, 3)  # the paper's modified rule

    def test_infinite_precision_propagates(self):
        domain = RealMagnitudePrecisionDomain(MagPrec(4, None))
        result = domain.mul([domain.var(), MagPrec(2, 1)])
        assert result.precision is None

    def test_transfer_soundness_on_samples(self):
        domain = RealMagnitudePrecisionDomain(MagPrec(4, 2))
        samples = [Fraction(n, 4) for n in range(-16, 17)]
        for a in samples:
            for b in samples:
                alpha_a = RealMagnitudePrecisionDomain.alpha([a])
                alpha_b = RealMagnitudePrecisionDomain.alpha([b])
                total = domain.add([alpha_a, alpha_b])
                assert RealMagnitudePrecisionDomain.gamma_contains(total, a + b)
                product = domain.mul([alpha_a, alpha_b])
                assert RealMagnitudePrecisionDomain.gamma_contains(product, a * b)
