"""Differential tests: the paper's core soundness claims, end to end.

For a seeded sample of every ``benchgen`` family across all four logics:

- the unbounded baseline agrees with the generator's planted expectation;
- the two solver profiles (zorro / corvus) agree with each other;
- the bounded STAUB translation agrees with the unbounded baseline
  *modulo the documented sound-approximation cases* (Fig. 6): a bounded
  ``unsat``/``unknown``/failed transform never contradicts the original
  -- the pipeline reverts -- and a *verified* model is checked here
  against the original assertions with the exact evaluator.
"""

import random

import pytest

from repro.benchgen import suite_for
from repro.core.pipeline import (
    CASE_BOUNDED_UNKNOWN,
    CASE_BOUNDED_UNSAT,
    CASE_SEMANTIC_DIFFERENCE,
    CASE_TRANSFORM_FAILED,
    CASE_VERIFIED_SAT,
    Staub,
)
from repro.smtlib.evaluator import evaluate_assertions
from repro.solver import solve_script

LOGICS = ("QF_LIA", "QF_NIA", "QF_LRA", "QF_NRA")

#: Virtual-work budget per solve; plays the paper's timeout role.
BUDGET = 150_000

#: Fig. 6 cases in which the bounded side is *allowed* to disagree with
#: a satisfiable original (sound approximation: STAUB reverts).
SOUND_APPROXIMATION_CASES = (
    CASE_BOUNDED_UNSAT,
    CASE_BOUNDED_UNKNOWN,
    CASE_SEMANTIC_DIFFERENCE,
    CASE_TRANSFORM_FAILED,
)


def _sampled_benchs():
    """A seeded sample: up to three instances from every family."""
    rng = random.Random(20240806)
    sample = []
    for logic in LOGICS:
        suite = suite_for(logic, seed=99, scale=0.25)
        for family, members in sorted(suite.by_family().items()):
            chosen = members if len(members) <= 3 else rng.sample(members, 3)
            sample.extend((logic, bench) for bench in chosen)
    return sample


SAMPLE = _sampled_benchs()
IDS = [f"{logic}:{bench.name}" for logic, bench in SAMPLE]


@pytest.fixture(scope="module")
def solved():
    """Solve the whole sample once per (profile) and once through STAUB."""
    results = {}
    for logic, bench in SAMPLE:
        zorro = solve_script(bench.script, budget=BUDGET, profile="zorro")
        corvus = solve_script(bench.script, budget=BUDGET, profile="corvus")
        report = Staub().run(bench.script, budget=BUDGET)
        results[(logic, bench.name)] = (zorro, corvus, report)
    return results


@pytest.mark.parametrize(("logic", "bench"), SAMPLE, ids=IDS)
class TestDifferential:
    def test_baseline_matches_expected(self, logic, bench, solved):
        zorro, _corvus, _report = solved[(logic, bench.name)]
        if bench.expected is not None and not zorro.is_unknown:
            assert zorro.status == bench.expected, bench.name

    def test_profiles_agree(self, logic, bench, solved):
        zorro, corvus, _report = solved[(logic, bench.name)]
        if not zorro.is_unknown and not corvus.is_unknown:
            assert zorro.status == corvus.status, bench.name

    def test_bounded_agrees_modulo_sound_approximation(self, logic, bench, solved):
        zorro, _corvus, report = solved[(logic, bench.name)]
        if report.case == CASE_VERIFIED_SAT:
            # A verified answer must be a genuine model of the original.
            assert not zorro.is_unsat, bench.name
            if bench.expected is not None:
                assert bench.expected == "sat", bench.name
        else:
            # Every non-verified outcome is a documented revert case; the
            # portfolio falls back to the original, so no unsoundness.
            assert report.case in SOUND_APPROXIMATION_CASES, report.case

    def test_verified_models_satisfy_original(self, logic, bench, solved):
        _zorro, _corvus, report = solved[(logic, bench.name)]
        if report.case == CASE_VERIFIED_SAT:
            model = dict(report.model)
            # The evaluator is exact (ints / fractions), so this is an
            # independent end-to-end check of the back-mapping.
            assert evaluate_assertions(bench.script.assertions, model), (
                bench.name
            )


class TestSatModelsFromBaseline:
    """Baseline sat answers also produce checkable models."""

    @pytest.mark.parametrize(
        ("logic", "bench"),
        [(logic, bench) for logic, bench in SAMPLE if bench.expected == "sat"],
        ids=[
            f"{logic}:{bench.name}"
            for logic, bench in SAMPLE
            if bench.expected == "sat"
        ],
    )
    def test_zorro_model_evaluates_true(self, logic, bench, solved):
        zorro, _corvus, _report = solved[(logic, bench.name)]
        if zorro.is_sat and logic in ("QF_LIA", "QF_NIA"):
            assert evaluate_assertions(bench.script.assertions, dict(zorro.model))
