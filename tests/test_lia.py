"""Tests for the branch-and-bound LIA engine."""

import pytest

from repro.arith.contractor import split_conjunction
from repro.arith.lia import LiaSolver, solve_lia_conjunction
from repro.errors import UnsupportedLogicError
from repro.smtlib import parse_script
from repro.smtlib.evaluator import evaluate_assertions


def solve_text(text, budget=500_000):
    script = parse_script(text)
    literals = split_conjunction(script.conjunction())
    return (
        solve_lia_conjunction(literals, script.declarations, budget=budget),
        script,
    )


class TestSat:
    def test_figure4_example(self):
        result, script = solve_text(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (>= a 15))(assert (< (- a b) 0))"
        )
        assert result.status == "sat"
        assert evaluate_assertions(script.assertions, result.model)
        assert result.model["b"] >= 16  # witness exceeds the largest constant

    def test_equality_system(self):
        result, script = solve_text(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (= (+ (* 3 a) (* 5 b)) 44))"
            "(assert (>= (+ a b) 3))(assert (<= (- a b) 7))"
        )
        assert result.status == "sat"
        assert evaluate_assertions(script.assertions, result.model)

    def test_branching_required(self):
        # Relaxation optimum is fractional; B&B must branch.
        result, script = solve_text(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (+ (* 2 x) (* 2 y)) 10))"
            "(assert (> x 0))(assert (> y 0))"
        )
        assert result.status == "sat"
        assert evaluate_assertions(script.assertions, result.model)

    def test_coin_problem_sat(self):
        result, script = solve_text(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (+ (* 7 x) (* 11 y)) 58))"
            "(assert (>= x 0))(assert (>= y 0))"
        )
        assert result.status == "sat"
        assert result.model == {"x": 1, "y": 51 // 11} or evaluate_assertions(
            script.assertions, result.model
        )

    def test_disequality_branching(self):
        result, script = solve_text(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (= (+ a b) 10))(assert (distinct a b))"
            "(assert (>= a 5))(assert (<= a 5))"
        )
        # a is pinned to 5, so b = 5, violating distinct: unsat.
        assert result.status == "unsat"


class TestUnsat:
    def test_gcd_cut(self):
        result, _ = solve_text(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (= (+ (* 2 a) (* 2 b)) 1))"
        )
        assert result.status == "unsat"
        assert result.work < 100  # caught by preprocessing, not search

    def test_no_integer_between(self):
        result, _ = solve_text(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (< a b))(assert (< b (+ a 1)))"
        )
        assert result.status == "unsat"

    def test_empty_window(self):
        result, _ = solve_text(
            "(declare-fun x () Int)"
            "(assert (> (* 3 x) 4))(assert (< (* 3 x) 6))"
        )
        # 3x must be 5: impossible.
        assert result.status == "unsat"

    def test_contradictory_bounds(self):
        result, _ = solve_text(
            "(declare-fun x () Int)(assert (>= x 5))(assert (<= x 4))"
        )
        assert result.status == "unsat"


class TestBudget:
    def test_budget_gives_unknown(self):
        result, _ = solve_text(
            "(declare-fun a () Int)(declare-fun b () Int)(declare-fun c () Int)"
            "(assert (= (+ (* 13 a) (* 17 b) (* 19 c)) 7919))"
            "(assert (>= a 0))(assert (>= b 0))(assert (>= c 0))"
            "(assert (distinct a b))",
            budget=3,
        )
        assert result.status in ("unknown", "sat")


class TestGroundAndEdgeCases:
    def test_ground_true(self):
        result, _ = solve_text("(assert (= 1 1))")
        assert result.status == "sat"

    def test_ground_false(self):
        result, _ = solve_text("(assert (= (+ 1 1) 3))")
        assert result.status == "unsat"

    def test_rejects_boolean_residual(self):
        script = parse_script("(declare-fun p () Bool)(assert p)")
        with pytest.raises(UnsupportedLogicError):
            LiaSolver(script.assertions, script.declarations)

    def test_real_relaxation_used_for_lra(self):
        # With no integer variables, the engine is a complete LRA solver.
        result, script = solve_text(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (= (+ x y) 1.0))(assert (= (- x y) 0.0))"
        )
        assert result.status == "sat"
        from fractions import Fraction

        assert result.model["x"] == Fraction(1, 2)
