"""Tests for the solver façade, profiles, and unified costs."""

import pytest

from repro.errors import SolverError, UnsupportedLogicError
from repro.smtlib import parse_script
from repro.smtlib.evaluator import evaluate_assertions
from repro.solver import PROFILES, get_profile, solve_script
from repro.solver import costs


class TestProfiles:
    def test_both_profiles_registered(self):
        assert set(PROFILES) == {"zorro", "corvus"}

    def test_get_profile(self):
        assert get_profile("zorro").name == "zorro"

    def test_unknown_profile_rejected(self):
        with pytest.raises(SolverError):
            get_profile("z3")

    def test_profiles_share_linear_engines(self):
        zorro = get_profile("zorro")
        corvus = get_profile("corvus")
        assert zorro.engine_for("QF_LIA") is corvus.engine_for("QF_LIA")

    def test_profiles_differ_on_nia(self):
        zorro = get_profile("zorro")
        corvus = get_profile("corvus")
        assert zorro.engine_for("QF_NIA") is not corvus.engine_for("QF_NIA")


class TestRouting:
    def test_bv_script_routes_to_bitblaster(self):
        script = parse_script(
            "(declare-fun v () (_ BitVec 6))(assert (= (bvmul v v) (_ bv36 6)))"
        )
        result = solve_script(script, budget=1_000_000)
        assert result.engine == "bv"
        assert result.status == "sat"

    def test_lia_routes_to_simplex(self):
        script = parse_script("(declare-fun x () Int)(assert (> (* 2 x) 7))")
        result = solve_script(script, budget=100_000)
        assert result.engine == "simplex-bb"
        assert result.status == "sat"

    def test_nia_routes_by_profile(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (= (* x x) 49))"
        )
        zorro = solve_script(script, budget=1_000_000, profile="zorro")
        corvus = solve_script(script, budget=1_000_000, profile="corvus")
        assert zorro.engine == "nia-zorro"
        assert corvus.engine == "nia-corvus"
        assert zorro.status == corvus.status == "sat"

    def test_nra_routes_to_icp(self):
        script = parse_script(
            "(declare-fun x () Real)(assert (> (* x x) 4.0))(assert (< x 0.0))"
        )
        result = solve_script(script, budget=1_000_000)
        assert result.engine == "nra"
        assert result.status == "sat"

    def test_fp_scripts_rejected_with_pointer(self):
        script = parse_script(
            "(declare-fun f () (_ FloatingPoint 8 24))(assert (not (fp.isNaN f)))"
        )
        with pytest.raises(UnsupportedLogicError):
            solve_script(script)


class TestBudgetSemantics:
    def test_exhaustion_is_unknown(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x y) (* y z) (* x z)) 3001))"
            "(assert (> x 10))(assert (> y 10))(assert (> z 10))"
        )
        result = solve_script(script, budget=1000, profile="corvus")
        assert result.is_unknown

    def test_models_check_out(self):
        script = parse_script(
            "(declare-fun p () Bool)(declare-fun x () Int)"
            "(assert (ite p (> x 3) (< x (- 3))))(assert (= (* x x) 16))"
        )
        for profile in ("zorro", "corvus"):
            result = solve_script(script, budget=2_000_000, profile=profile)
            assert result.is_sat
            assert evaluate_assertions(script.assertions, result.model)


class TestCosts:
    def test_unit_conversions(self):
        assert costs.from_sat(100) == 100
        assert costs.from_interval(10) == 10 * costs.INTERVAL_STEP
        assert costs.from_simplex(10) == 10 * costs.PIVOT_STEP

    def test_budget_conversions_inverse(self):
        assert costs.budget_for_interval(costs.from_interval(50)) == 50
        assert costs.budget_for_simplex(costs.from_simplex(50)) == 50

    def test_none_budgets_pass_through(self):
        assert costs.budget_for_interval(None) is None
        assert costs.budget_for_simplex(None) is None

    def test_interval_step_cheaper_than_pivot(self):
        # The calibration ordering the cost model depends on.
        assert costs.SAT_STEP < costs.INTERVAL_STEP < costs.PIVOT_STEP

    def test_work_is_deterministic_across_runs(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))"
        )
        works = {solve_script(script, budget=1_000_000).work for _ in range(3)}
        assert len(works) == 1
