"""Tests for the error hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            errors.SmtLibError,
            errors.ParseError,
            errors.SortError,
            errors.EvaluationError,
            errors.SolverError,
            errors.UnsupportedLogicError,
            errors.TransformError,
            errors.BudgetExceeded,
        ):
            assert issubclass(cls, errors.ReproError)

    def test_parse_error_location_formatting(self):
        error = errors.ParseError("bad token", line=3, column=7)
        assert "line 3" in str(error) and "column 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_parse_error_without_location(self):
        error = errors.ParseError("bad token")
        assert str(error) == "bad token"

    def test_budget_exceeded_payload(self):
        error = errors.BudgetExceeded(150, 100)
        assert error.spent == 150 and error.budget == 100
        assert "150" in str(error)

    def test_unsupported_logic_is_solver_error(self):
        assert issubclass(errors.UnsupportedLogicError, errors.SolverError)

    def test_catching_base_class_at_api_boundary(self):
        from repro.smtlib import parse_script

        with pytest.raises(errors.ReproError):
            parse_script("(assert (= 1")
