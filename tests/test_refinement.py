"""Tests for the iterative bound-refinement extension (Section 6.2)."""

import pytest

from repro.cache import SolveCache
from repro.core.pipeline import (
    CASE_BOUNDED_UNKNOWN,
    CASE_BOUNDED_UNSAT,
    CASE_VERIFIED_SAT,
)
from repro.core.refinement import RefinementStaub
from repro.smtlib import parse_script
from repro.smtlib.evaluator import evaluate_assertions


class TestRefinement:
    def test_first_round_success_stops_immediately(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (= (* x x) 49))"
        )
        report = RefinementStaub().run(script, budget=1_200_000)
        assert report.case == CASE_VERIFIED_SAT
        assert len(report.rounds) == 1

    def test_widening_rescues_insufficient_inference(self):
        # The witness (b >= 16) needs one more bit than the largest
        # constant suggests; a deliberately poor first width forces a
        # refinement round.
        script = parse_script(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (>= a 3))(assert (< (- a b) 0))"
            "(assert (> (+ a b) 62))"
        )
        refiner = RefinementStaub(max_rounds=4)
        report = refiner.run(script, budget=1_200_000)
        assert report.case == CASE_VERIFIED_SAT
        assert evaluate_assertions(script.assertions, report.model)

    def test_genuinely_unsat_stays_unsat_after_rounds(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))"
        )
        report = RefinementStaub(max_rounds=3).run(script, budget=1_200_000)
        assert report.case == CASE_BOUNDED_UNSAT
        assert len(report.rounds) >= 2  # it did retry before giving up
        widths = [width for width, _ in report.rounds]
        assert widths == sorted(widths)  # monotone widening

    def test_total_work_accumulates(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))"
        )
        report = RefinementStaub(max_rounds=3).run(script, budget=1_200_000)
        assert report.total_work >= report.final.total_work
        assert report.total_work > 0

    def test_width_cap_respected(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))"
        )
        refiner = RefinementStaub(max_rounds=10, max_width=12)
        report = refiner.run(script, budget=1_200_000)
        assert all(width <= 12 for width, _ in report.rounds)

    def test_budget_shared_across_rounds(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))"
        )
        report = RefinementStaub(max_rounds=3).run(script, budget=2_000)
        # The bounded side runs out of budget immediately (the blasting
        # cost alone may overshoot slightly) and refinement must not keep
        # retrying after an unknown.
        assert report.case == "bounded-unknown"
        assert len(report.rounds) == 1


class TestConstruction:
    @pytest.mark.parametrize("width", [0, -1, 2.5, "8"])
    def test_rejects_bad_initial_width(self, width):
        # Width 0 in particular: it is falsy, so letting it through would
        # silently flip every `width or inferred` check back to inference.
        with pytest.raises(ValueError):
            RefinementStaub(initial_width=width)

    @pytest.mark.parametrize("kwargs", [
        dict(growth_factor=1),
        dict(growth_factor=0.5),
        dict(max_rounds=0),
        dict(max_width=0),
        dict(headroom=-1),
        dict(headroom=1.5),
    ])
    def test_rejects_bad_loop_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RefinementStaub(**kwargs)

    def test_rounds_record_actual_width(self):
        # A pinned first round that fails to transform must still record
        # the width it attempted, not fall back through a falsy check.
        script = parse_script("(declare-fun x () Int)(assert (= x 100))")
        report = RefinementStaub(initial_width=3, max_rounds=1).run(
            script, budget=1_200_000
        )
        assert report.rounds == [(3, "transform-failed")]


class TestBudgetRegression:
    """A budget at or below the first round's cost stops after exactly
    one round, with the structured bounded-unknown (the overrun bug)."""

    UNSAT = "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))"

    @pytest.mark.parametrize("incremental", [False, True])
    def test_tiny_budget_runs_exactly_one_round(self, incremental):
        script = parse_script(self.UNSAT)
        budget = 10  # at most one round's transform cost
        report = RefinementStaub(
            initial_width=3, max_rounds=5, incremental=incremental
        ).run(script, budget=budget)
        assert len(report.rounds) == 1
        assert report.budget_exhausted
        assert report.case == CASE_BOUNDED_UNKNOWN
        assert report.final.stats["gave_up"] == "refinement"
        # total_work may overrun only by the last round's own work.
        last_round_work = 2 * script.size() + report.final.total_work
        assert report.total_work <= budget + last_round_work

    @pytest.mark.parametrize("incremental", [False, True])
    def test_exhaustion_between_rounds_sets_flag(self, incremental):
        # Warm cache, then a budget the cached first round alone fills:
        # the loop must stop before round two with the structured
        # unknown, not spin the remaining schedule on a floor-clamped
        # budget.
        script = parse_script(self.UNSAT)
        cache = SolveCache()
        cfg = dict(initial_width=4, max_rounds=4, incremental=incremental)
        cold = RefinementStaub(cache=cache, **cfg).run(script, budget=1_200_000)
        assert len(cold.rounds) >= 2
        first_round_work = cold.total_work  # upper bound on round one
        warm = RefinementStaub(cache=cache, **cfg).run(
            script, budget=max(1, first_round_work // len(cold.rounds))
        )
        assert warm.budget_exhausted
        assert warm.case == CASE_BOUNDED_UNKNOWN
        assert warm.final.stats["gave_up"] == "refinement"
        assert len(warm.rounds) < len(cold.rounds)

    def test_budget_never_overrun_after_clamping(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 5))"
        )
        for incremental in (False, True):
            report = RefinementStaub(
                initial_width=4, max_rounds=3, incremental=incremental
            ).run(script, budget=40_000)
            assert report.total_work <= 40_000 + script.size()


class TestIncrementalEngine:
    def test_verdict_parity_with_scratch(self):
        cases = [
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))",
            "(declare-fun x () Int)(assert (= (* x x) 49))",
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (>= a 3))(assert (< (- a b) 0))(assert (> (+ a b) 62))",
            "(declare-fun x () Int)(assert (= (* x x) 2))(assert (> x 0))",
        ]
        for text in cases:
            script = parse_script(text)
            cfg = dict(initial_width=3, growth_factor=2, max_width=16, max_rounds=5)
            scratch = RefinementStaub(**cfg).run(script, budget=1_200_000)
            incr = RefinementStaub(incremental=True, **cfg).run(
                script, budget=1_200_000
            )
            assert incr.case == scratch.case
            assert incr.rounds == scratch.rounds
            assert incr.mode == "incremental"
            if incr.case == CASE_VERIFIED_SAT:
                assert evaluate_assertions(script.assertions, incr.model)

    def test_incremental_cheaper_on_multi_round(self):
        # Bound inference runs once instead of once per round, so any
        # multi-round conclusive run is strictly cheaper.
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))"
        )
        cfg = dict(initial_width=3, max_rounds=5)
        scratch = RefinementStaub(**cfg).run(script, budget=1_200_000)
        incr = RefinementStaub(incremental=True, **cfg).run(script, budget=1_200_000)
        assert len(scratch.rounds) >= 2
        assert incr.rounds == scratch.rounds
        assert incr.total_work < scratch.total_work

    def test_clause_reuse_across_sub_rounds(self):
        # x^3+y^3+z^3 = 5 is unsat at every width (cubes are 0 or +-1
        # mod 9). Round one concludes unsat; round two is hard enough
        # that the conflict-capped first phase caps out, so the probe
        # and full phases run on the warm solver and observe its
        # learned clauses.
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 5))"
        )
        cfg = dict(initial_width=4, growth_factor=2, max_width=16, max_rounds=3)
        scratch = RefinementStaub(**cfg).run(script, budget=40_000)
        incr = RefinementStaub(incremental=True, **cfg).run(script, budget=40_000)
        assert incr.case == scratch.case
        assert incr.rounds == scratch.rounds
        assert incr.subrounds > len(incr.rounds)  # phases actually ran
        assert incr.clauses_reused > 0
        assert incr.total_work == scratch.total_work  # both billed the budget

    def test_warm_cache_replays_identically(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (= (* x x) 49))"
        )
        cache = SolveCache()
        cfg = dict(
            initial_width=3, max_rounds=5, incremental=True, cache=cache
        )
        cold = RefinementStaub(**cfg).run(script, budget=1_200_000)
        warm = RefinementStaub(**cfg).run(script, budget=1_200_000)
        assert warm.case == cold.case
        assert warm.rounds == cold.rounds
        assert warm.total_work == cold.total_work
        assert warm.cache_hits > 0
        if warm.case == CASE_VERIFIED_SAT:
            assert evaluate_assertions(script.assertions, warm.model)

    def test_headroom_keeps_verdicts(self):
        # headroom > 0 trades work for shared encodings; verdicts must
        # not move.
        for text in (
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))",
            "(declare-fun x () Int)(assert (= (* x x) 49))",
        ):
            script = parse_script(text)
            cfg = dict(initial_width=3, max_rounds=5, max_width=16)
            scratch = RefinementStaub(**cfg).run(script, budget=1_200_000)
            wide = RefinementStaub(incremental=True, headroom=1, **cfg).run(
                script, budget=1_200_000
            )
            assert wide.case == scratch.case


class TestAblationAcceptance:
    """The incremental-vs-scratch acceptance bar, on a small slice of
    the NIA suite (the full run lives in `run_all refinement`)."""

    @pytest.fixture(scope="class")
    def rows(self):
        from repro.evaluation import ablation
        from repro.evaluation.runner import ExperimentCache

        cache = ExperimentCache(seed=13, scale=0.08, timeout=200_000)
        return ablation.refinement_comparison(cache), cache.timeout

    def test_verdicts_identical_on_every_instance(self, rows):
        from repro.evaluation.ablation import _verdict

        comparison, _ = rows
        assert comparison  # the slice is non-empty
        for row in comparison:
            assert _verdict(row, "incremental") == _verdict(row, "scratch"), row["name"]

    def test_work_reduced_on_every_multi_round_instance(self, rows):
        comparison, budget = rows
        multi = [r for r in comparison if len(r["scratch"]["rounds"]) > 1]
        assert multi
        for row in multi:
            s = row["scratch"]["total_work"]
            i = row["incremental"]["total_work"]
            if s >= budget:
                # Clamped (timeout) instances bill exactly the budget in
                # both engines; "reduced" is meaningless there.
                assert i == s, row["name"]
            else:
                assert i < s, row["name"]
        assert any(r["scratch"]["total_work"] < budget for r in multi)

    def test_render_emits_diffable_lines(self, rows):
        from repro.evaluation import ablation
        from repro.evaluation.runner import ExperimentCache

        cache = ExperimentCache(seed=13, scale=0.08, timeout=200_000)
        text = ablation.render_refinement(cache)
        verdicts = [l for l in text.splitlines() if l.startswith("verdict ")]
        comparison, _ = rows
        assert len(verdicts) == 2 * len(comparison)
        assert any(l.startswith("summary ") for l in text.splitlines())
