"""Tests for the iterative bound-refinement extension (Section 6.2)."""

import pytest

from repro.core.pipeline import CASE_BOUNDED_UNSAT, CASE_VERIFIED_SAT
from repro.core.refinement import RefinementStaub
from repro.smtlib import parse_script
from repro.smtlib.evaluator import evaluate_assertions


class TestRefinement:
    def test_first_round_success_stops_immediately(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (= (* x x) 49))"
        )
        report = RefinementStaub().run(script, budget=1_200_000)
        assert report.case == CASE_VERIFIED_SAT
        assert len(report.rounds) == 1

    def test_widening_rescues_insufficient_inference(self):
        # The witness (b >= 16) needs one more bit than the largest
        # constant suggests; a deliberately poor first width forces a
        # refinement round.
        script = parse_script(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (>= a 3))(assert (< (- a b) 0))"
            "(assert (> (+ a b) 62))"
        )
        refiner = RefinementStaub(max_rounds=4)
        report = refiner.run(script, budget=1_200_000)
        assert report.case == CASE_VERIFIED_SAT
        assert evaluate_assertions(script.assertions, report.model)

    def test_genuinely_unsat_stays_unsat_after_rounds(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))"
        )
        report = RefinementStaub(max_rounds=3).run(script, budget=1_200_000)
        assert report.case == CASE_BOUNDED_UNSAT
        assert len(report.rounds) >= 2  # it did retry before giving up
        widths = [width for width, _ in report.rounds]
        assert widths == sorted(widths)  # monotone widening

    def test_total_work_accumulates(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))"
        )
        report = RefinementStaub(max_rounds=3).run(script, budget=1_200_000)
        assert report.total_work >= report.final.total_work
        assert report.total_work > 0

    def test_width_cap_respected(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))"
        )
        refiner = RefinementStaub(max_rounds=10, max_width=12)
        report = refiner.run(script, budget=1_200_000)
        assert all(width <= 12 for width, _ in report.rounds)

    def test_budget_shared_across_rounds(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))"
        )
        report = RefinementStaub(max_rounds=3).run(script, budget=2_000)
        # The bounded side runs out of budget immediately (the blasting
        # cost alone may overshoot slightly) and refinement must not keep
        # retrying after an unknown.
        assert report.case == "bounded-unknown"
        assert len(report.rounds) == 1
