"""End-to-end tests for the STAUB pipeline (Fig. 3 / Fig. 6)."""

import pytest

from repro.core.pipeline import (
    CASE_BOUNDED_UNKNOWN,
    CASE_BOUNDED_UNSAT,
    CASE_SEMANTIC_DIFFERENCE,
    CASE_TRANSFORM_FAILED,
    CASE_VERIFIED_SAT,
    Staub,
    portfolio_time,
)
from repro.smtlib import parse_script
from repro.smtlib.evaluator import evaluate_assertions


class TestVerifiedSat:
    def test_motivating_example_small(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 92))"
        )
        report = Staub().run(script, budget=2_000_000)
        assert report.case == CASE_VERIFIED_SAT
        assert evaluate_assertions(script.assertions, report.model)
        assert report.t_post > 0 and report.t_trans > 0 and report.t_check > 0

    def test_product_instance(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))"
        )
        report = Staub().run(script, budget=2_000_000)
        assert report.case == CASE_VERIFIED_SAT
        assert report.model["x"] == 7 and report.model["y"] == 11

    def test_real_dyadic_instance(self):
        script = parse_script(
            "(declare-fun x () Real)"
            "(assert (= (* x x) 2.25))(assert (> x 0.0))"
        )
        report = Staub().run(script, budget=2_000_000)
        assert report.case == CASE_VERIFIED_SAT
        from fractions import Fraction

        assert report.model["x"] == Fraction(3, 2)


class TestRevertCases:
    def test_unsat_original_reverts(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))"
        )
        report = Staub().run(script, budget=500_000)
        assert report.case == CASE_BOUNDED_UNSAT
        assert report.model is None

    def test_insufficient_width_reverts_as_unsat(self):
        # Satisfiable, but the witness does not fit the fixed tiny width.
        script = parse_script(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (>= a 15))(assert (< (- a b) 0))"
        )
        report = Staub(width_strategy=4).run(script, budget=500_000)
        assert report.case in (CASE_BOUNDED_UNSAT, CASE_TRANSFORM_FAILED)

    def test_width_from_inference_covers_figure4(self):
        script = parse_script(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (>= a 15))(assert (< (- a b) 0))"
        )
        report = Staub().run(script, budget=500_000)
        assert report.case == CASE_VERIFIED_SAT
        assert report.model["b"] > report.model["a"] >= 15

    def test_budget_exhaustion(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))"
        )
        report = Staub().run(script, budget=500)
        assert report.case == CASE_BOUNDED_UNKNOWN

    def test_unsupported_script_is_transform_failed(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Real)"
            "(assert (> x 0))(assert (> y 0.0))"
        )
        report = Staub().run(script, budget=500_000)
        assert report.case == CASE_TRANSFORM_FAILED


class TestWidthStrategies:
    def test_fixed_width_strategy(self):
        script = parse_script("(declare-fun x () Int)(assert (= (* x x) 49))")
        report = Staub(width_strategy=16).run(script, budget=2_000_000)
        assert report.width == 16
        assert report.case == CASE_VERIFIED_SAT

    def test_absint_beats_fixed_4_on_figure4(self):
        script = parse_script(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (>= a 15))(assert (< (- a b) 0))"
        )
        fixed = Staub(width_strategy=4).run(script, budget=500_000)
        inferred = Staub().run(script, budget=500_000)
        assert fixed.case != CASE_VERIFIED_SAT
        assert inferred.case == CASE_VERIFIED_SAT

    def test_width_cap_falls_back_to_assumption(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))"
        )
        staub = Staub()
        transformed, inference, _ = staub.transform(script)
        assert inference.root > staub.max_int_width
        assert transformed.width == inference.assumption  # Fig. 1b's 12


class TestPortfolioSemantics:
    def test_usable_takes_min(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (= (* x x) 49))"
        )
        report = Staub().run(script, budget=2_000_000)
        assert report.usable
        assert portfolio_time(10**9, report) == report.total_work
        assert portfolio_time(1, report) == 1

    def test_unusable_keeps_t_pre(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))"
        )
        report = Staub().run(script, budget=500_000)
        assert not report.usable
        assert portfolio_time(12345, report) == 12345


class TestSlotHook:
    def test_optimizer_is_applied(self):
        from repro.slot import optimize_script

        calls = []

        def optimizer(script):
            optimized, _ = optimize_script(script)
            calls.append(True)
            return optimized

        script = parse_script(
            "(declare-fun x () Int)(assert (= (* x 4) 20))"
        )
        report = Staub(optimizer=optimizer).run(script, budget=2_000_000)
        assert calls
        assert report.case == CASE_VERIFIED_SAT
        assert report.model["x"] == 5
