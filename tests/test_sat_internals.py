"""Deeper SAT solver internals: DB reduction, phases, determinism."""

import random

from repro.sat.cnf import CNF
from repro.sat.solver import SAT, UNSAT, SatSolver, solve_cnf


def hard_instance(seed, num_vars=140, ratio=4.3):
    rng = random.Random(seed)
    cnf = CNF(num_vars)
    for _ in range(int(ratio * num_vars)):
        variables = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause([v * rng.choice((1, -1)) for v in variables])
    return cnf


class TestClauseDatabase:
    def test_learned_clauses_accumulate_and_reduce(self):
        # A long run with many conflicts must trigger DB maintenance
        # without affecting correctness.
        results = []
        for seed in range(4):
            cnf = hard_instance(seed)
            result, model, stats = solve_cnf(cnf)
            results.append(result)
            if result == SAT:
                for clause in cnf.clauses:
                    assert any(model[abs(l)] == (l > 0) for l in clause)
            assert stats.learned_clauses >= stats.deleted_clauses
        assert set(results) <= {SAT, UNSAT}

    def test_restarts_happen_on_hard_instances(self):
        cnf = hard_instance(7, num_vars=120)
        _, _, stats = solve_cnf(cnf)
        if stats.conflicts > 200:
            assert stats.restarts > 0


class TestDeterminism:
    def test_same_input_same_statistics(self):
        reference = None
        for _ in range(3):
            _, _, stats = solve_cnf(hard_instance(3))
            snapshot = stats.as_dict()
            if reference is None:
                reference = snapshot
            assert snapshot == reference

    def test_work_monotone_in_conflict_budget(self):
        cnf = hard_instance(9, num_vars=160)
        _, _, small = solve_cnf(hard_instance(9, num_vars=160), max_conflicts=10)
        _, _, large = solve_cnf(cnf, max_conflicts=100)
        assert small.work() <= large.work() or large.conflicts < 100


class TestMinimization:
    def test_clause_minimization_fires(self):
        # Structured instances exercise the recursive-reason check.
        cnf = CNF()
        chain = 30
        for i in range(1, chain):
            cnf.add_clause([-i, i + 1])
        cnf.add_clause([1])
        cnf.add_clause([-chain, chain + 1, chain + 2])
        cnf.add_clause([-(chain + 1), -(chain + 2)])
        result, _, stats = solve_cnf(cnf)
        assert result == SAT

    def test_phase_saving_on_restart(self):
        # Solving twice: the second call reuses saved phases; the result
        # and model must still satisfy the formula.
        solver = SatSolver()
        rng = random.Random(2)
        for _ in range(200):
            variables = rng.sample(range(1, 61), 3)
            solver.add_clause([v * rng.choice((1, -1)) for v in variables])
        first = solver.solve()
        second = solver.solve()
        assert first == second
