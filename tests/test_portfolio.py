"""Portfolio scheduler tests: determinism, winner semantics, --jobs parity."""

import json

import pytest

from repro import telemetry
from repro.core.pipeline import (
    CASE_BOUNDED_UNSAT,
    CASE_VERIFIED_SAT,
    ArbitrageReport,
    portfolio_time,
)
from repro.portfolio.scheduler import (
    Attempt,
    InterleavingScheduler,
    PrecomputedAttempt,
    parallel_race,
    race_precomputed,
)
from repro.portfolio.tasks import ArbitrageTask, BaselineTask, default_tasks
from repro.smtlib import parse_script
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def telemetry_off():
    telemetry.disable()
    telemetry.get_registry().reset()
    yield
    telemetry.disable()
    telemetry.get_registry().reset()


CUBES = (
    "(set-logic QF_NIA)\n"
    "(declare-fun x () Int)(declare-fun y () Int)\n"
    "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))\n"
    "(check-sat)\n"
)

UNSAT_LIA = (
    "(set-logic QF_LIA)\n"
    "(declare-fun x () Int)\n"
    "(assert (> x 5))(assert (< x 3))\n"
    "(check-sat)\n"
)


def _outcome_fingerprint(outcome):
    """Everything that must be byte-identical across deterministic runs."""
    return json.dumps(
        {
            "status": outcome.status,
            "winner": outcome.winner.lane if outcome.winner else None,
            "observed": outcome.observed_work,
            "total": outcome.total_work,
            "rounds": outcome.rounds,
            "history": [
                [(a.lane, a.status, a.conclusive, a.work) for a in round_attempts]
                for round_attempts in outcome.history
            ],
        },
        sort_keys=True,
    )


class TestRacePrecomputed:
    def test_fastest_conclusive_lane_wins(self):
        outcome = race_precomputed(
            [
                PrecomputedAttempt("a", conclusive=True, work=50),
                PrecomputedAttempt("b", conclusive=True, work=20),
                PrecomputedAttempt("c", conclusive=False, work=5),
            ]
        )
        assert outcome.winner.lane == "b"
        assert outcome.observed_work == 20
        assert outcome.total_work == 75

    def test_tie_breaks_toward_earlier_lane(self):
        outcome = race_precomputed(
            [
                PrecomputedAttempt("a", conclusive=True, work=20),
                PrecomputedAttempt("b", conclusive=True, work=20),
            ]
        )
        assert outcome.winner.lane == "a"

    def test_no_winner_costs_the_longest_lane(self):
        outcome = race_precomputed(
            [
                PrecomputedAttempt("a", conclusive=False, work=30),
                PrecomputedAttempt("b", conclusive=False, work=70),
            ]
        )
        assert outcome.winner is None
        assert outcome.status == "unknown"
        assert outcome.observed_work == 70

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            race_precomputed([])


class TestPortfolioTime:
    """portfolio_time keeps its Section 5.1 semantics on the scheduler."""

    def _report(self, usable, total):
        case = CASE_VERIFIED_SAT if usable else CASE_BOUNDED_UNSAT
        return ArbitrageReport(case, model={} if usable else None, t_post=total)

    def test_usable_takes_min(self):
        assert portfolio_time(100, self._report(True, 40)) == 40
        assert portfolio_time(30, self._report(True, 40)) == 30

    def test_unusable_reverts_to_baseline(self):
        assert portfolio_time(100, self._report(False, 5)) == 100


class TestDeterministicScheduler:
    def test_byte_identical_across_runs(self):
        script = parse_script(CUBES)
        fingerprints = []
        snapshots = []
        for _ in range(2):
            registry = MetricsRegistry()
            telemetry.enable(registry=registry)
            scheduler = InterleavingScheduler(default_tasks(), budget=200_000)
            outcome = scheduler.run(script)
            telemetry.disable()
            fingerprints.append(_outcome_fingerprint(outcome))
            snapshots.append(json.dumps(registry.snapshot(), sort_keys=True))
        assert fingerprints[0] == fingerprints[1]
        assert snapshots[0] == snapshots[1]

    def test_sat_script_finds_model(self):
        outcome = InterleavingScheduler(default_tasks(), budget=200_000).run(
            parse_script(CUBES)
        )
        assert outcome.status == "sat"
        assert outcome.model is not None
        assert outcome.model["x"] * outcome.model["y"] == 77

    def test_unsat_script_concludes(self):
        outcome = InterleavingScheduler(default_tasks(), budget=200_000).run(
            parse_script(UNSAT_LIA)
        )
        assert outcome.status == "unsat"
        assert outcome.winner.lane.startswith("original/")

    def test_losers_are_cancelled_after_a_win(self):
        # Once a round produces a winner no later (larger-budget) round runs:
        # every recorded attempt sits at or below the winning round's slice.
        scheduler = InterleavingScheduler(
            default_tasks(), budget=200_000, initial_slice=1024
        )
        outcome = scheduler.run(parse_script(CUBES))
        assert outcome.rounds == len(outcome.history)
        final_round = outcome.history[-1]
        assert any(attempt.conclusive for attempt in final_round)

    def test_observed_work_never_exceeds_total(self):
        outcome = InterleavingScheduler(default_tasks(), budget=200_000).run(
            parse_script(CUBES)
        )
        assert 0 < outcome.observed_work <= outcome.total_work

    def test_unlimited_budget_is_single_round(self):
        outcome = InterleavingScheduler(default_tasks(), budget=None).run(
            parse_script(UNSAT_LIA)
        )
        assert outcome.rounds == 1
        assert outcome.status == "unsat"

    def test_rejects_empty_or_bad_config(self):
        with pytest.raises(ValueError):
            InterleavingScheduler([])
        with pytest.raises(ValueError):
            InterleavingScheduler(default_tasks(), growth=1)

    def test_telemetry_counters(self):
        registry = MetricsRegistry()
        telemetry.enable(registry=registry)
        InterleavingScheduler(default_tasks(), budget=200_000).run(parse_script(CUBES))
        telemetry.disable()
        snap = registry.snapshot()
        assert snap["portfolio.races"] == 1
        assert any(key.startswith("portfolio.winner") for key in snap)


class TestLanes:
    def test_baseline_lane_statuses(self):
        lane = BaselineTask("zorro")
        sat = lane.attempt(parse_script(CUBES), 200_000)
        assert sat.conclusive and sat.status == "sat"
        tiny = lane.attempt(parse_script(CUBES), 10)
        assert not tiny.conclusive and tiny.status == "unknown"

    def test_arbitrage_lane_is_inconclusive_on_bounded_unsat(self):
        # Bounded-side unsat does not answer the original question.
        lane = ArbitrageTask("fixed8")
        attempt = lane.attempt(parse_script(UNSAT_LIA), 200_000)
        assert not attempt.conclusive
        assert attempt.status == "unknown"

    def test_default_grid(self):
        lanes = default_tasks()
        names = [lane.name for lane in lanes]
        assert names == ["original/zorro", "original/corvus", "staub/staub"]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ArbitrageTask("nope").attempt(parse_script(CUBES), 1000)


class TestParallelRace:
    def test_jobs_2_matches_deterministic_status_sat(self):
        script = parse_script(CUBES)
        deterministic = InterleavingScheduler(default_tasks(), budget=200_000).run(
            script
        )
        raced = parallel_race(default_tasks(), script, budget=200_000, jobs=2)
        assert raced.status == deterministic.status == "sat"
        assert raced.winner is not None
        if raced.model is not None:
            assert raced.model["x"] * raced.model["y"] == 77

    def test_jobs_2_matches_deterministic_status_unsat(self):
        script = parse_script(UNSAT_LIA)
        deterministic = InterleavingScheduler(default_tasks(), budget=200_000).run(
            script
        )
        raced = parallel_race(default_tasks(), script, budget=200_000, jobs=2)
        assert raced.status == deterministic.status == "unsat"

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            parallel_race([], parse_script(CUBES))
