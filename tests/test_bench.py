"""Tests for the bench harness: determinism, compare gating, CLI, analysis."""

import json
import os
import subprocess
import sys

import pytest

from repro import telemetry
from repro.bench import available_suites, compare_payloads, get_suite, run_suite
from repro.bench.harness import deterministic_bytes, load_artifact, write_artifact
from repro.cli import main
from repro.telemetry.analyze import (
    build_tree,
    collapse_stacks,
    critical_path,
    render_flamegraph,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "benchmarks", "baselines", "BENCH_smoke.json")
TERMINATION_BASELINE = os.path.join(
    REPO_ROOT, "benchmarks", "baselines", "BENCH_termination.json"
)


@pytest.fixture(autouse=True)
def telemetry_off():
    telemetry.disable()
    telemetry.get_registry().reset()
    yield
    telemetry.disable()
    telemetry.get_registry().reset()


@pytest.fixture(scope="module")
def smoke_payload():
    """One shared smoke run (wall-clock skipped: deterministic only)."""
    return run_suite("smoke", timing=False)


def _payload(suite="smoke", work=100, seconds=1.0):
    """Small synthetic artifact for compare tests."""
    return {
        "format": 1,
        "suite": suite,
        "deterministic": {
            "cases": {"a": {"cold": {"verdict": "sat", "work": work}}},
            "totals": {"cases": 1, "work": work},
            "counters": {"solver.propagations": work * 10},
        },
        "wall_clock": {
            "repeats": 1,
            "cases": {"a": {"seconds_median": seconds, "throughput": {}}},
            "seconds_total": seconds,
        },
    }


class TestSuites:
    def test_available_suites(self):
        names = available_suites()
        assert "smoke" in names
        assert names == sorted(names)

    def test_unknown_suite_raises_with_listing(self):
        with pytest.raises(KeyError, match="smoke"):
            get_suite("nope")

    def test_smoke_covers_engine_families(self):
        kinds = {case.kind for case in get_suite("smoke")}
        assert {"solve", "arbitrage", "refine"} <= kinds


class TestDeterminism:
    def test_smoke_deterministic_section_byte_identical(self, smoke_payload):
        again = run_suite("smoke", timing=False)
        assert deterministic_bytes(smoke_payload) == deterministic_bytes(again)

    def test_smoke_matches_checked_in_baseline(self, smoke_payload):
        baseline = load_artifact(BASELINE)
        regressions, _warnings = compare_payloads(smoke_payload, baseline)
        assert regressions == [], (
            "deterministic drift vs benchmarks/baselines/BENCH_smoke.json -- "
            "if the cost change is intentional, regenerate the baseline with "
            "`staub bench --suite smoke --no-wall --out "
            "benchmarks/baselines/BENCH_smoke.json`"
        )

    def test_deterministic_section_is_json_safe(self, smoke_payload):
        def check(value, path):
            if isinstance(value, dict):
                for key, child in value.items():
                    check(child, f"{path}.{key}")
            elif isinstance(value, list):
                for index, child in enumerate(value):
                    check(child, f"{path}[{index}]")
            else:
                assert isinstance(value, (int, str, bool)) or value is None, (
                    f"non-deterministic type at {path}: {value!r}"
                )

        check(smoke_payload["deterministic"], "deterministic")

    def test_warm_runs_hit_the_cache(self, smoke_payload):
        cases = smoke_payload["deterministic"]["cases"]
        hits = sum(record["warm"]["cache_hits"] for record in cases.values())
        assert hits > 0

    def test_deep_counters_present(self, smoke_payload):
        counters = smoke_payload["deterministic"]["counters"]
        for name in (
            "solver.propagations",
            "solver.conflicts",
            "solver.decisions",
            "blast.cnf_clauses",
            "blast.and_gates",
            "refine.rounds",
        ):
            assert counters.get(name, 0) > 0, name

    def test_bench_leaves_telemetry_disabled(self, smoke_payload):
        assert not telemetry.enabled


@pytest.fixture(scope="module")
def termination_payload():
    """One shared termination-suite run (classic + session lanes)."""
    return run_suite("termination", timing=False)


def _session_pairs(payload):
    """{program: (classic record, session record)} from a termination run."""
    cases = payload["deterministic"]["cases"]
    pairs = {}
    for name, record in cases.items():
        if name.startswith("term-session/"):
            program = name.split("/", 1)[1]
            pairs[program] = (cases[f"term/{program}"], record)
    return pairs


class TestTerminationSessions:
    """The session-mode gate: the scoped STAUB lane must do strictly less
    deterministic work than the classic per-query pipeline and must never
    downgrade a verdict the classic mode reached."""

    def test_every_program_has_both_lanes(self, termination_payload):
        pairs = _session_pairs(termination_payload)
        assert pairs, "no term-session/ cases in the termination suite"
        classic_only = {
            name.split("/", 1)[1]
            for name in termination_payload["deterministic"]["cases"]
            if name.startswith("term/")
        }
        assert set(pairs) == classic_only

    def test_matches_checked_in_baseline(self, termination_payload):
        baseline = load_artifact(TERMINATION_BASELINE)
        regressions, _warnings = compare_payloads(termination_payload, baseline)
        assert regressions == [], (
            "deterministic drift vs benchmarks/baselines/BENCH_termination.json"
            " -- if the cost change is intentional, regenerate with `staub"
            " bench --suite termination --no-wall --out"
            " benchmarks/baselines/BENCH_termination.json`"
        )

    def test_verdicts_never_downgraded(self, termination_payload):
        for program, (classic, session) in _session_pairs(
            termination_payload
        ).items():
            classic_verdict = classic["cold"]["verdict"]
            session_verdict = session["cold"]["verdict"]
            assert (
                session_verdict == classic_verdict
                or classic_verdict == "unknown"
            ), (
                f"{program}: session downgraded {classic_verdict!r} to "
                f"{session_verdict!r} -- sessions may only upgrade unknowns "
                "(via verified models), never lose a classic verdict"
            )

    def test_baseline_lane_unaffected_by_sessions(self, termination_payload):
        # The baseline lane solves identical flat scripts in both modes,
        # so whenever the two modes ran the same query stream (equal
        # verdicts) its cost must match exactly.
        for program, (classic, session) in _session_pairs(
            termination_payload
        ).items():
            if classic["cold"]["verdict"] == session["cold"]["verdict"]:
                assert (
                    session["cold"]["baseline_work"]
                    == classic["cold"]["baseline_work"]
                ), program
                assert session["cold"]["queries"] == classic["cold"]["queries"]
            else:
                # An upgrade decides earlier: never more queries.
                assert session["cold"]["queries"] <= classic["cold"]["queries"]

    def test_session_staub_work_strictly_lower(self, termination_payload):
        for program, (classic, session) in _session_pairs(
            termination_payload
        ).items():
            assert (
                session["cold"]["staub_work"] < classic["cold"]["staub_work"]
            ), (
                f"{program}: session STAUB lane did not beat the classic "
                f"per-query pipeline ({session['cold']['staub_work']} >= "
                f"{classic['cold']['staub_work']})"
            )
            assert session["cold"]["work"] <= classic["cold"]["work"], program

    def test_session_fewer_blast_and_transform_spans(self, termination_payload):
        def spans(record, stage):
            return record.get("stages", {}).get(stage, {}).get("spans", 0)

        for program, (classic, session) in _session_pairs(
            termination_payload
        ).items():
            assert spans(session, "blast") < spans(classic, "blast"), program
            assert spans(session, "transform") <= spans(classic, "transform"), (
                program
            )
            combined_session = spans(session, "blast") + spans(
                session, "transform"
            )
            combined_classic = spans(classic, "blast") + spans(
                classic, "transform"
            )
            assert combined_session < combined_classic, program


class TestCompare:
    def test_identical_payloads_pass(self):
        regressions, warnings = compare_payloads(_payload(), _payload())
        assert regressions == []
        assert warnings == []

    def test_deterministic_change_is_regression(self):
        regressions, _ = compare_payloads(_payload(work=101), _payload(work=100))
        assert regressions
        assert any("deterministic" in entry for entry in regressions)

    def test_added_and_removed_keys_are_regressions(self):
        current = _payload()
        del current["deterministic"]["counters"]["solver.propagations"]
        current["deterministic"]["counters"]["solver.pivots"] = 5
        regressions, _ = compare_payloads(current, _payload())
        kinds = "\n".join(regressions)
        assert "removed" in kinds
        assert "added" in kinds

    def test_wall_drift_is_informational_by_default(self):
        regressions, warnings = compare_payloads(
            _payload(seconds=2.0), _payload(seconds=1.0)
        )
        assert regressions == []
        assert warnings and "wall-clock" in warnings[0]

    def test_wall_tolerance_gates_when_requested(self):
        regressions, _ = compare_payloads(
            _payload(seconds=2.0), _payload(seconds=1.0), wall_tolerance=0.25
        )
        assert regressions and "tolerance" in regressions[0]

    def test_wall_within_tolerance_passes(self):
        regressions, warnings = compare_payloads(
            _payload(seconds=1.1), _payload(seconds=1.0), wall_tolerance=0.25
        )
        assert regressions == []
        assert warnings

    def test_suite_mismatch_short_circuits(self):
        regressions, _ = compare_payloads(_payload(suite="qf_nia"), _payload())
        assert regressions == ["suite mismatch: baseline 'smoke', current 'qf_nia'"]


class TestBenchCli:
    def test_list_suites(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out

    def test_bench_without_suite_is_usage_error(self, capsys):
        assert main(["bench"]) == 2
        assert "--suite" in capsys.readouterr().err

    def test_unknown_suite_is_usage_error(self, capsys):
        assert main(["bench", "--suite", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_replay_compare_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        write_artifact(_payload(), str(base))
        same = tmp_path / "same.json"
        write_artifact(_payload(), str(same))
        perturbed = tmp_path / "bad.json"
        write_artifact(_payload(work=101), str(perturbed))

        assert main(["bench", "--replay", str(same), "--compare", str(base)]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["bench", "--replay", str(perturbed), "--compare", str(base)]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_python_dash_m_repro_matches_staub(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")])
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 2
        assert "a subcommand is required" in proc.stderr


def _spans():
    """A small close-ordered trace: root(20) -> a(12) -> b(5), root -> c(3)."""
    return [
        {"name": "b", "depth": 2, "t_start": 2, "t_end": 7, "work": 5},
        {"name": "a", "depth": 1, "t_start": 1, "t_end": 13, "work": 12},
        {"name": "c", "depth": 1, "t_start": 13, "t_end": 16, "work": 3},
        {"name": "root", "depth": 0, "t_start": 0, "t_end": 20, "work": 20},
    ]


class TestAnalyze:
    def test_build_tree_reconstructs_nesting(self):
        roots = build_tree(_spans())
        assert [node.name for node in roots] == ["root"]
        root = roots[0]
        assert [child.name for child in root.children] == ["a", "c"]
        assert root.children[0].children[0].name == "b"
        assert root.self_work == 5  # 20 - 12 - 3

    def test_critical_path_follows_heaviest_child(self):
        path = critical_path(_spans())
        assert [entry["name"] for entry in path] == ["root", "a", "b"]
        assert path[0]["share"] == 1.0

    def test_collapse_stacks_self_work_sums_to_total(self):
        stacks = collapse_stacks(_spans())
        assert stacks == {"root": 5, "root;a": 7, "root;a;b": 5, "root;c": 3}
        assert sum(stacks.values()) == 20

    def test_flamegraph_format_is_collapsed_stacks(self):
        folded = render_flamegraph(_spans())
        total = 0
        for line in folded.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack, line
            assert count.isdigit(), line
            for frame in stack.split(";"):
                assert frame and ";" not in frame and " " not in frame
            total += int(count)
        assert total == 20

    def test_flamegraph_cli_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        with open(trace, "w", encoding="utf-8") as handle:
            for span in _spans():
                handle.write(json.dumps(span) + "\n")
        out = tmp_path / "out.folded"
        code = main(
            ["profile", str(trace), "--flamegraph", str(out), "--critical-path"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "critical path" in printed
        content = out.read_text()
        assert "root;a;b 5" in content
