"""Tests for linear-form extraction."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.linear import LinearExpr, NonlinearTermError, linearize
from repro.smtlib import build, parse_term
from repro.smtlib.evaluator import evaluate
from repro.smtlib.sorts import INT, REAL


class TestLinearExpr:
    def test_arithmetic(self):
        x = LinearExpr.variable("x")
        y = LinearExpr.variable("y")
        expr = (x * 2) + (y * -3) + 5
        assert expr.constant == 5
        assert expr.coefficients == {"x": 2, "y": -3}

    def test_cancellation_removes_entries(self):
        x = LinearExpr.variable("x")
        expr = x - x
        assert expr.is_constant
        assert not expr.coefficients

    def test_scalar_zero_collapses(self):
        x = LinearExpr.variable("x")
        assert (x * 0).is_constant

    def test_evaluate(self):
        x = LinearExpr.variable("x")
        expr = x * 3 + 1
        assert expr.evaluate({"x": Fraction(2)}) == 7

    def test_neg(self):
        x = LinearExpr.variable("x")
        expr = -(x + 1)
        assert expr.constant == -1
        assert expr.coefficients == {"x": -1}


class TestLinearize:
    def test_affine_combination(self):
        term = parse_term("(+ (* 3 x) (- y 2))", {"x": INT, "y": INT})
        expr = linearize(term)
        assert expr.coefficients == {"x": 3, "y": 1}
        assert expr.constant == -2

    def test_constant_times_constant(self):
        term = parse_term("(* 3 4)", {})
        assert linearize(term).constant == 12

    def test_division_by_constant(self):
        term = parse_term("(/ x 4.0)", {"x": REAL})
        expr = linearize(term)
        assert expr.coefficients == {"x": Fraction(1, 4)}

    def test_variable_product_rejected(self):
        term = parse_term("(* x y)", {"x": INT, "y": INT})
        with pytest.raises(NonlinearTermError):
            linearize(term)

    def test_variable_divisor_rejected(self):
        term = parse_term("(/ x y)", {"x": REAL, "y": REAL})
        with pytest.raises(NonlinearTermError):
            linearize(term)

    def test_division_by_zero_rejected(self):
        term = parse_term("(/ x 0.0)", {"x": REAL})
        with pytest.raises(NonlinearTermError):
            linearize(term)

    def test_abs_rejected(self):
        term = parse_term("(abs x)", {"x": INT})
        with pytest.raises(NonlinearTermError):
            linearize(term)

    @given(
        st.integers(-9, 9),
        st.integers(-9, 9),
        st.integers(-20, 20),
        st.integers(-5, 5),
        st.integers(-5, 5),
    )
    @settings(max_examples=100)
    def test_linearize_agrees_with_evaluator(self, a, b, c, xv, yv):
        x = build.IntVar("x")
        y = build.IntVar("y")
        term = build.Add(
            build.Mul(build.IntConst(a), x),
            build.Mul(build.IntConst(b), y),
            build.IntConst(c),
        )
        expr = linearize(term)
        env = {"x": xv, "y": yv}
        assert expr.evaluate(env) == evaluate(term, env)
