"""Tests for the Table 1 registry and the LIA bound arithmetic."""

from repro.core.theory_properties import TABLE1, bits_needed, papadimitriou_bound


class TestRegistry:
    def test_four_logics(self):
        assert [entry.logic for entry in TABLE1] == [
            "QF_LIA",
            "QF_NIA",
            "QF_LRA",
            "QF_NRA",
        ]

    def test_only_lia_theoretically_bounded(self):
        bounded = [e.logic for e in TABLE1 if e.theoretically_bounded]
        assert bounded == ["QF_LIA"]

    def test_only_nia_undecidable(self):
        undecidable = [e.logic for e in TABLE1 if not e.decidable]
        assert undecidable == ["QF_NIA"]

    def test_nothing_practically_bounded(self):
        assert not any(e.practically_bounded for e in TABLE1)

    def test_notes_cite_sources(self):
        lia = TABLE1[0]
        assert "Papadimitriou" in lia.note
        nia = TABLE1[1]
        assert "Hilbert" in nia.note


class TestBoundArithmetic:
    def test_formula(self):
        # 2n(ma)^(2m+1) with n=1, m=1, a=2: 2 * 2^3 = 16.
        assert papadimitriou_bound(1, 1, 2) == 16

    def test_growth_is_exponential_in_m(self):
        small = papadimitriou_bound(3, 5, 10)
        bigger = papadimitriou_bound(3, 10, 10)
        assert bigger > small**1.5

    def test_bits_needed(self):
        assert bits_needed(1) == 2
        assert bits_needed(255) == 9
