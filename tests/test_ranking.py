"""Tests for ranking-function synthesis and nontermination arguments."""

import pytest

from repro.smtlib.evaluator import evaluate_assertions
from repro.solver import solve_script
from repro.termination.lang import parse_program
from repro.termination.interp import run_program
from repro.termination.nontermination import nontermination_constraints
from repro.termination.ranking import extract_ranking_function, ranking_constraints


def _check_ranking_on_trace(program, coefficients, constant, max_steps=200):
    """Empirically validate a synthesized ranking function on a run."""
    state = {name: 0 for name in program.variables}
    state.update(program.init)

    def rank(s):
        return constant + sum(coefficients[v] * s[v] for v in program.variables)

    steps = 0
    while program.loop.guard_holds(state) and steps < max_steps:
        next_state = program.loop.step(state)
        assert rank(state) >= 0, "boundedness violated"
        assert rank(state) - rank(next_state) >= 1, "decrease violated"
        state = next_state
        steps += 1


class TestRankingSynthesis:
    def test_countdown_has_ranking(self):
        program = parse_program("x := 30; while (x > 0) { x := x - 2; }")
        script = ranking_constraints(program, coefficient_bound=16)
        result = solve_script(script, budget=2_000_000)
        assert result.is_sat
        coefficients, constant = extract_ranking_function(program, result.model)
        _check_ranking_on_trace(program, coefficients, constant)

    def test_race_has_ranking(self):
        program = parse_program(
            "x := 0; y := 50; while (x < y) { x := x + 3; y := y - 1; }"
        )
        script = ranking_constraints(program, coefficient_bound=16)
        result = solve_script(script, budget=2_000_000)
        assert result.is_sat
        coefficients, constant = extract_ranking_function(program, result.model)
        _check_ranking_on_trace(program, coefficients, constant)

    def test_divergent_loop_has_no_ranking(self):
        program = parse_program("x := 1; while (x > 0) { x := x + 1; }")
        script = ranking_constraints(program, coefficient_bound=16)
        result = solve_script(script, budget=2_000_000)
        assert result.is_unsat

    def test_fixed_point_loop_has_no_ranking(self):
        program = parse_program("x := 5; while (x > 0) { x := x; }")
        script = ranking_constraints(program, coefficient_bound=16)
        result = solve_script(script, budget=2_000_000)
        assert result.is_unsat

    def test_aggressive_decrease_candidate_fails(self):
        # The loop only decreases by 1 per iteration; demanding a ranking
        # that drops by 8 is the typical failed candidate query.
        program = parse_program("x := 30; while (x > 0) { x := x - 1; }")
        tight = ranking_constraints(program, coefficient_bound=1, decrease=8)
        result = solve_script(tight, budget=2_000_000)
        assert result.is_unsat

    def test_queries_are_qf_lia(self):
        program = parse_program("x := 30; while (x > 0) { x := x - 2; }")
        script = ranking_constraints(program, coefficient_bound=4)
        assert script.logic == "QF_LIA"


class TestNontermination:
    def test_geometric_growth_has_argument(self):
        program = parse_program("x := 3; while (x > 0) { x := 2 * x; }")
        script = nontermination_constraints(program)
        result = solve_script(script, budget=2_000_000)
        assert result.is_sat
        # Validate the witness: lam >= 1 and the guard holds at x, x+y.
        model = result.model
        assert model["lam"] >= 1

    def test_fixed_point_has_argument(self):
        program = parse_program("x := 5; while (x > 0) { x := x; }")
        script = nontermination_constraints(program)
        result = solve_script(script, budget=2_000_000)
        assert result.is_sat

    def test_terminating_countdown_has_no_argument(self):
        program = parse_program("x := 30; while (x > 0) { x := x - 1; }")
        script = nontermination_constraints(program, magnitude_bound=8)
        result = solve_script(script, budget=2_000_000)
        assert result.is_unsat

    def test_constraints_are_nonlinear(self):
        program = parse_program("x := 3; while (x > 0) { x := 2 * x; }")
        script = nontermination_constraints(program)
        assert script.logic == "QF_NIA"

    def test_witness_certifies_nontermination(self):
        """A sat witness really does describe an infinite run."""
        program = parse_program("x := 3; while (x > 0) { x := 3 * x; }")
        script = nontermination_constraints(program)
        result = solve_script(script, budget=2_000_000)
        assert result.is_sat
        x0 = {name: result.model[f"x_{name}"] for name in program.variables}
        # Run forward: the guard must keep holding for many steps.
        state = dict(x0)
        for _ in range(20):
            assert program.loop.guard_holds(state)
            state = program.loop.step(state)

    def test_pinned_initial_state(self):
        program = parse_program("x := 3; while (x > 0) { x := 2 * x; }")
        script = nontermination_constraints(program, pin_initial=True)
        result = solve_script(script, budget=2_000_000)
        assert result.is_sat
        assert result.model["x_x"] == 3
