"""Interval arithmetic soundness properties."""

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.arith.interval import (
    EMPTY,
    Interval,
    integer_nth_root,
    nth_root_lower,
    nth_root_upper,
)


def bounded_intervals():
    return st.tuples(
        st.fractions(min_value=-50, max_value=50),
        st.fractions(min_value=-50, max_value=50),
    ).map(lambda p: Interval(min(p), max(p)))


def maybe_unbounded_intervals():
    endpoint = st.one_of(st.none(), st.fractions(min_value=-50, max_value=50))
    return st.tuples(endpoint, endpoint).map(
        lambda p: Interval(
            p[0] if p[0] is not None and (p[1] is None or p[0] <= p[1]) else p[0],
            p[1],
        )
        if not (p[0] is not None and p[1] is not None and p[0] > p[1])
        else Interval(p[1], p[0])
    )


def sample_points(interval, candidates=(-60, -5, -1, 0, 1, 5, 60)):
    points = [Fraction(c) for c in candidates if interval.contains(Fraction(c))]
    if interval.lo is not None:
        points.append(interval.lo)
    if interval.hi is not None:
        points.append(interval.hi)
    if not interval.is_empty:
        points.append(interval.midpoint())
    return points


class TestBasics:
    def test_empty_detection(self):
        assert Interval(1, 0).is_empty
        assert not Interval(0, 1).is_empty
        assert EMPTY.is_empty

    def test_point(self):
        p = Interval.point(3)
        assert p.is_point and p.contains(Fraction(3)) and not p.contains(Fraction(4))

    def test_top_contains_everything(self):
        top = Interval.top()
        assert top.contains(Fraction(10**100)) and top.contains(Fraction(-(10**100)))

    def test_width(self):
        assert Interval(1, 4).width() == 3
        assert Interval(None, 4).width() is None
        assert EMPTY.width() == 0

    def test_intersect_and_hull(self):
        a = Interval(0, 5)
        b = Interval(3, 10)
        assert a.intersect(b) == Interval(3, 5)
        assert a.hull(b) == Interval(0, 10)
        assert a.intersect(Interval(6, 7)).is_empty

    def test_intersect_with_unbounded(self):
        assert Interval.top().intersect(Interval(1, 2)) == Interval(1, 2)
        assert Interval(None, 5).intersect(Interval(3, None)) == Interval(3, 5)


class TestArithmeticSoundness:
    """Forall x in A, y in B: x op y in (A op B)."""

    @given(maybe_unbounded_intervals(), maybe_unbounded_intervals())
    @settings(max_examples=200, deadline=None)
    def test_add_sound(self, a, b):
        assume(not a.is_empty and not b.is_empty)
        result = a + b
        for x in sample_points(a):
            for y in sample_points(b):
                assert result.contains(x + y)

    @given(maybe_unbounded_intervals(), maybe_unbounded_intervals())
    @settings(max_examples=200, deadline=None)
    def test_mul_sound(self, a, b):
        assume(not a.is_empty and not b.is_empty)
        result = a * b
        for x in sample_points(a):
            for y in sample_points(b):
                assert result.contains(x * y), (a, b, x, y, result)

    @given(maybe_unbounded_intervals())
    @settings(max_examples=100, deadline=None)
    def test_neg_abs_sound(self, a):
        assume(not a.is_empty)
        negated = -a
        magnitude = a.abs()
        for x in sample_points(a):
            assert negated.contains(-x)
            assert magnitude.contains(abs(x))

    @given(maybe_unbounded_intervals(), maybe_unbounded_intervals())
    @settings(max_examples=200, deadline=None)
    def test_divide_sound(self, a, b):
        assume(not a.is_empty and not b.is_empty)
        result = a.divide(b)
        for x in sample_points(a):
            for y in sample_points(b):
                value = Fraction(0) if y == 0 else x / y
                if y == 0 and not b.is_zero_point():
                    continue  # total-division convention covered below
                assert result.contains(value)

    def test_divide_by_exact_zero_is_total(self):
        assert Interval(1, 2).divide(Interval.point(0)) == Interval.point(0)

    @given(bounded_intervals(), st.integers(2, 5))
    @settings(max_examples=150, deadline=None)
    def test_power_sound_and_precise_for_squares(self, a, n):
        assume(not a.is_empty)
        result = a.power(n)
        for x in sample_points(a):
            assert result.contains(x**n)
        if n % 2 == 0:
            assert result.lo >= 0

    def test_square_is_precise(self):
        assert Interval(-2, 3).power(2) == Interval(0, 9)

    @given(bounded_intervals(), st.integers(2, 4))
    @settings(max_examples=150, deadline=None)
    def test_root_is_preimage_sound(self, target, n):
        assume(not target.is_empty)
        preimage = target.root(n)
        for x in [Fraction(v, 2) for v in range(-12, 13)]:
            if target.contains(x**n):
                assert preimage.contains(x), (target, n, x)


class TestIntegerRefinement:
    def test_round_to_integer(self):
        assert Interval(Fraction(1, 2), Fraction(7, 2)).round_to_integer() == Interval(1, 3)
        assert Interval(Fraction(-7, 2), Fraction(-1, 2)).round_to_integer() == Interval(-3, -1)

    def test_rounding_can_empty(self):
        assert Interval(Fraction(1, 3), Fraction(2, 3)).round_to_integer().is_empty

    def test_integer_count(self):
        assert Interval(1, 3).integer_count() == 3
        assert Interval(None, 3).integer_count() is None
        assert EMPTY.integer_count() == 0

    def test_split_integer_is_partition(self):
        left, right = Interval(0, 10).split_integer()
        assert left.hi + 1 == right.lo
        assert left.lo == 0 and right.hi == 10


class TestComparisons:
    def test_certainly_le(self):
        assert Interval(0, 1).certainly_le(Interval(1, 2))
        assert not Interval(0, 2).certainly_le(Interval(1, 3))

    def test_possibly_relations(self):
        assert Interval(0, 5).possibly_lt(Interval(1, 2))
        assert not Interval(5, 6).possibly_lt(Interval(1, 2))
        assert Interval(5, 6).possibly_eq(Interval(6, 7))
        assert not Interval(5, 6).possibly_eq(Interval(7, 8))


class TestNthRoots:
    @given(st.integers(0, 10**12), st.integers(2, 6))
    @settings(max_examples=200)
    def test_integer_nth_root_exact_floor(self, value, degree):
        root = integer_nth_root(value, degree)
        assert root**degree <= value < (root + 1) ** degree

    @given(st.fractions(min_value=0, max_value=10**6), st.integers(2, 5))
    @settings(max_examples=200)
    def test_rational_root_bounds_bracket(self, value, degree):
        upper = nth_root_upper(value, degree)
        lower = nth_root_lower(value, degree)
        assert lower**degree <= value <= upper**degree

    def test_negative_odd_roots(self):
        assert nth_root_upper(Fraction(-8), 3) == -2
        assert nth_root_lower(Fraction(-8), 3) == -2
