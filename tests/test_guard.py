"""Resource governor tests: limits, degradation, and process hygiene."""

import multiprocessing

import pytest

from repro import guard, telemetry
from repro.errors import BudgetExceeded
from repro.guard import Deadline, NullGovernor, ResourceBudget
from repro.smtlib import parse_script
from repro.solver import solve_script


@pytest.fixture(autouse=True)
def telemetry_off():
    telemetry.disable()
    telemetry.get_registry().reset()
    yield
    telemetry.disable()
    telemetry.get_registry().reset()


# -- unit: the governor itself ----------------------------------------------


class TestResourceBudget:
    def test_work_ceiling(self):
        governor = ResourceBudget(work=10)
        assert governor.charge(5, "test")
        assert not governor.charge(6, "test")
        assert governor.reason == "work"
        assert governor.gave_up_layer == "test"
        assert governor.remaining_work() == 0

    def test_unlimited_never_interrupts(self):
        governor = ResourceBudget()
        assert governor.charge(10**9)
        assert not governor.interrupted("test")
        assert governor.remaining_work() is None

    def test_deadline(self):
        governor = ResourceBudget(deadline=Deadline(0))
        assert governor.interrupted("test")
        assert governor.reason == "deadline"

    def test_deadline_from_seconds(self):
        governor = ResourceBudget(deadline=3600)
        assert isinstance(governor.deadline, Deadline)
        assert not governor.interrupted("test")

    def test_cancel(self):
        governor = ResourceBudget(work=10**9)
        governor.cancel()
        assert governor.interrupted("test")
        assert governor.reason == "cancelled"

    def test_parent_propagates(self):
        parent = ResourceBudget()
        child = ResourceBudget(parent=parent)
        assert not child.interrupted("test")
        parent.cancel()
        assert child.interrupted("test")
        assert child.reason == "parent"
        assert parent.gave_up_layer == "test"

    def test_memory_ceiling(self):
        governor = ResourceBudget(max_memory=10)
        assert governor.memory_ok(10, "test")
        assert not governor.memory_ok(11, "test")
        assert governor.reason == "memory"

    def test_first_give_up_wins(self):
        governor = ResourceBudget()
        governor.note_give_up("sat", "work")
        governor.note_give_up("lia", "deadline")
        assert governor.gave_up_layer == "sat"
        assert governor.reason == "work"

    def test_give_up_counter(self):
        telemetry.enable()
        governor = ResourceBudget(work=1)
        governor.spent = 2
        governor.interrupted("sat")
        assert telemetry.snapshot().get("guard.gave_up{layer=sat,reason=work}") == 1

    def test_null_governor_is_inert(self):
        governor = NullGovernor()
        assert not governor.interrupted("test")
        assert governor.charge(10**12)
        assert governor.memory_ok(10**12)
        governor.cancel()  # still a no-op
        assert not governor.interrupted("test")

    def test_activate_nests_and_restores(self):
        assert guard.active() is guard.NULL_GOVERNOR
        outer = ResourceBudget(work=10)
        inner = ResourceBudget(work=5)
        with guard.activate(outer):
            assert guard.active() is outer
            with guard.activate(inner):
                assert guard.active() is inner
            assert guard.active() is outer
        assert guard.active() is guard.NULL_GOVERNOR

    def test_budget_exceeded_formatting(self):
        error = BudgetExceeded(150, 100, layer="simplex")
        assert error.layer == "simplex"
        assert "150" in str(error)
        unlimited = BudgetExceeded(150, None)
        assert "unlimited" in str(unlimited)


# -- the governor hierarchy: the service's tenant-eviction primitive --------


class TestGovernorHierarchy:
    """`cancel()` on a parent must interrupt every live descendant.

    The solve service parents one child budget per tenant under a global
    governor and one grandchild per request; evicting a tenant cancels
    the child and relies on every grandchild tripping cooperatively with
    a reason that propagates into the result stats.
    """

    def _family(self):
        root = ResourceBudget()
        tenant = root.child(work=1000)
        request = tenant.child(work=100)
        return root, tenant, request

    def test_cancel_root_interrupts_children_and_grandchildren(self):
        root, tenant, request = self._family()
        sibling = root.child()
        root.cancel()
        for descendant in (tenant, request, sibling):
            assert descendant.interrupted("sat")
            assert descendant.reason == "parent"
        # The root records its own reason (it was cancelled, not its parent).
        assert root.reason == "cancelled"

    def test_cancel_middle_interrupts_grandchild_not_parent(self):
        root, tenant, request = self._family()
        tenant.cancel()
        assert request.interrupted("sat")
        assert request.reason == "parent"
        assert tenant.reason in ("cancelled", "parent")
        # Cancellation flows downward only: the root keeps running.
        assert not root.interrupted("sat")
        assert root.reason is None

    def test_child_exhaustion_leaves_parent_untouched(self):
        root, tenant, request = self._family()
        request.spent = request.work_limit
        assert request.interrupted("sat")
        assert request.reason == "work"
        assert not tenant.interrupted("sat")
        assert not root.interrupted("sat")

    def test_parent_exhaustion_latches_on_every_layer(self):
        root = ResourceBudget(work=10)
        tenant = root.child()
        request = tenant.child()
        root.spent = 10
        assert request.interrupted("simplex")
        # Each budget latched the first give-up it observed.
        assert request.reason == "parent"
        assert tenant.reason == "parent"
        assert root.reason == "work"
        assert root.gave_up_layer == "simplex"

    def test_give_up_reason_reaches_result_stats(self):
        # The eviction path end-to-end: a cancelled tenant budget turns a
        # live solve into a structured unknown whose stats name the cause.
        root, tenant, request = self._family()
        tenant.cancel()
        result = solve_script(parse_script(NIA_HARD), governor=request)
        assert result.status == "unknown"
        assert result.stats.get("gave_up_reason") == "parent"
        assert result.stats.get("gave_up")

    def test_give_up_counter_fires_once_per_budget(self):
        telemetry.enable()
        root, tenant, request = self._family()
        root.cancel()
        request.interrupted("sat")
        request.interrupted("lia")  # latched: no second count
        snapshot = telemetry.snapshot()
        assert snapshot.get("guard.gave_up{layer=sat,reason=parent}") == 2
        assert snapshot.get("guard.gave_up{layer=sat,reason=cancelled}") == 1
        assert not any("layer=lia" in key for key in snapshot)

    def test_child_inherits_no_spend_and_keeps_own_ledger(self):
        root = ResourceBudget(work=100)
        root.spent = 40
        child = root.child(work=30)
        assert child.spent == 0
        assert child.remaining_work() == 30
        child.spent += 10
        assert root.remaining_work() == 60  # child spend is not parent spend


# -- integration: every engine degrades to a structured unknown -------------


BV_HARD = (
    "(set-logic QF_BV)\n"
    "(declare-fun x () (_ BitVec 16))\n"
    "(declare-fun y () (_ BitVec 16))\n"
    "(assert (= (bvmul x y) (_ bv28541 16)))\n"
    "(assert (bvult (_ bv1 16) x))\n"
    "(assert (bvult x y))\n"
    "(check-sat)\n"
)

LIA_HARD = (
    "(set-logic QF_LIA)\n"
    "(declare-fun a () Int)(declare-fun b () Int)(declare-fun c () Int)\n"
    "(assert (= (+ a (+ b c)) 10))(assert (<= a b))(assert (<= b c))\n"
    "(assert (>= (- c a) 2))\n"
    "(check-sat)\n"
)

LRA_HARD = (
    "(set-logic QF_LRA)\n"
    "(declare-fun p () Real)(declare-fun q () Real)\n"
    "(assert (= (+ p q) 10.0))(assert (< p q))(assert (> p 1.0))\n"
    "(check-sat)\n"
)

NIA_HARD = (
    "(set-logic QF_NIA)\n"
    "(declare-fun x () Int)(declare-fun y () Int)\n"
    "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))\n"
    "(check-sat)\n"
)

NRA_HARD = (
    "(set-logic QF_NRA)\n"
    "(declare-fun x () Real)(declare-fun y () Real)\n"
    "(assert (= (+ (* x x) (* y y)) 25.0))(assert (> x 0.0))(assert (< x y))\n"
    "(check-sat)\n"
)

EXHAUSTION_CASES = [
    pytest.param(BV_HARD, "zorro", id="sat-bv"),
    pytest.param(LIA_HARD, "zorro", id="simplex-lia"),
    pytest.param(LRA_HARD, "zorro", id="simplex-lra"),
    pytest.param(NIA_HARD, "zorro", id="nia-branch-prune"),
    pytest.param(NIA_HARD, "corvus", id="nia-enum"),
    pytest.param(NRA_HARD, "zorro", id="nra-icp"),
]


class TestFacadeDegradation:
    @pytest.mark.parametrize("text, profile", EXHAUSTION_CASES)
    def test_tiny_budget_returns_structured_unknown(self, text, profile):
        """BudgetExceeded never leaks through the facade; no hang."""
        script = parse_script(text)
        result = solve_script(script, budget=1, profile=profile)
        assert result.status == "unknown"
        assert isinstance(result.stats, dict)

    @pytest.mark.parametrize("text, profile", EXHAUSTION_CASES)
    def test_expired_deadline_returns_structured_unknown(self, text, profile):
        script = parse_script(text)
        governor = ResourceBudget(deadline=Deadline(0))
        result = solve_script(script, profile=profile, governor=governor)
        assert result.status == "unknown"
        assert governor.reason == "deadline"
        assert result.stats.get("gave_up") == governor.gave_up_layer
        assert result.stats.get("gave_up_reason") == "deadline"

    @pytest.mark.parametrize("text, profile", EXHAUSTION_CASES)
    def test_cancelled_governor_returns_structured_unknown(self, text, profile):
        script = parse_script(text)
        governor = ResourceBudget()
        governor.cancel()
        result = solve_script(script, profile=profile, governor=governor)
        assert result.status == "unknown"
        assert governor.reason == "cancelled"

    def test_verdicts_match_unlimited_run(self):
        """Generous budgets answer; the governor changes nothing then."""
        for text, expected in ((LIA_HARD, "sat"), (NIA_HARD, "sat")):
            script = parse_script(text)
            governor = ResourceBudget(work=10**9, deadline=3600)
            result = solve_script(script, budget=10**9, governor=governor)
            assert result.status == expected
            assert governor.gave_up_layer is None

    def test_depth_ceiling_degrades_lia(self):
        script = parse_script(LIA_HARD)
        governor = ResourceBudget(max_depth=0)
        result = solve_script(script, budget=10**9, governor=governor)
        assert result.status in ("unknown", "sat")  # depth 0: no branching

    def test_memory_ceiling_degrades_nra(self):
        script = parse_script(NRA_HARD)
        governor = ResourceBudget(max_memory=1)
        result = solve_script(script, budget=10**9, governor=governor)
        assert result.status == "unknown"
        assert governor.reason == "memory"


class TestSessionDegradation:
    """Resource exhaustion mid-session: structured unknown, the session
    stays usable, and shaped results never reach the solve cache."""

    @staticmethod
    def _planted_session(cache=None):
        from repro.smtlib import parse_term
        from repro.smtlib.sorts import bv_sort
        from repro.solver.session import Session

        decls = {"v": bv_sort(8), "w": bv_sort(8)}
        session = Session(cache=cache)
        session.assert_term(parse_term("(= (bvmul v w) (_ bv77 8))", decls))
        session.assert_term(parse_term("(bvult (_ bv1 8) v)", decls))
        session.assert_term(parse_term("(bvult v w)", decls))
        return session

    def test_tiny_budget_is_structured_unknown_then_recovers(self):
        session = self._planted_session()
        result = session.check_sat(budget=1)
        assert result.status == "unknown"
        assert isinstance(result.stats, dict)
        # Not wedged: the very next check with a real budget answers.
        assert session.check_sat(budget=None).status == "sat"

    def test_exhausted_checks_never_cached(self):
        from repro.cache import SolveCache

        store = SolveCache()
        session = self._planted_session(cache=store)
        assert session.check_sat(budget=1).status == "unknown"
        assert len(store) == 0
        assert session.check_sat().status == "sat"
        assert len(store) == 1
        warm = self._planted_session(cache=store)
        assert warm.check_sat().status == "sat"
        assert warm.counters["cache_hits"] == 1

    def test_expired_outer_deadline_mid_session(self):
        session = self._planted_session()
        governor = ResourceBudget(deadline=Deadline(0))
        with guard.activate(governor):
            result = session.check_sat()
        assert result.status == "unknown"
        assert result.stats.get("gave_up_reason") == "parent"
        assert session.check_sat().status == "sat"

    def test_cancelled_outer_governor_mid_session(self):
        from repro.cache import SolveCache

        store = SolveCache()
        session = self._planted_session(cache=store)
        governor = ResourceBudget()
        governor.cancel()
        with guard.activate(governor):
            assert session.check_sat().status == "unknown"
        assert len(store) == 0
        assert session.check_sat().status == "sat"

    def test_exhaustion_at_depth_preserves_scope_stack(self):
        from repro.smtlib import parse_term
        from repro.smtlib.sorts import bv_sort

        decls = {"v": bv_sort(8), "w": bv_sort(8)}
        session = self._planted_session()
        session.push(2)
        session.assert_term(parse_term("(bvult w (_ bv200 8))", decls))
        assert session.check_sat(budget=1).status == "unknown"
        assert session.depth == 2
        assert session.check_sat().status == "sat"
        session.pop(2)
        assert session.check_sat().status == "sat"


# -- process hygiene: the parallel race never leaks children ----------------


HARD_FACTOR = (
    "(set-logic QF_NIA)\n"
    "(declare-fun x () Int)(declare-fun y () Int)\n"
    "(assert (= (* x y) 1000003))(assert (> x 1))(assert (< x y))\n"
    "(check-sat)\n"
)


class TestParallelRaceHygiene:
    def test_wall_timeout_leaves_no_zombies(self):
        from repro.portfolio.scheduler import parallel_race
        from repro.portfolio.tasks import BaselineTask

        # Shell enumeration on a prime product grinds for hours: both
        # lanes are guaranteed to still be running at the wall timeout.
        script = parse_script(HARD_FACTOR)
        tasks = [BaselineTask("corvus"), BaselineTask("corvus")]
        outcome = parallel_race(tasks, script, budget=None, wall_timeout=0.5)
        assert outcome.status == "unknown"
        # Every worker must be terminated *and* joined on the timeout path.
        assert multiprocessing.active_children() == []

    def test_governor_deadline_bounds_the_race(self):
        from repro.portfolio.scheduler import parallel_race
        from repro.portfolio.tasks import BaselineTask

        script = parse_script(HARD_FACTOR)
        tasks = [BaselineTask("corvus")]
        governor = ResourceBudget(deadline=Deadline(0.2))
        with guard.activate(governor):
            outcome = parallel_race(tasks, script, budget=None, wall_timeout=600.0)
        assert outcome.status == "unknown"
        assert multiprocessing.active_children() == []
