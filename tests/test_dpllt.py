"""Tests for the DPLL(T) loop over boolean structure."""

import pytest

from repro.arith.nia import NiaSolver
from repro.arith.lia import LiaSolver
from repro.smtlib import parse_script
from repro.smtlib.evaluator import evaluate_assertions
from repro.solver.dpllt import solve_with_theory


def run(text, factory=LiaSolver, budget=200_000):
    script = parse_script(text)
    status, model, theory_work, sat_work = solve_with_theory(
        script, factory, budget=budget
    )
    return status, model, script


class TestConjunctions:
    def test_single_theory_call_for_conjunction(self):
        status, model, script = run(
            "(declare-fun x () Int)(assert (> x 3))(assert (< x 6))"
        )
        assert status == "sat"
        assert evaluate_assertions(script.assertions, model)


class TestDisjunctions:
    def test_simple_or(self):
        status, model, script = run(
            "(declare-fun x () Int)"
            "(assert (or (< x (- 10)) (> x 10)))(assert (>= x 0))"
        )
        assert status == "sat"
        assert model["x"] > 10

    def test_blocked_assignments_eventually_unsat(self):
        status, model, _ = run(
            "(declare-fun x () Int)"
            "(assert (or (and (> x 5) (< x 4)) (and (> x 10) (< x 9))))"
        )
        assert status == "unsat"

    def test_xor_structure(self):
        status, model, script = run(
            "(declare-fun x () Int)"
            "(assert (xor (> x 0) (> x 5)))"
        )
        # xor true requires exactly one: so 0 < x <= 5.
        assert status == "sat"
        assert 0 < model["x"] <= 5

    def test_implication_chain(self):
        status, model, script = run(
            "(declare-fun p () Bool)(declare-fun x () Int)"
            "(assert (=> p (> x 100)))(assert p)"
        )
        assert status == "sat"
        assert model["p"] is True and model["x"] > 100

    def test_boolean_only(self):
        status, model, _ = run(
            "(declare-fun p () Bool)(declare-fun q () Bool)"
            "(assert (or p q))(assert (not p))"
        )
        assert status == "sat"
        assert model["q"] is True and model["p"] is False

    def test_boolean_unsat(self):
        status, _, _ = run(
            "(declare-fun p () Bool)(assert p)(assert (not p))"
        )
        assert status == "unsat"

    def test_ite_boolean_structure(self):
        status, model, script = run(
            "(declare-fun p () Bool)(declare-fun x () Int)"
            "(assert (ite p (> x 3) (< x (- 3))))(assert (> x 0))"
        )
        assert status == "sat"
        assert evaluate_assertions(script.assertions, model)

    def test_nonlinear_atoms_with_structure(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (or (= (* x y) 12) (= (* x y) 35)))"
            "(assert (> x 3))(assert (> y 3))"
        )
        status, model, _, _ = solve_with_theory(script, NiaSolver, budget=500_000)
        assert status == "sat"
        assert model["x"] * model["y"] == 35


class TestModelCompletion:
    def test_unconstrained_variables_get_defaults(self):
        status, model, _ = run(
            "(declare-fun x () Int)(declare-fun unused () Int)"
            "(declare-fun q () Bool)(assert (> x 0))"
        )
        assert status == "sat"
        assert "unused" in model and "q" in model


class TestBudget:
    def test_theory_budget_propagates_unknown(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))"
        )
        status, _, _, _ = solve_with_theory(script, NiaSolver, budget=5)
        assert status == "unknown"
