"""Tests for the value-level fixed-point helpers, and their agreement
with the term-level transformation's circuits."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correspondence import FixedPointShape
from repro.core.transform import transform_script
from repro.fp import fixedpoint
from repro.smtlib import build, parse_script
from repro.smtlib.evaluator import evaluate
from repro.smtlib.values import BVValue

M, P = 6, 3  # a small shape for exhaustive-ish testing
WIDTH = M + P


def dyadics():
    half = 1 << (WIDTH - 1)
    return st.integers(-half, half - 1).map(lambda n: Fraction(n, 1 << P))


class TestEncodeDecode:
    @given(dyadics())
    def test_roundtrip(self, value):
        image = fixedpoint.encode(value, M, P)
        assert image is not None
        assert fixedpoint.decode(image, P) == value

    def test_unrepresentable_precision(self):
        assert fixedpoint.encode(Fraction(1, 16), M, P) is None
        assert fixedpoint.encode(Fraction(1, 10), M, P) is None

    def test_unrepresentable_magnitude(self):
        assert fixedpoint.encode(Fraction(1 << M), M, P) is None

    def test_rounding_ties_to_even(self):
        rounded, exact = fixedpoint.encode_rounded(Fraction(3, 16), M, P)
        assert not exact
        assert fixedpoint.decode(rounded, P) == Fraction(1, 4)  # ties->even

    def test_rounding_exact_flag(self):
        _, exact = fixedpoint.encode_rounded(Fraction(1, 8), M, P)
        assert exact


class TestArithmetic:
    @given(dyadics(), dyadics())
    @settings(max_examples=200)
    def test_add_exact_or_overflow(self, a, b):
        left = fixedpoint.encode(a, M, P)
        right = fixedpoint.encode(b, M, P)
        result = fixedpoint.fx_add(left, right, P)
        if result is not None:
            assert fixedpoint.decode(result, P) == a + b
        else:
            assert fixedpoint.encode(a + b, M, P) is None

    @given(dyadics(), dyadics())
    @settings(max_examples=200)
    def test_mul_truncates_toward_minus_infinity(self, a, b):
        left = fixedpoint.encode(a, M, P)
        right = fixedpoint.encode(b, M, P)
        result = fixedpoint.fx_mul(left, right, P)
        if result is None:
            return
        exact = a * b
        decoded = fixedpoint.decode(result, P)
        assert decoded <= exact < decoded + Fraction(1, 1 << P)

    @given(dyadics(), dyadics().filter(lambda v: v != 0))
    @settings(max_examples=200)
    def test_div_truncates_toward_zero(self, a, b):
        left = fixedpoint.encode(a, M, P)
        right = fixedpoint.encode(b, M, P)
        result = fixedpoint.fx_div(left, right, P)
        if result is None:
            return
        exact = a / b
        decoded = fixedpoint.decode(result, P)
        assert abs(decoded) <= abs(exact)
        assert abs(exact) - abs(decoded) < Fraction(1, 1 << P)


class TestAgreementWithCircuit:
    """The value-level helpers are the spec of the transformation's
    bitvector circuits: evaluate both on the same inputs."""

    @given(dyadics(), dyadics())
    @settings(max_examples=60, deadline=None)
    def test_mul_circuit_matches_helper(self, a, b):
        script = parse_script(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (= (* x y) 0.0))"
        )
        shape = FixedPointShape(M, P)
        result = transform_script(script, "real", shape=shape)
        # The transformed assertion's LHS is the multiply circuit; dig it
        # out and evaluate it against fx_mul.
        product_eq = result.script.assertions[0]
        circuit = product_eq.args[0]
        left = fixedpoint.encode(a, M, P)
        right = fixedpoint.encode(b, M, P)
        helper = fixedpoint.fx_mul(left, right, P)
        env = {"x": left, "y": right}
        circuit_value = evaluate(circuit, env)
        if helper is not None:
            # When no overflow occurs the circuit computes the same bits
            # (the guard would also pass; not checked here).
            assert circuit_value.signed == helper.signed
