"""Tests for the CNF container and DIMACS I/O."""

import pytest

from repro.errors import ParseError
from repro.sat.cnf import CNF, parse_dimacs, to_dimacs


class TestCNF:
    def test_new_vars_are_sequential(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.new_vars(3) == [3, 4, 5]

    def test_add_clause_tracks_num_vars(self):
        cnf = CNF()
        cnf.add_clause([1, -7])
        assert cnf.num_vars == 7

    def test_duplicate_literals_removed(self):
        cnf = CNF()
        cnf.add_clause([1, 1, 2])
        assert cnf.clauses[0] == (1, 2)

    def test_tautologies_dropped(self):
        cnf = CNF()
        cnf.add_clause([1, -1, 2])
        assert len(cnf) == 0

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([1, 0])

    def test_extend(self):
        cnf = CNF()
        cnf.extend([[1, 2], [-1, 3]])
        assert len(cnf) == 2


class TestDimacs:
    def test_roundtrip(self):
        cnf = CNF()
        cnf.extend([[1, -2], [2, 3, -4], [-3]])
        parsed = parse_dimacs(to_dimacs(cnf))
        assert parsed.clauses == cnf.clauses
        assert parsed.num_vars == cnf.num_vars

    def test_header_format(self):
        cnf = CNF()
        cnf.add_clause([1, -2])
        text = to_dimacs(cnf)
        assert text.startswith("p cnf 2 1")
        assert text.strip().endswith("1 -2 0")

    def test_comments_ignored(self):
        parsed = parse_dimacs("c a comment\np cnf 2 1\n1 -2 0\n")
        assert parsed.clauses == [(1, -2)]

    def test_multiline_clause(self):
        parsed = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert parsed.clauses == [(1, 2, 3)]

    def test_header_var_count_respected(self):
        parsed = parse_dimacs("p cnf 10 1\n1 2 0\n")
        assert parsed.num_vars == 10

    def test_malformed_header(self):
        with pytest.raises(ParseError):
            parse_dimacs("p dnf 2 1\n1 0\n")
