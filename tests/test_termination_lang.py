"""Tests for the while-language parser and interpreter."""

import pytest

from repro.errors import ParseError
from repro.termination.lang import parse_program
from repro.termination.interp import RUNNING, TERMINATED, run_program


class TestParser:
    def test_simple_countdown(self):
        program = parse_program("x := 10; while (x > 0) { x := x - 1; }")
        assert program.variables == ["x"]
        assert program.init == {"x": 10}
        assert len(program.loop.guards) == 1
        assert len(program.loop.updates) == 1

    def test_affine_updates(self):
        program = parse_program(
            "x := 5; y := 0; while (x > 0) { x := x - 1; y := y + 2 * x; }"
        )
        update = program.loop.updates[1]
        assert update.name == "y"
        assert update.coefficients == {"y": 1, "x": 2}

    def test_conjunctive_guard(self):
        program = parse_program(
            "x := 1; y := 9; while (x < y and x > 0) { x := x + 1; }"
        )
        assert len(program.loop.guards) == 2

    def test_guard_relations(self):
        program = parse_program("x := 3; while (x >= 1) { x := x - 1; }")
        assert program.loop.guards[0].relation == ">="

    def test_negative_constants(self):
        program = parse_program("x := -5; while (x < 0) { x := x + 1; }")
        assert program.init == {"x": -5}

    def test_uninitialized_variables_allowed(self):
        program = parse_program("while (x > 0) { x := x - y; }")
        assert set(program.variables) == {"x", "y"}
        assert program.init == {}

    def test_non_constant_initializer_rejected(self):
        with pytest.raises(ParseError):
            parse_program("x := y; while (x > 0) { x := x - 1; }")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_program("x == 10; while (x > 0) { }")


class TestGuardSemantics:
    def test_guard_evaluation(self):
        program = parse_program("x := 1; while (x < 5) { x := x + 1; }")
        guard = program.loop.guards[0]
        assert guard.holds({"x": 4})
        assert not guard.holds({"x": 5})

    def test_simultaneous_updates(self):
        program = parse_program(
            "x := 1; y := 2; while (x < 10) { x := y; y := x; }"
        )
        state = program.loop.step({"x": 1, "y": 2})
        # Swap semantics: both RHS read the OLD state.
        assert state == {"x": 2, "y": 1}


class TestInterpreter:
    def test_countdown_terminates(self):
        program = parse_program("x := 10; while (x > 0) { x := x - 3; }")
        outcome = run_program(program)
        assert outcome.status == TERMINATED
        assert outcome.steps == 4
        assert outcome.final_state["x"] <= 0

    def test_divergent_loop_hits_bound(self):
        program = parse_program("x := 1; while (x > 0) { x := x + 1; }")
        outcome = run_program(program, max_steps=50)
        assert outcome.status == RUNNING
        assert outcome.steps == 50

    def test_initial_overrides(self):
        program = parse_program("while (x > 0) { x := x - 1; }")
        outcome = run_program(program, initial_overrides={"x": 3})
        assert outcome.status == TERMINATED
        assert outcome.steps == 3

    def test_guard_false_initially(self):
        program = parse_program("x := 0; while (x > 0) { x := x - 1; }")
        outcome = run_program(program)
        assert outcome.status == TERMINATED and outcome.steps == 0
