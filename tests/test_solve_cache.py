"""Tests for the normalized solve cache: keys, store, facade integration."""

from fractions import Fraction

import pytest

from repro import telemetry
from repro.cache import SolveCache, activated, cache_key, canonical_text, get_cache, set_cache
from repro.cache.store import (
    decode_model,
    decode_value,
    encode_model,
    encode_value,
    entry_from_result,
    result_from_entry,
)
from repro.smtlib import build, parse_script
from repro.smtlib.script import Script
from repro.smtlib.values import BVValue
from repro.solver import solve_script
from repro.solver.result import SolveResult


@pytest.fixture(autouse=True)
def clean_state():
    set_cache(None)
    telemetry.disable()
    telemetry.get_registry().reset()
    yield
    set_cache(None)
    telemetry.disable()
    telemetry.get_registry().reset()


CUBES = (
    "(set-logic QF_NIA)\n"
    "(declare-fun x () Int)(declare-fun y () Int)\n"
    "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))\n"
    "(check-sat)\n"
)


def _script(text):
    return parse_script(text)


class TestCanonicalText:
    def test_assertion_order_is_irrelevant(self):
        a = _script(
            "(declare-fun x () Int)(assert (> x 3))(assert (< x 9))(check-sat)"
        )
        b = _script(
            "(declare-fun x () Int)(assert (< x 9))(assert (> x 3))(check-sat)"
        )
        assert canonical_text(a) == canonical_text(b)

    def test_commutative_argument_order_is_irrelevant(self):
        x, y = build.IntVar("x"), build.IntVar("y")
        a = Script.from_assertions([build.Eq(build.Add(x, y), build.IntConst(5))])
        b = Script.from_assertions([build.Eq(build.IntConst(5), build.Add(y, x))])
        assert canonical_text(a) == canonical_text(b)

    def test_duplicate_assertions_collapse(self):
        x = build.IntVar("x")
        once = Script.from_assertions([build.Gt(x, build.IntConst(3))])
        twice = Script.from_assertions(
            [build.Gt(x, build.IntConst(3)), build.Gt(x, build.IntConst(3))]
        )
        assert canonical_text(once) == canonical_text(twice)

    def test_noncommutative_order_is_preserved(self):
        x, y = build.IntVar("x"), build.IntVar("y")
        a = Script.from_assertions([build.Lt(x, y)])
        b = Script.from_assertions([build.Lt(y, x)])
        assert canonical_text(a) != canonical_text(b)

    def test_stable_under_reprinting(self):
        script = _script(CUBES)
        text = canonical_text(script)
        assert canonical_text(parse_script(text)) == text

    def test_key_discriminates_parameters(self):
        script = _script(CUBES)
        base = cache_key(script, profile="zorro", budget=1000)
        assert base == cache_key(script, profile="zorro", budget=1000)
        assert base != cache_key(script, profile="corvus", budget=1000)
        assert base != cache_key(script, profile="zorro", budget=2000)
        assert base != cache_key(script, profile="zorro", budget=1000, kind="arbitrage")
        assert base != cache_key(
            script, profile="zorro", budget=1000, extra={"strategy": "fixed8"}
        )


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [True, False, 0, -7, 10**30, Fraction(22, 7), BVValue(855, 12)],
    )
    def test_roundtrip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_model_roundtrip(self):
        model = {"x": 3, "q": Fraction(-1, 2), "v": BVValue(9, 4), "b": True}
        assert decode_model(encode_model(model)) == model

    def test_none_model(self):
        assert encode_model(None) is None
        assert decode_model(None) is None

    def test_unknown_value_raises(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_result_entry_roundtrip(self):
        result = SolveResult("sat", {"x": 7}, 123, engine="nia", stats={"conflicts": 4})
        entry = entry_from_result(result)
        back = result_from_entry(entry)
        assert back.status == "sat"
        assert back.model == {"x": 7}
        assert back.work == 123
        assert back.engine == "nia"
        assert back.stats == {"conflicts": 4}
        assert back.cached is True


class TestStore:
    def test_hit_miss_counters(self):
        cache = SolveCache()
        assert cache.get("k") is None
        cache.put("k", {"status": "sat"})
        assert cache.get("k") == {"status": "sat"}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction(self):
        cache = SolveCache(max_entries=2)
        cache.put("a", {})
        cache.put("b", {})
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", {})
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        first = SolveCache(path=path)
        first.put("k", {"status": "unsat", "work": 5})
        first.get("k")
        first.save()
        second = SolveCache(path=path)
        assert second.get("k") == {"status": "unsat", "work": 5}
        assert second.stats()["lifetime_hits"] == 2  # 1 persisted + 1 fresh

    def test_telemetry_counters_flow(self):
        telemetry.enable()
        cache = SolveCache(max_entries=1)
        cache.get("missing")
        cache.put("a", {})
        cache.put("b", {})
        cache.get("b")
        snap = telemetry.snapshot()
        assert snap["cache.miss{kind=solve}"] == 1
        assert snap["cache.hit{kind=solve}"] == 1
        assert snap["cache.eviction{kind=solve}"] == 1


class TestFacadeIntegration:
    def test_second_solve_is_served_from_cache(self):
        script = _script(CUBES)
        cache = SolveCache()
        first = solve_script(script, budget=200_000, cache=cache)
        second = solve_script(script, budget=200_000, cache=cache)
        assert not first.cached and second.cached
        assert second.status == first.status
        assert second.model == first.model
        assert second.work == first.work

    def test_permuted_script_hits_same_entry(self):
        cache = SolveCache()
        script = _script(CUBES)
        permuted = _script(
            "(set-logic QF_NIA)\n"
            "(declare-fun x () Int)(declare-fun y () Int)\n"
            "(assert (< x y))(assert (> x 1))(assert (= (* y x) 77))\n"
            "(check-sat)\n"
        )
        solve_script(script, budget=200_000, cache=cache)
        hit = solve_script(permuted, budget=200_000, cache=cache)
        assert hit.cached
        assert hit.status == "sat"

    def test_different_budget_misses(self):
        cache = SolveCache()
        script = _script(CUBES)
        solve_script(script, budget=200_000, cache=cache)
        other = solve_script(script, budget=100_000, cache=cache)
        assert not other.cached

    def test_active_cache_is_used(self):
        script = _script(CUBES)
        with activated(SolveCache()) as cache:
            assert get_cache() is cache
            solve_script(script, budget=200_000)
            assert solve_script(script, budget=200_000).cached
        assert get_cache() is None

    def test_bounded_scripts_cache_bv_models(self):
        cache = SolveCache()
        script = _script(
            "(declare-fun v () (_ BitVec 8))\n"
            "(assert (= (bvmul v (_ bv4 8)) (_ bv20 8)))\n"
            "(check-sat)\n"
        )
        first = solve_script(script, cache=cache)
        second = solve_script(script, cache=cache)
        assert second.cached
        assert second.model == first.model
        assert isinstance(second.model["v"], BVValue)

    def test_cached_result_survives_persistence(self, tmp_path):
        path = tmp_path / "cache.json"
        script = _script(CUBES)
        cache = SolveCache(path=path)
        fresh = solve_script(script, budget=200_000, cache=cache)
        cache.save()
        rehydrated = solve_script(script, budget=200_000, cache=SolveCache(path=path))
        assert rehydrated.cached
        assert rehydrated.status == fresh.status
        assert rehydrated.model == fresh.model
