"""Simplex tests: hand cases, random feasible systems, scipy agreement."""

import random
from fractions import Fraction

import numpy
import pytest
from scipy.optimize import linprog

from repro.arith.simplex import DeltaRational, Simplex, SimplexConflict
from repro.errors import BudgetExceeded


class TestDeltaRational:
    def test_ordering_is_lexicographic(self):
        assert DeltaRational(1, 0) < DeltaRational(1, 1)
        assert DeltaRational(1, 100) < DeltaRational(2, -100)
        assert DeltaRational(1, -1) < DeltaRational(1, 0)

    def test_arithmetic(self):
        a = DeltaRational(1, 1)
        b = DeltaRational(2, -1)
        assert a + b == DeltaRational(3, 0)
        assert a - b == DeltaRational(-1, 2)
        assert a.scale(3) == DeltaRational(3, 3)

    def test_hashable(self):
        assert len({DeltaRational(1, 0), DeltaRational(1, 0), DeltaRational(1, 1)}) == 2


class TestHandCases:
    def test_feasible_system(self):
        simplex = Simplex()
        simplex.assert_constraint({"x": 1, "y": 2}, ">=", 3)
        simplex.assert_constraint({"x": 1}, "<", 1)
        assert simplex.check()
        model = simplex.model()
        assert model["x"] + 2 * model["y"] >= 3
        assert model["x"] < 1

    def test_infeasible_system(self):
        simplex = Simplex()
        simplex.assert_constraint({"x": 1, "y": 1}, "<=", 1)
        simplex.assert_constraint({"x": 1}, ">=", 1)
        simplex.assert_constraint({"y": 1}, ">", 0)
        assert not simplex.check()

    def test_strict_inequalities_get_interior_point(self):
        simplex = Simplex()
        simplex.assert_constraint({"x": 1}, ">", 0)
        simplex.assert_constraint({"x": 1}, "<", 1)
        assert simplex.check()
        assert 0 < simplex.model()["x"] < 1

    def test_strict_conflict_detected(self):
        simplex = Simplex()
        simplex.assert_constraint({"x": 1}, "<", 0)
        with pytest.raises(SimplexConflict):
            simplex.assert_constraint({"x": 1}, ">=", 0)

    def test_equality_constraints(self):
        simplex = Simplex()
        simplex.assert_constraint({"x": 1, "y": 1}, "=", 10)
        simplex.assert_constraint({"x": 1, "y": -1}, "=", 4)
        assert simplex.check()
        model = simplex.model()
        assert model["x"] == 7 and model["y"] == 3

    def test_negative_coefficient_single_var_flips(self):
        simplex = Simplex()
        simplex.assert_constraint({"x": -2}, "<=", -6)  # x >= 3
        assert simplex.check()
        assert simplex.model()["x"] >= 3

    def test_shared_slack_forms(self):
        simplex = Simplex()
        simplex.assert_constraint({"x": 1, "y": 1}, "<=", 10)
        simplex.assert_constraint({"x": 1, "y": 1}, ">=", 2)
        assert simplex.check()
        total = simplex.model()["x"] + simplex.model()["y"]
        assert 2 <= total <= 10


class TestRandomFeasible:
    def test_planted_models_always_found(self):
        rng = random.Random(1)
        for trial in range(60):
            num_vars = rng.randint(2, 5)
            witness = {
                f"v{i}": Fraction(rng.randint(-10, 10), rng.randint(1, 5))
                for i in range(num_vars)
            }
            simplex = Simplex()
            constraints = []
            for _ in range(rng.randint(2, 10)):
                coefficients = {
                    f"v{i}": rng.randint(-4, 4) for i in range(num_vars)
                }
                coefficients = {k: v for k, v in coefficients.items() if v}
                if not coefficients:
                    continue
                value = sum(Fraction(c) * witness[k] for k, c in coefficients.items())
                relation = rng.choice(["<=", "<", ">=", ">", "="])
                offset = {
                    "<=": rng.randint(0, 3),
                    "<": rng.randint(1, 3),
                    ">=": -rng.randint(0, 3),
                    ">": -rng.randint(1, 3),
                    "=": 0,
                }[relation]
                simplex.assert_constraint(coefficients, relation, value + offset)
                constraints.append((coefficients, relation, value + offset))
            assert simplex.check(), trial
            model = simplex.model()
            for coefficients, relation, bound in constraints:
                lhs = sum(
                    Fraction(c) * model.get(k, Fraction(0))
                    for k, c in coefficients.items()
                )
                assert {
                    "<=": lhs <= bound,
                    "<": lhs < bound,
                    ">=": lhs >= bound,
                    ">": lhs > bound,
                    "=": lhs == bound,
                }[relation], (trial, coefficients, relation, bound)


class TestAgainstScipy:
    def test_feasibility_agrees_with_linprog(self):
        rng = random.Random(2)
        for trial in range(60):
            num_vars = rng.randint(2, 4)
            rows = []
            bounds = []
            simplex = Simplex()
            conflict = False
            for _ in range(rng.randint(2, 8)):
                coefficients = [rng.randint(-3, 3) for _ in range(num_vars)]
                bound = rng.randint(-6, 6)
                rows.append(coefficients)
                bounds.append(bound)
                try:
                    simplex.assert_constraint(
                        {f"v{i}": c for i, c in enumerate(coefficients) if c},
                        "<=",
                        bound,
                    )
                except SimplexConflict:
                    conflict = True
                    break
            ours = (not conflict) and simplex.check()
            result = linprog(
                c=[0] * num_vars,
                A_ub=numpy.array(rows),
                b_ub=numpy.array(bounds),
                bounds=[(None, None)] * num_vars,
                method="highs",
            )
            theirs = result.status != 2
            assert ours == theirs, (trial, rows, bounds)


class TestBudget:
    def test_pivot_budget_raises(self):
        simplex = Simplex(work_budget=1)
        rng = random.Random(3)
        try:
            for i in range(40):
                simplex.assert_constraint(
                    {f"v{i % 5}": 1, f"v{(i + 1) % 5}": rng.randint(1, 3)},
                    ">=",
                    rng.randint(-10, 10),
                )
                simplex.assert_constraint(
                    {f"v{i % 5}": 1, f"v{(i + 2) % 5}": -rng.randint(1, 3)},
                    "<=",
                    rng.randint(-10, 10),
                )
            simplex.check()
        except (BudgetExceeded, SimplexConflict) as error:
            assert isinstance(error, (BudgetExceeded, SimplexConflict))
