"""Bit-blaster correctness: solver answers must agree with the exact
evaluator on random constraints (brute-force over small widths)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bv.bitblast import BitBlaster
from repro.bv.solver import solve_bounded_script
from repro.sat.solver import solve_cnf
from repro.smtlib import build
from repro.smtlib.evaluator import evaluate
from repro.smtlib.script import Script
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue

WIDTH = 4

BINARY_OPS = [
    Op.BVADD, Op.BVSUB, Op.BVMUL, Op.BVAND, Op.BVOR, Op.BVXOR,
    Op.BVUDIV, Op.BVSDIV, Op.BVUREM, Op.BVSREM, Op.BVSMOD,
    Op.BVSHL, Op.BVLSHR, Op.BVASHR,
]
COMPARE_OPS = [
    Op.BVULT, Op.BVULE, Op.BVUGT, Op.BVUGE,
    Op.BVSLT, Op.BVSLE, Op.BVSGT, Op.BVSGE,
]
OVERFLOW_OPS = [
    Op.BVSADDO, Op.BVUADDO, Op.BVSSUBO, Op.BVUSUBO,
    Op.BVSMULO, Op.BVUMULO, Op.BVSDIVO,
]


def brute_force(assertion, width=WIDTH):
    """Find a model by exhaustive evaluation, or None."""
    names = sorted(assertion.variables())
    assert len(names) <= 2

    def search(index, assignment):
        if index == len(names):
            return dict(assignment) if evaluate(assertion, assignment) else None
        for value in range(1 << width):
            assignment[names[index]] = BVValue(value, width)
            found = search(index + 1, assignment)
            if found:
                return found
        return None

    return search(0, {})


def bv_terms(draw, depth):
    x = build.BitVecVar("x", WIDTH)
    y = build.BitVecVar("y", WIDTH)
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from((x, y)))
        return build.BitVecConst(draw(st.integers(0, (1 << WIDTH) - 1)), WIDTH)
    op = draw(st.sampled_from(BINARY_OPS + [Op.BVNOT, Op.BVNEG, Op.BVABS]))
    if op is Op.BVNOT:
        return build.BVNot(bv_terms(draw, depth - 1))
    if op is Op.BVNEG:
        return build.BVNeg(bv_terms(draw, depth - 1))
    if op is Op.BVABS:
        return build.BVAbs(bv_terms(draw, depth - 1))
    return build.bv_binary(op, bv_terms(draw, depth - 1), bv_terms(draw, depth - 1))


def atoms(draw):
    left = bv_terms(draw, 2)
    right = bv_terms(draw, 2)
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return build.bv_compare(draw(st.sampled_from(COMPARE_OPS)), left, right)
    if choice == 1:
        return build.bv_overflow(draw(st.sampled_from(OVERFLOW_OPS)), left, right)
    if choice == 2:
        return build.Eq(left, right)
    return build.Not(build.Eq(left, right))


class TestAgainstBruteForce:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_solver_agrees_with_exhaustive_evaluation(self, data):
        assertion = build.And(
            *[atoms(data.draw) for _ in range(data.draw(st.integers(1, 2)))]
        )
        script = Script.from_assertions([assertion])
        result = solve_bounded_script(script, max_work=5_000_000)
        expected = brute_force(assertion)
        assert (result.status == "sat") == (expected is not None)
        if result.status == "sat":
            model = {
                name: result.model[name] for name in assertion.variables()
            }
            assert evaluate(assertion, model) is True


class TestStructuralOps:
    def test_extract_concat_identity(self):
        v = build.BitVecVar("v", 8)
        recomposed = build.Concat(build.Extract(7, 4, v), build.Extract(3, 0, v))
        script = Script.from_assertions(
            [build.Not(build.Eq(recomposed, v))]
        )
        assert solve_bounded_script(script).status == "unsat"

    def test_sign_extend_preserves_signed_value(self):
        v = build.BitVecVar("v", 4)
        extended = build.SignExtend(4, v)
        # signed(v) == signed(sign_extend(v)) for all v: check one value.
        script = Script.from_assertions(
            [
                build.Eq(v, build.BitVecConst(-3, 4)),
                build.Eq(extended, build.BitVecConst(-3, 8)),
            ]
        )
        assert solve_bounded_script(script).status == "sat"

    def test_zero_extend_is_unsigned(self):
        v = build.BitVecVar("v", 4)
        script = Script.from_assertions(
            [
                build.Eq(v, build.BitVecConst(0b1111, 4)),
                build.Eq(build.ZeroExtend(4, v), build.BitVecConst(15, 8)),
            ]
        )
        assert solve_bounded_script(script).status == "sat"


class TestBooleanLayer:
    def test_bool_vars_and_structure(self):
        p = build.BoolVar("p")
        q = build.BoolVar("q")
        script = Script.from_assertions(
            [build.Xor(p, q), build.Implies(p, q)]
        )
        result = solve_bounded_script(script)
        assert result.status == "sat"
        assert result.model["p"] is False and result.model["q"] is True

    def test_ite_over_bitvectors(self):
        p = build.BoolVar("p")
        v = build.BitVecVar("v", 4)
        chosen = build.Ite(p, build.BitVecConst(3, 4), build.BitVecConst(9, 4))
        script = Script.from_assertions(
            [build.Eq(v, chosen), build.bv_compare(Op.BVUGT, v, build.BitVecConst(5, 4))]
        )
        result = solve_bounded_script(script)
        assert result.status == "sat"
        assert result.model["p"] is False
        assert result.model["v"].unsigned == 9

    def test_distinct_over_bitvectors(self):
        a = build.BitVecVar("a", 2)
        b = build.BitVecVar("b", 2)
        c = build.BitVecVar("c", 2)
        d = build.BitVecVar("d", 2)
        e = build.BitVecVar("e", 2)
        script = Script.from_assertions([build.Distinct(a, b, c, d, e)])
        # Five distinct values do not fit in 2 bits.
        assert solve_bounded_script(script).status == "unsat"


class TestGateCache:
    def test_shared_subterms_share_circuitry(self):
        x = build.BitVecVar("x", 8)
        square = build.BVMul(x, x)
        blaster = BitBlaster()
        blaster.assert_term(build.Eq(square, build.BitVecConst(49, 8)))
        size_once = len(blaster.cnf.clauses)
        blaster.assert_term(
            build.bv_compare(Op.BVULT, square, build.BitVecConst(100, 8))
        )
        # The second assertion reuses the multiplier: only the comparator
        # is added, which is far smaller than the multiplier.
        assert len(blaster.cnf.clauses) - size_once < size_once / 2

    def test_constant_bits_use_no_variables(self):
        blaster = BitBlaster()
        before = blaster.cnf.num_vars
        blaster.blast_bits(build.BitVecConst(123, 8))
        assert blaster.cnf.num_vars == before


class TestBudgets:
    def test_budget_exhaustion_gives_unknown(self):
        x = build.BitVecVar("x", 12)
        y = build.BitVecVar("y", 12)
        z = build.BitVecVar("z", 12)
        hard = build.Eq(
            build.BVMul(build.BVMul(x, y), z), build.BitVecConst(1234, 12)
        )
        script = Script.from_assertions([hard, build.Not(build.Eq(x, build.BitVecConst(1, 12)))])
        result = solve_bounded_script(script, max_work=100)
        assert result.status == "unknown"
