"""Sort-checking tests for the smart constructors."""

from fractions import Fraction

import pytest

from repro.errors import SortError
from repro.smtlib import build
from repro.smtlib.sorts import BOOL, INT, REAL, bv_sort
from repro.smtlib.terms import Op


class TestLeaves:
    def test_bool_const_interned(self):
        assert build.TRUE is build.BoolConst(True)
        assert build.FALSE is build.BoolConst(False)

    def test_real_const_stores_fraction(self):
        term = build.RealConst(Fraction(1, 3))
        assert term.value == Fraction(1, 3)
        assert term.sort is REAL

    def test_bitvec_const_wraps(self):
        term = build.BitVecConst(-1, 8)
        assert term.value.unsigned == 255

    def test_const_dispatch(self):
        assert build.Const(3, INT).sort is INT
        assert build.Const(True, BOOL) is build.TRUE
        assert build.Const(5, bv_sort(4)).sort is bv_sort(4)

    def test_empty_variable_name_rejected(self):
        with pytest.raises(SortError):
            build.Var("", INT)


class TestBooleanStructure:
    def test_and_flattens(self):
        p, q, r = build.BoolVar("p"), build.BoolVar("q"), build.BoolVar("r")
        nested = build.And(build.And(p, q), r)
        assert nested.op is Op.AND
        assert len(nested.args) == 3

    def test_and_of_one_is_identity(self):
        p = build.BoolVar("p")
        assert build.And(p) is p

    def test_empty_and_or(self):
        assert build.And() is build.TRUE
        assert build.Or() is build.FALSE

    def test_not_requires_bool(self):
        with pytest.raises(SortError):
            build.Not(build.IntConst(1))

    def test_ite_branch_sorts_must_match(self):
        with pytest.raises(SortError):
            build.Ite(build.TRUE, build.IntConst(1), build.RealConst(1))

    def test_eq_requires_same_sort(self):
        with pytest.raises(SortError):
            build.Eq(build.IntConst(1), build.RealConst(1))

    def test_distinct_needs_two_args(self):
        with pytest.raises(SortError):
            build.Distinct(build.IntConst(1))


class TestArithmetic:
    def test_add_requires_numeric(self):
        with pytest.raises(SortError):
            build.Add(build.TRUE, build.FALSE)

    def test_no_mixed_int_real(self):
        with pytest.raises(SortError):
            build.Add(build.IntConst(1), build.RealConst(1))

    def test_abs_is_integer_only(self):
        with pytest.raises(SortError):
            build.Abs(build.RealConst(1))

    def test_real_div_requires_reals(self):
        with pytest.raises(SortError):
            build.RealDiv(build.IntConst(1), build.IntConst(2))

    def test_comparison_builds_bool(self):
        term = build.Lt(build.IntConst(1), build.IntConst(2))
        assert term.sort is BOOL

    def test_to_real_to_int(self):
        x = build.IntVar("x")
        assert build.ToReal(x).sort is REAL
        assert build.ToInt(build.ToReal(x)).sort is INT


class TestBitvectors:
    def test_width_mismatch_rejected(self):
        a = build.BitVecVar("a", 8)
        b = build.BitVecVar("b", 9)
        with pytest.raises(SortError):
            build.BVAdd(a, b)

    def test_concat_widths_add(self):
        a = build.BitVecVar("a", 3)
        b = build.BitVecVar("b", 5)
        assert build.Concat(a, b).sort.width == 8

    def test_extract_bounds_checked(self):
        a = build.BitVecVar("a", 8)
        with pytest.raises(SortError):
            build.Extract(8, 0, a)
        with pytest.raises(SortError):
            build.Extract(3, 5, a)

    def test_zero_extend_zero_is_identity(self):
        a = build.BitVecVar("a", 8)
        assert build.ZeroExtend(0, a) is a

    def test_extends_change_width(self):
        a = build.BitVecVar("a", 8)
        assert build.ZeroExtend(4, a).sort.width == 12
        assert build.SignExtend(4, a).sort.width == 12

    def test_comparison_is_bool(self):
        a = build.BitVecVar("a", 8)
        assert build.bv_compare(Op.BVULT, a, a).sort is BOOL

    def test_overflow_predicate_is_bool(self):
        a = build.BitVecVar("a", 8)
        assert build.bv_overflow(Op.BVSMULO, a, a).sort is BOOL

    def test_wrong_op_kind_rejected(self):
        a = build.BitVecVar("a", 8)
        with pytest.raises(SortError):
            build.bv_binary(Op.BVULT, a, a)
        with pytest.raises(SortError):
            build.bv_compare(Op.BVADD, a, a)


class TestFloatingPoint:
    def test_fp_binary_requires_matching_sorts(self):
        a = build.FPVar("a", 8, 24)
        b = build.FPVar("b", 11, 53)
        with pytest.raises(SortError):
            build.fp_binary(Op.FP_ADD, a, b)

    def test_fp_compare_is_bool(self):
        a = build.FPVar("a", 8, 24)
        assert build.fp_compare(Op.FP_LT, a, a).sort is BOOL
