"""Printer tests, including the parse(print(t)) round-trip property."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.smtlib import build, parse_script, parse_term, print_script, print_term
from repro.smtlib.script import Script
from repro.smtlib.sorts import INT, REAL, bv_sort
from repro.smtlib.terms import Op


class TestLiterals:
    def test_positive_int(self):
        assert print_term(build.IntConst(42)) == "42"

    def test_negative_int(self):
        assert print_term(build.IntConst(-5)) == "(- 5)"

    def test_real_whole(self):
        assert print_term(build.RealConst(3)) == "3.0"

    def test_real_fraction(self):
        assert print_term(build.RealConst(Fraction(9, 4))) == "(/ 9.0 4.0)"

    def test_negative_real(self):
        assert print_term(build.RealConst(Fraction(-1, 2))) == "(- (/ 1.0 2.0))"

    def test_bv_literal(self):
        assert print_term(build.BitVecConst(855, 12)) == "(_ bv855 12)"

    def test_booleans(self):
        assert print_term(build.TRUE) == "true"
        assert print_term(build.FALSE) == "false"


class TestApplications:
    def test_nested_application(self):
        x = build.IntVar("x")
        term = build.Eq(build.Mul(x, x), build.IntConst(4))
        assert print_term(term) == "(= (* x x) 4)"

    def test_extract_spelling(self):
        v = build.BitVecVar("v", 8)
        assert print_term(build.Extract(7, 4, v)) == "((_ extract 7 4) v)"

    def test_zero_extend_spelling(self):
        v = build.BitVecVar("v", 8)
        assert print_term(build.ZeroExtend(4, v)) == "((_ zero_extend 4) v)"

    def test_fp_arith_includes_rounding_mode(self):
        a = build.FPVar("a", 8, 24)
        assert print_term(build.fp_binary(Op.FP_ADD, a, a)) == "(fp.add RNE a a)"

    def test_neg_prints_as_unary_minus(self):
        x = build.IntVar("x")
        assert print_term(build.Neg(x)) == "(- x)"


class TestScriptPrinting:
    def test_full_script(self):
        x = build.IntVar("x")
        script = Script.from_assertions([build.Gt(x, build.IntConst(3))], logic="QF_LIA")
        text = print_script(script)
        assert "(set-logic QF_LIA)" in text
        assert "(declare-fun x () Int)" in text
        assert "(assert (> x 3))" in text
        assert text.rstrip().endswith("(check-sat)")


# ---------------------------------------------------------------------------
# Round-trip property: parse(print(t)) is t (hash-consed identity)
# ---------------------------------------------------------------------------


def int_terms(max_depth=4):
    leaves = st.one_of(
        st.integers(-1000, 1000).map(build.IntConst),
        st.sampled_from(["x", "y", "z"]).map(build.IntVar),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: build.Add(p[0], p[1])),
            st.tuples(children, children).map(lambda p: build.Sub(p[0], p[1])),
            st.tuples(children, children).map(lambda p: build.Mul(p[0], p[1])),
            children.map(build.Neg),
            children.map(build.Abs),
        )

    return st.recursive(leaves, extend, max_leaves=10)


def bool_terms():
    def atoms():
        pair = st.tuples(int_terms(), int_terms())
        return st.one_of(
            pair.map(lambda p: build.Lt(p[0], p[1])),
            pair.map(lambda p: build.Le(p[0], p[1])),
            pair.map(lambda p: build.Eq(p[0], p[1])),
        )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: build.And(p[0], p[1])),
            st.tuples(children, children).map(lambda p: build.Or(p[0], p[1])),
            children.map(build.Not),
            st.tuples(children, children).map(lambda p: build.Implies(p[0], p[1])),
        )

    return st.recursive(atoms(), extend, max_leaves=8)


class TestRoundTrip:
    @given(bool_terms())
    @settings(max_examples=150, deadline=None)
    def test_parse_print_roundtrip_is_identity(self, term):
        declarations = {name: INT for name in term.variables()}
        reparsed = parse_term(print_term(term), declarations)
        assert reparsed is term

    @given(st.integers(-(10**9), 10**9))
    def test_int_literal_roundtrip(self, value):
        declarations = {}
        assert parse_term(print_term(build.IntConst(value)), declarations).value == value

    @given(st.fractions(min_value=-1000, max_value=1000))
    def test_real_literal_roundtrip_semantics(self, value):
        term = build.RealConst(value)
        reparsed = parse_term(print_term(term), {})
        from repro.smtlib.evaluator import evaluate

        assert evaluate(reparsed, {}) == Fraction(value)

    def test_script_roundtrip(self):
        source = (
            "(set-logic QF_NIA)"
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (+ (* x x x) (* y y y)) 855))"
            "(assert (distinct x y))"
            "(check-sat)"
        )
        script = parse_script(source)
        reparsed = parse_script(print_script(script))
        assert reparsed.assertions == script.assertions
        assert reparsed.declarations == script.declarations

    def test_incremental_script_roundtrip_preserves_command_stream(self):
        source = (
            "(set-logic QF_LIA)\n"
            "(declare-fun x () Int)\n"
            "(assert (> x 0))\n"
            "(check-sat)\n"
            "(push 1)\n"
            "(assert (< x 0))\n"
            "(check-sat)\n"
            "(pop 1)\n"
            "(push 2)\n"
            "(assert (= x 7))\n"
            "(check-sat)\n"
            "(pop 2)\n"
            "(reset-assertions)\n"
            "(check-sat)\n"
        )
        script = parse_script(source)
        printed = print_script(script)
        reparsed = parse_script(printed)
        assert [c.name for c in reparsed.commands] == [
            c.name for c in script.commands
        ]
        for mine, theirs in zip(script.commands, reparsed.commands):
            if mine.name in ("push", "pop"):
                assert mine.args[0] == theirs.args[0]
            elif mine.name == "assert":
                assert mine.args[0] is theirs.args[0]
        # The printed form is a fixed point: print(parse(print(s))) == print(s).
        assert print_script(reparsed) == printed

    def test_incremental_roundtrip_keeps_declarations_and_logic(self):
        source = (
            "(push 1)(declare-fun b () Bool)(assert b)(check-sat)(pop 1)"
            "(check-sat)"
        )
        script = parse_script(source)
        reparsed = parse_script(print_script(script))
        assert reparsed.declarations == script.declarations
        assert reparsed.logic == script.logic
