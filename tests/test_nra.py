"""Tests for the NRA ICP engine and the simplest-rational search."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.contractor import split_conjunction
from repro.arith.nra import NraSolver, simplest_rational_between, solve_nra_conjunction
from repro.smtlib import parse_script
from repro.smtlib.evaluator import evaluate_assertions


def prepared(text):
    script = parse_script(text)
    return split_conjunction(script.conjunction()), script


class TestSimplestRational:
    def test_includes_integers(self):
        assert simplest_rational_between(Fraction(5, 2), Fraction(7, 2)) == 3

    def test_zero_when_straddling(self):
        assert simplest_rational_between(Fraction(-1, 3), Fraction(1, 7)) == 0

    def test_half(self):
        assert simplest_rational_between(Fraction(2, 5), Fraction(3, 5)) == Fraction(1, 2)

    def test_classic_stern_brocot(self):
        assert simplest_rational_between(Fraction(2, 7), Fraction(1, 3)) == Fraction(1, 3)

    def test_negative_range(self):
        assert simplest_rational_between(Fraction(-5, 3), Fraction(-3, 2)) == Fraction(-3, 2)

    def test_point_interval(self):
        assert simplest_rational_between(Fraction(7, 13), Fraction(7, 13)) == Fraction(7, 13)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            simplest_rational_between(Fraction(2), Fraction(1))

    @given(
        st.fractions(min_value=-100, max_value=100, max_denominator=50),
        st.fractions(min_value=0, max_value=10, max_denominator=50).filter(
            lambda f: f > 0
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_result_in_interval_with_minimal_denominator(self, lo, width):
        hi = lo + width
        result = simplest_rational_between(lo, hi)
        assert lo <= result <= hi
        # No rational with a smaller denominator lies in the interval.
        for denominator in range(1, result.denominator):
            low_num = -((-lo.numerator * denominator) // lo.denominator)  # ceil
            if Fraction(low_num, denominator) <= hi:
                pytest.fail(
                    f"{Fraction(low_num, denominator)} is simpler than {result}"
                )


class TestSolver:
    def test_dyadic_square_root(self):
        literals, script = prepared(
            "(declare-fun x () Real)"
            "(assert (= (* x x) (/ 9.0 4.0)))(assert (> x 0.0))"
        )
        result = solve_nra_conjunction(literals, script.declarations, budget=2_000_000)
        assert result.status == "sat"
        assert result.model["x"] == Fraction(3, 2)

    def test_linear_real_system(self):
        literals, script = prepared(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (< (+ (* x y) x) 3.0))(assert (> x 1.0))(assert (> y 1.0))"
        )
        result = solve_nra_conjunction(literals, script.declarations, budget=2_000_000)
        assert result.status == "sat"
        assert evaluate_assertions(script.assertions, result.model)

    def test_irrational_root_is_unknown(self):
        literals, script = prepared(
            "(declare-fun x () Real)(assert (= (* x x) 2.0))"
        )
        result = solve_nra_conjunction(literals, script.declarations, budget=500_000)
        assert result.status == "unknown"

    def test_negative_square_unsat(self):
        literals, script = prepared(
            "(declare-fun x () Real)(assert (< (* x x) 0.0))"
        )
        result = solve_nra_conjunction(literals, script.declarations, budget=100_000)
        assert result.status == "unsat"

    def test_empty_linear_band_unsat(self):
        literals, script = prepared(
            "(declare-fun x () Real)"
            "(assert (> x 1.0))(assert (< x 1.0))"
        )
        result = solve_nra_conjunction(literals, script.declarations, budget=100_000)
        assert result.status == "unsat"

    def test_coupled_product_sum(self):
        literals, script = prepared(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (= (* x y) 8.75))(assert (= (+ x y) 6.75))"
            "(assert (>= x 0.0))(assert (>= y 0.0))"
        )
        result = solve_nra_conjunction(literals, script.declarations, budget=5_000_000)
        assert result.status == "sat"
        assert evaluate_assertions(script.assertions, result.model)

    def test_budget_respected(self):
        literals, script = prepared(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (= (+ (* x x) (* y y)) 10.0))(assert (> (* x y) 2.0))"
        )
        result = solve_nra_conjunction(literals, script.declarations, budget=100)
        assert result.status in ("unknown", "sat")
        assert result.work <= 100 * 20  # budget respected within one round

    def test_ground(self):
        literals, script = prepared("(assert (< 1.0 2.0))")
        result = solve_nra_conjunction(literals, script.declarations)
        assert result.status == "sat"
