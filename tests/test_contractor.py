"""Contractor soundness: contraction must never drop a solution."""

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.arith.contractor import (
    Atom,
    Box,
    Contractor,
    EQ,
    GE,
    GT,
    LE,
    LT,
    NE,
    literals_to_atoms,
    split_conjunction,
)
from repro.arith.interval import Interval
from repro.smtlib import build, parse_term
from repro.smtlib.evaluator import evaluate
from repro.smtlib.sorts import INT


class TestSplitConjunction:
    def test_flattens_nested_ands(self):
        p, q, r = build.BoolVar("p"), build.BoolVar("q"), build.BoolVar("r")
        literals = split_conjunction(build.And(build.And(p, q), r))
        assert set(literals) == {p, q, r}

    def test_non_and_is_single_literal(self):
        p = build.BoolVar("p")
        assert split_conjunction(build.Not(p)) == [build.Not(p)]


class TestLiteralsToAtoms:
    def test_negation_flips_relation(self):
        x = build.IntVar("x")
        literal = build.Not(build.Le(x, build.IntConst(3)))
        atoms, residual = literals_to_atoms([literal])
        assert not residual
        assert atoms[0].relation == GT

    def test_double_negation(self):
        x = build.IntVar("x")
        literal = build.Not(build.Not(build.Lt(x, build.IntConst(3))))
        atoms, _ = literals_to_atoms([literal])
        assert atoms[0].relation == LT

    def test_negated_equality_becomes_ne(self):
        x = build.IntVar("x")
        literal = build.Not(build.Eq(x, build.IntConst(3)))
        atoms, _ = literals_to_atoms([literal])
        assert atoms[0].relation == NE

    def test_distinct_expands_pairwise(self):
        a, b, c = (build.IntVar(n) for n in "abc")
        atoms, residual = literals_to_atoms([build.Distinct(a, b, c)])
        assert not residual
        assert len(atoms) == 3
        assert all(atom.relation == NE for atom in atoms)

    def test_boolean_literals_are_residual(self):
        p = build.BoolVar("p")
        atoms, residual = literals_to_atoms([p])
        assert not atoms and residual == [p]

    def test_true_literal_dropped(self):
        atoms, residual = literals_to_atoms([build.TRUE])
        assert not atoms and not residual


def _int_box(names, lo=-20, hi=20):
    return Box({name: Interval(lo, hi) for name in names})


def _solutions(literals, names, lo=-10, hi=10):
    """All integer solutions by brute force."""
    solutions = []

    def recurse(index, assignment):
        if index == len(names):
            if all(evaluate(lit, assignment) for lit in literals):
                solutions.append(dict(assignment))
            return
        for value in range(lo, hi + 1):
            assignment[names[index]] = value
            recurse(index + 1, assignment)

    recurse(0, {})
    return solutions


class TestContractionSoundness:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_no_solution_lost(self, data):
        x = build.IntVar("x")
        y = build.IntVar("y")
        terms = {
            "x": x,
            "y": y,
            "x+y": build.Add(x, y),
            "x*y": build.Mul(x, y),
            "x*x": build.Mul(x, x),
            "x-y": build.Sub(x, y),
            "-x": build.Neg(x),
            "|y|": build.Abs(y),
        }
        literals = []
        for _ in range(data.draw(st.integers(1, 3))):
            left = terms[data.draw(st.sampled_from(sorted(terms)))]
            constant = build.IntConst(data.draw(st.integers(-15, 15)))
            op = data.draw(st.sampled_from(["le", "lt", "ge", "gt", "eq"]))
            builder = {
                "le": build.Le,
                "lt": build.Lt,
                "ge": build.Ge,
                "gt": build.Gt,
                "eq": build.Eq,
            }[op]
            literals.append(builder(left, constant))
        atoms, residual = literals_to_atoms(literals)
        assert not residual
        contractor = Contractor(atoms)
        box = _int_box(["x", "y"], -10, 10)
        contracted = contractor.contract(box)
        solutions = _solutions(literals, ["x", "y"])
        if contracted is None:
            assert not solutions, (literals, solutions)
        else:
            for solution in solutions:
                for name, value in solution.items():
                    assert contracted.get(name).contains(Fraction(value)), (
                        literals,
                        solution,
                        contracted,
                    )

    def test_square_nonnegativity_derived(self):
        x = build.IntVar("x")
        literal = build.Lt(build.Mul(x, x), build.IntConst(0))
        atoms, _ = literals_to_atoms([literal])
        contractor = Contractor(atoms)
        assert contractor.contract(Box({"x": Interval.top()})) is None

    def test_equality_narrows_both_sides(self):
        x = build.IntVar("x")
        literal = build.Eq(build.Mul(x, x), build.IntConst(49))
        atoms, _ = literals_to_atoms([literal])
        contractor = Contractor(atoms)
        contracted = contractor.contract(Box({"x": Interval.top()}))
        interval = contracted.get("x")
        assert interval.contains(Fraction(7)) and interval.contains(Fraction(-7))
        assert not interval.contains(Fraction(8))

    def test_linear_chain_propagates(self):
        x = build.IntVar("x")
        y = build.IntVar("y")
        literals = [
            build.Ge(x, build.IntConst(5)),
            build.Le(build.Add(x, y), build.IntConst(7)),
        ]
        atoms, _ = literals_to_atoms(literals)
        contracted = Contractor(atoms).contract(
            Box({"x": Interval.top(), "y": Interval.top()})
        )
        assert contracted.get("y").hi <= 2

    def test_strict_integer_narrowing(self):
        x = build.IntVar("x")
        y = build.IntVar("y")
        literals = [build.Lt(x, y), build.Lt(y, build.IntConst(3))]
        atoms, _ = literals_to_atoms(literals)
        contracted = Contractor(atoms).contract(
            Box({"x": Interval(0, 10), "y": Interval(0, 10)})
        )
        assert contracted.get("y").hi <= 2
        assert contracted.get("x").hi <= 1

    def test_certain_violation_detected(self):
        x = build.IntVar("x")
        literals = [build.Ge(x, build.IntConst(5)), build.Le(x, build.IntConst(2))]
        atoms, _ = literals_to_atoms(literals)
        assert Contractor(atoms).contract(Box({"x": Interval.top()})) is None


class TestBox:
    def test_widest_variable_prefers_unbounded(self):
        box = Box({"a": Interval(0, 100), "b": Interval.top()})
        assert box.widest_variable() == "b"

    def test_widest_skips_points(self):
        box = Box({"a": Interval.point(3), "b": Interval(0, 1)})
        assert box.widest_variable() == "b"

    def test_all_points_gives_none(self):
        box = Box({"a": Interval.point(3)})
        assert box.widest_variable() is None

    def test_volume_bound(self):
        box = Box({"a": Interval(0, 3), "b": Interval(0, 3)})
        assert box.volume_bound(100) == 16
        assert box.volume_bound(10) is None
        assert Box({"a": Interval.top()}).volume_bound(10) is None


class TestBackwardRules:
    """Direct checks of individual backward-narrowing rules."""

    def test_backward_subtraction(self):
        x = build.IntVar("x")
        y = build.IntVar("y")
        literals = [build.Eq(build.Sub(x, y), build.IntConst(5)),
                    build.Ge(y, build.IntConst(10)),
                    build.Le(y, build.IntConst(12))]
        atoms, _ = literals_to_atoms(literals)
        contracted = Contractor(atoms).contract(
            Box({"x": Interval.top(), "y": Interval.top()})
        )
        assert contracted.get("x").lo == 15
        assert contracted.get("x").hi == 17

    def test_backward_negation(self):
        x = build.IntVar("x")
        literals = [build.Le(build.Neg(x), build.IntConst(-7))]
        atoms, _ = literals_to_atoms(literals)
        contracted = Contractor(atoms).contract(Box({"x": Interval.top()}))
        assert contracted.get("x").lo == 7

    def test_backward_abs_with_known_sign(self):
        x = build.IntVar("x")
        literals = [
            build.Le(build.Abs(x), build.IntConst(9)),
            build.Le(x, build.IntConst(-1)),
        ]
        atoms, _ = literals_to_atoms(literals)
        contracted = Contractor(atoms).contract(Box({"x": Interval.top()}))
        assert contracted.get("x").lo == -9

    def test_backward_cube_root(self):
        x = build.IntVar("x")
        # Power grouping requires a flat n-ary product (x * x * x); the
        # nested Mul(Mul(x, x), x) form narrows less (conservatively).
        cube = build.Mul(x, x, x)
        literals = [build.Eq(cube, build.IntConst(343))]
        atoms, _ = literals_to_atoms(literals)
        contracted = Contractor(atoms).contract(Box({"x": Interval.top()}))
        # Odd roots narrow both sides: only x = 7 remains possible.
        interval = contracted.get("x")
        assert interval.contains(Fraction(7))
        assert interval.lo is not None and interval.hi is not None

    def test_backward_product_zero_factor_is_unconstrained(self):
        # Regression: (x - 2) * (x - 1) = 0 on x in [15/8, 17/8]. Once the
        # first factor narrows to {0}, the inverse-multiplication rule for
        # the second factor must NOT use total-division semantics (0/0 = 0)
        # -- the factor is unconstrained, and x = 2 must survive.
        x = build.RealVar("x")
        product = build.Mul(
            build.Sub(x, build.RealConst(2)), build.Sub(x, build.RealConst(1))
        )
        atoms, _ = literals_to_atoms([build.Eq(product, build.RealConst(0))])
        contracted = Contractor(atoms).contract(
            Box({"x": Interval(Fraction(15, 8), Fraction(17, 8))})
        )
        assert contracted is not None
        assert contracted.get("x").contains(Fraction(2))

    def test_forward_mod_range(self):
        x = build.IntVar("x")
        y = build.IntVar("y")
        from repro.smtlib.builders import Mod, IntConst
        literals = [
            build.Ge(Mod(x, IntConst(7)), build.IntConst(0)),
            build.Eq(y, Mod(x, IntConst(7))),
        ]
        atoms, _ = literals_to_atoms(literals)
        contracted = Contractor(atoms).contract(
            Box({"x": Interval(-100, 100), "y": Interval.top()})
        )
        assert contracted.get("y").hi <= 6

    def test_forward_division_conservative(self):
        x = build.IntVar("x")
        y = build.IntVar("y")
        from repro.smtlib.builders import IntDiv
        literals = [
            build.Eq(y, IntDiv(x, build.IntConst(3))),
            build.Ge(x, build.IntConst(9)),
            build.Le(x, build.IntConst(12)),
        ]
        atoms, _ = literals_to_atoms(literals)
        contracted = Contractor(atoms).contract(
            Box({"x": Interval.top(), "y": Interval.top()})
        )
        # Conservative: y must at least include [3, 4].
        assert contracted.get("y").contains(Fraction(3))
        assert contracted.get("y").contains(Fraction(4))
