"""Edge-case grab bag across layers.

Small, deterministic checks for corners that the property tests reach
only probabilistically: extreme widths, empty structures, boundary
constants, and operator corner semantics.
"""

from fractions import Fraction

import pytest

from repro.errors import SmtLibError
from repro.smtlib import build, parse_script, parse_term, print_term
from repro.smtlib.evaluator import evaluate
from repro.smtlib.script import Script
from repro.smtlib.sorts import INT, bv_sort
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue


class TestWidthOne:
    def test_width_one_bitvector_semantics(self):
        one = build.BitVecConst(1, 1)
        zero = build.BitVecConst(0, 1)
        assert evaluate(build.BVAdd(one, one), {}).unsigned == 0  # wraps
        assert evaluate(build.bv_compare(Op.BVSLT, one, zero), {}) is True
        # In width 1, 1 is signed -1.
        assert BVValue(1, 1).signed == -1

    def test_width_one_solving(self):
        from repro.bv.solver import solve_bounded_script

        v = build.BitVecVar("v", 1)
        script = Script.from_assertions(
            [build.Eq(build.BVAdd(v, v), build.BitVecConst(0, 1))]
        )
        assert solve_bounded_script(script).status == "sat"


class TestBoundaryConstants:
    def test_int_min_style_constants(self):
        # -2^(w-1) is representable; its negation overflows.
        term = build.bv_overflow(
            Op.BVSMULO, build.BitVecConst(-8, 4), build.BitVecConst(-1, 4)
        )
        assert evaluate(term, {}) is True

    def test_abs_of_int_min_overflow_predicate(self):
        term = build.BVNegO(build.BitVecConst(-8, 4))
        assert evaluate(term, {}) is True
        term = build.BVNegO(build.BitVecConst(7, 4))
        assert evaluate(term, {}) is False

    def test_transform_accepts_boundary_constant(self):
        from repro.core.transform import transform_script

        script = parse_script("(declare-fun x () Int)(assert (> x (- 128)))")
        result = transform_script(script, "int", width=8)
        constants = [
            c.value.signed
            for a in result.script.assertions
            for c in a.constants()
            if hasattr(c.value, "signed")
        ]
        assert -128 in constants


class TestChainedOperators:
    def test_xor_chain_parity(self):
        p = [build.BoolVar(f"p{i}") for i in range(5)]
        term = build.Xor(*p)
        env_even = {f"p{i}": i < 2 for i in range(5)}
        env_odd = {f"p{i}": i < 3 for i in range(5)}
        assert evaluate(term, env_even) is False
        assert evaluate(term, env_odd) is True

    def test_nary_subtraction_left_fold(self):
        term = parse_term("(- 10 3 2)", {})
        assert evaluate(term, {}) == 5

    def test_nary_division_chain(self):
        declarations = {"a": bv_sort(8)}
        term = parse_term("(bvadd a a a)", declarations)
        assert evaluate(term, {"a": BVValue(5, 8)}).unsigned == 15


class TestScriptEdges:
    def test_empty_script_is_trivially_sat(self):
        from repro.solver import solve_script

        script = Script(logic="QF_LIA")
        result = solve_script(script, budget=10_000)
        assert result.is_sat

    def test_duplicate_assertions_are_kept(self):
        x = build.IntVar("x")
        assertion = build.Gt(x, build.IntConst(0))
        script = Script.from_assertions([assertion, assertion])
        assert len(script.assertions) == 2

    def test_conjunction_of_shared_assertions(self):
        x = build.IntVar("x")
        a = build.Gt(x, build.IntConst(0))
        script = Script.from_assertions([a, a])
        # And() flattens duplicates structurally but keeps both operands.
        assert evaluate(script.conjunction(), {"x": 1}) is True


class TestPrinterEdges:
    def test_deeply_nested_neg(self):
        x = build.IntVar("x")
        term = build.Neg(build.Neg(x))
        text = print_term(term)
        assert text == "(- (- x))"

    def test_zero_constants(self):
        assert print_term(build.IntConst(0)) == "0"
        assert print_term(build.RealConst(0)) == "0.0"
        assert print_term(build.BitVecConst(0, 4)) == "(_ bv0 4)"

    def test_fraction_with_negative_numerator(self):
        text = print_term(build.RealConst(Fraction(-3, 4)))
        assert text == "(- (/ 3.0 4.0))"
        reparsed = parse_term(text, {})
        assert evaluate(reparsed, {}) == Fraction(-3, 4)


class TestEvaluatorTotality:
    def test_int_div_by_zero_convention(self):
        term = parse_term("(div 7 0)", {})
        assert evaluate(term, {}) == 0
        term = parse_term("(mod 7 0)", {})
        assert evaluate(term, {}) == 7

    def test_bv_division_conventions_match_smtlib(self):
        a = build.BitVecConst(5, 8)
        zero = build.BitVecConst(0, 8)
        assert evaluate(build.bv_binary(Op.BVSDIV, a, zero), {}).signed == -1
        negative = build.BitVecConst(-5, 8)
        assert evaluate(build.bv_binary(Op.BVSDIV, negative, zero), {}).signed == 1

    def test_ite_evaluates_both_branches_safely(self):
        # Total semantics mean the untaken division branch cannot fault.
        term = parse_term(
            "(ite (> y 0) (div x y) 0)", {"x": INT, "y": INT}
        )
        assert evaluate(term, {"x": 10, "y": 0}) == 0
