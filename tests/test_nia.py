"""Tests for the branch-and-prune NIA engine (and its enum twin)."""

import pytest

from repro.arith.contractor import split_conjunction
from repro.arith.nia import NiaSolver, solve_nia_conjunction
from repro.arith.nia_enum import NiaEnumSolver, solve_nia_enum_conjunction
from repro.errors import UnsupportedLogicError
from repro.smtlib import parse_script
from repro.smtlib.evaluator import evaluate_assertions


def prepared(text):
    script = parse_script(text)
    return split_conjunction(script.conjunction()), script


class TestBranchAndPrune:
    def test_motivating_cubes(self):
        literals, script = prepared(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))"
        )
        result = solve_nia_conjunction(literals, script.declarations, budget=5_000_000)
        assert result.status == "sat"
        assert evaluate_assertions(script.assertions, result.model)

    def test_square_negative_unsat(self):
        literals, script = prepared(
            "(declare-fun x () Int)(assert (= (* x x) (- 1)))"
        )
        result = solve_nia_conjunction(literals, script.declarations, budget=100_000)
        assert result.status == "unsat"

    def test_prime_factorization_unsat(self):
        literals, script = prepared(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (* x y) 13))(assert (> x 1))(assert (> y 1))"
        )
        result = solve_nia_conjunction(literals, script.declarations, budget=1_000_000)
        assert result.status == "unsat"

    def test_factorization_sat(self):
        literals, script = prepared(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (* x y) 91))(assert (> x 1))(assert (< x y))"
        )
        result = solve_nia_conjunction(literals, script.declarations, budget=2_000_000)
        assert result.status == "sat"
        assert result.model["x"] * result.model["y"] == 91

    def test_parity_unsat_is_unknown(self):
        # 2xy + 2z = odd is unsat, but only by a parity argument interval
        # reasoning cannot see: the honest answer is unknown (timeout).
        literals, script = prepared(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* 2 (* x y)) (* 2 z)) 41))"
        )
        result = solve_nia_conjunction(literals, script.declarations, budget=50_000)
        assert result.status == "unknown"

    def test_bounded_domain_unsat_is_sound(self):
        literals, script = prepared(
            "(declare-fun x () Int)"
            "(assert (>= x 2))(assert (<= x 5))(assert (= (* x x) 7))"
        )
        result = solve_nia_conjunction(literals, script.declarations, budget=500_000)
        assert result.status == "unsat"

    def test_budget_exhaustion_unknown(self):
        literals, script = prepared(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))"
        )
        result = solve_nia_conjunction(literals, script.declarations, budget=10)
        assert result.status == "unknown"

    def test_ground_conjunction(self):
        literals, script = prepared("(assert (= (* 3 3) 9))")
        result = solve_nia_conjunction(literals, script.declarations)
        assert result.status == "sat"

    def test_rejects_boolean_residual(self):
        script = parse_script("(declare-fun p () Bool)(declare-fun x () Int)(assert p)")
        with pytest.raises(UnsupportedLogicError):
            NiaSolver(script.assertions, script.declarations)


class TestShellEnumeration:
    def test_finds_small_witness(self):
        literals, script = prepared(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (* x y) 6))(assert (> x 0))(assert (> y x))"
        )
        result = solve_nia_enum_conjunction(literals, script.declarations, budget=500_000)
        assert result.status == "sat"
        assert evaluate_assertions(script.assertions, result.model)

    def test_cost_grows_with_witness_magnitude(self):
        small_literals, small_script = prepared(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (* x y) 9))(assert (> x 1))(assert (>= y x))"
        )
        large_literals, large_script = prepared(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (* x y) 841))(assert (> x 17))(assert (>= y x))"
        )
        small = solve_nia_enum_conjunction(
            small_literals, small_script.declarations, budget=10_000_000
        )
        large = solve_nia_enum_conjunction(
            large_literals, large_script.declarations, budget=10_000_000
        )
        assert small.status == "sat" and large.status == "sat"
        assert large.work > 10 * small.work

    def test_contraction_catches_structural_unsat(self):
        literals, script = prepared(
            "(declare-fun x () Int)(assert (< (* x x) 0))"
        )
        result = solve_nia_enum_conjunction(literals, script.declarations, budget=10_000)
        assert result.status == "unsat"

    def test_budget_timeout(self):
        literals, script = prepared(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x y) (* y z) (* x z)) 3001))"
            "(assert (> x 10))(assert (> y 10))(assert (> z 10))"
        )
        result = solve_nia_enum_conjunction(literals, script.declarations, budget=20_000)
        assert result.status == "unknown"

    def test_bounded_box_exhaustion_is_unsat(self):
        literals, script = prepared(
            "(declare-fun x () Int)"
            "(assert (>= x 1))(assert (<= x 4))(assert (= (* x x) 10))"
        )
        result = solve_nia_enum_conjunction(literals, script.declarations, budget=1_000_000)
        assert result.status == "unsat"


class TestProfileAsymmetry:
    """The corvus-vs-zorro asymmetry the evaluation relies on."""

    def test_enum_much_slower_on_moderate_witnesses(self):
        literals, script = prepared(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x y) (* y z) (* x z)) 347))"
            "(assert (> x 0))(assert (> y x))(assert (> z y))"
        )
        prune = solve_nia_conjunction(literals, script.declarations, budget=5_000_000)
        enum = solve_nia_enum_conjunction(literals, script.declarations, budget=100_000)
        assert prune.status == "sat"
        assert enum.status == "unknown"  # times out at the same virtual budget
