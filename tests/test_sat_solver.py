"""Tests for the CDCL SAT solver, including brute-force equivalence."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.cnf import CNF
from repro.sat.solver import SAT, UNKNOWN, UNSAT, SatSolver, luby, solve_cnf


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in clause) for clause in clauses):
            return True
    return False


def pigeonhole(holes):
    """PHP(holes+1, holes): classic unsat family."""
    cnf = CNF()

    def var(pigeon, hole):
        return pigeon * holes + hole + 1

    for pigeon in range(holes + 1):
        cnf.add_clause([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                cnf.add_clause([-var(p1, hole), -var(p2, hole)])
    return cnf


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(15)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_powers_at_boundaries(self):
        assert luby(2**10 - 2) == 2**9


class TestBasics:
    def test_empty_formula_is_sat(self):
        result, model, _ = solve_cnf(CNF())
        assert result == SAT

    def test_unit_propagation_chain(self):
        cnf = CNF()
        cnf.extend([[1], [-1, 2], [-2, 3], [-3, 4]])
        result, model, stats = solve_cnf(cnf)
        assert result == SAT
        assert all(model[v] for v in (1, 2, 3, 4))
        assert stats.decisions == 0

    def test_contradictory_units(self):
        cnf = CNF()
        cnf.extend([[1], [-1]])
        result, _, _ = solve_cnf(cnf)
        assert result == UNSAT

    def test_simple_conflict_learning(self):
        cnf = CNF()
        cnf.extend([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        result, _, _ = solve_cnf(cnf)
        assert result == UNSAT

    def test_model_satisfies_all_clauses(self):
        cnf = CNF()
        cnf.extend([[1, 2, 3], [-1, -2], [-2, -3], [2, 3]])
        result, model, _ = solve_cnf(cnf)
        assert result == SAT
        for clause in cnf.clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_php_is_unsat(self, holes):
        result, _, _ = solve_cnf(pigeonhole(holes))
        assert result == UNSAT

    def test_php_learns_clauses(self):
        _, _, stats = solve_cnf(pigeonhole(4))
        assert stats.conflicts > 0
        assert stats.learned_clauses > 0


class TestBudget:
    def test_conflict_budget_yields_unknown(self):
        result, _, _ = solve_cnf(pigeonhole(7), max_conflicts=5)
        assert result == UNKNOWN

    def test_work_budget_yields_unknown(self):
        result, _, _ = solve_cnf(pigeonhole(7), max_work=50)
        assert result == UNKNOWN

    def test_work_counter_is_deterministic(self):
        results = set()
        for _ in range(3):
            _, _, stats = solve_cnf(pigeonhole(4))
            results.add(stats.work())
        assert len(results) == 1


class TestAssumptions:
    def test_assumptions_force_values(self):
        solver = SatSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) == SAT
        assert solver.model()[2] is True

    def test_failed_assumptions_give_core(self):
        solver = SatSolver(3)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve(assumptions=[1, -3]) == UNSAT
        core = solver.final_conflict()
        assert set(core) == {-1, 3}

    def test_solver_reusable_after_assumption_unsat(self):
        solver = SatSolver(3)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve(assumptions=[1, -3]) == UNSAT
        assert solver.solve(assumptions=[1]) == SAT
        assert solver.model()[3] is True

    def test_incremental_clause_addition(self):
        solver = SatSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve() == SAT
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() == UNSAT


class TestRandomEquivalence:
    @given(st.data())
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, data):
        num_vars = data.draw(st.integers(2, 8))
        num_clauses = data.draw(st.integers(1, 30))
        clauses = []
        for _ in range(num_clauses):
            width = data.draw(st.integers(1, 3))
            clause = [
                data.draw(st.integers(1, num_vars)) * data.draw(st.sampled_from((1, -1)))
                for _ in range(width)
            ]
            clauses.append(clause)
        cnf = CNF(num_vars)
        cnf.extend(clauses)
        result, model, _ = solve_cnf(cnf)
        expected = brute_force_sat(num_vars, clauses)
        assert (result == SAT) == expected
        if result == SAT:
            for clause in clauses:
                assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_hard_random_3sat_solves(self):
        rng = random.Random(7)
        num_vars = 100
        cnf = CNF(num_vars)
        for _ in range(int(4.26 * num_vars)):
            variables = rng.sample(range(1, num_vars + 1), 3)
            cnf.add_clause([v * rng.choice((1, -1)) for v in variables])
        result, _, stats = solve_cnf(cnf)
        assert result in (SAT, UNSAT)
        assert stats.work() > 0
