"""Fault-injection tests: determinism, quarantine, crash recovery."""

import builtins
import multiprocessing
import os

import pytest

from repro import telemetry
from repro.cache.store import SolveCache, _entry_checksum
from repro.guard import chaos
from repro.guard.chaos import ChaosCrash, ChaosPlan
from repro.smtlib import parse_script
from repro.solver import solve_script


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.uninstall()
    telemetry.disable()
    telemetry.get_registry().reset()
    yield
    chaos.uninstall()
    telemetry.disable()
    telemetry.get_registry().reset()


NIA_SAT = (
    "(set-logic QF_NIA)\n"
    "(declare-fun x () Int)(declare-fun y () Int)\n"
    "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))\n"
    "(check-sat)\n"
)

UNSAT_LIA = (
    "(set-logic QF_LIA)\n"
    "(declare-fun x () Int)\n"
    "(assert (> x 5))(assert (< x 3))\n"
    "(check-sat)\n"
)


# -- the plan ----------------------------------------------------------------


class TestChaosPlan:
    def test_parse_spec(self):
        plan = chaos.parse_spec("1234:0.1")
        assert plan.seed == 1234
        assert plan.rate == 0.1

    @pytest.mark.parametrize("bad", ["", "1234", "x:0.1", "1:y", "1:2.0"])
    def test_parse_spec_rejects(self, bad):
        with pytest.raises(ValueError):
            chaos.parse_spec(bad)

    def test_draws_are_deterministic(self):
        def schedule(plan):
            fired = []
            for point in chaos.POINTS:
                for salt in ("", "a", "b"):
                    for _ in range(20):
                        fault = plan.draw(point, salt=salt)
                        fired.append(None if fault is None else fault.kind)
            return fired

        first = schedule(ChaosPlan(99, 0.3))
        second = schedule(ChaosPlan(99, 0.3))
        assert first == second
        assert any(kind is not None for kind in first)
        # A different seed gives a different schedule.
        assert schedule(ChaosPlan(100, 0.3)) != first

    def test_salt_decorrelates_forked_workers(self):
        plan = ChaosPlan(7, 0.5)
        per_salt = [
            [plan.draw("portfolio.worker_spawn", salt=str(i)) is not None
             for _ in range(16)]
            for i in range(4)
        ]
        assert len({tuple(row) for row in per_salt}) > 1

    def test_injected_deltas(self):
        plan = ChaosPlan(1, 1.0)
        plan.draw("cache.load")
        baseline = dict(plan.injected)
        plan.draw("cache.load")
        assert plan.injected_deltas(baseline) == {"cache.load|corrupt": 1}

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "55:0.25")
        chaos.uninstall()  # force a re-read
        plan = chaos.active()
        assert plan is not None and plan.seed == 55
        assert chaos.active() is plan  # parsed once

    def test_inject_crash_and_budget(self):
        from repro.guard import ResourceBudget

        chaos.install(ChaosPlan(3, 1.0, kinds={"solver.pre_solve": ("crash",)}))
        with pytest.raises(ChaosCrash):
            chaos.inject("solver.pre_solve")
        chaos.install(ChaosPlan(3, 1.0, kinds={"solver.pre_solve": ("budget",)}))
        governor = ResourceBudget()
        assert chaos.inject("solver.pre_solve", governor=governor) is None
        assert governor.cancelled

    def test_crash_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(ChaosCrash, ReproError)


# -- cache hardening ---------------------------------------------------------


def _entry(status="sat"):
    return {"status": status, "work": 7, "engine": "test", "model": None, "stats": {}}


class TestCacheHardening:
    def test_atomic_save_no_temp_leftovers(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = SolveCache(path=path)
        cache.put("k1", _entry())
        cache.save()
        assert not [p for p in os.listdir(tmp_path) if ".tmp" in p]
        warm = SolveCache(path=path)
        assert warm.get("k1")["status"] == "sat"

    def test_failed_write_preserves_previous_file(self, tmp_path, monkeypatch):
        path = tmp_path / "cache.json"
        cache = SolveCache(path=path)
        cache.put("k1", _entry())
        cache.save()
        before = path.read_text()
        real_open = builtins.open

        def failing_open(file, *args, **kwargs):
            if ".tmp." in str(file):
                raise OSError("disk full")
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", failing_open)
        with pytest.raises(OSError):
            cache.save()
        monkeypatch.setattr(builtins, "open", real_open)
        assert path.read_text() == before
        assert not [p for p in os.listdir(tmp_path) if ".tmp" in p]

    def test_tampered_entry_is_quarantined_others_survive(self, tmp_path):
        import json

        path = tmp_path / "cache.json"
        cache = SolveCache(path=path)
        cache.put("good", _entry("sat"))
        cache.put("bad", _entry("unsat"))
        cache.save()
        payload = json.loads(path.read_text())
        payload["entries"]["bad"]["status"] = "sat"  # bit-rot flips a verdict
        path.write_text(json.dumps(payload))

        telemetry.enable()
        reloaded = SolveCache(path=path)
        assert "good" in reloaded
        assert "bad" not in reloaded
        assert reloaded.quarantined == 1
        assert reloaded.stats()["quarantined"] == 1
        snap = telemetry.snapshot()
        assert snap.get("cache.quarantined{reason=checksum}") == 1

    def test_unreadable_file_is_moved_aside(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json at all")
        cache = SolveCache(path=path)
        assert len(cache) == 0
        assert cache.quarantined == 1
        assert not path.exists()
        assert (tmp_path / "cache.json.corrupt").exists()

    def test_version_1_files_still_load(self, tmp_path):
        import json

        path = tmp_path / "cache.json"
        payload = {
            "version": 1,
            "stats": {"hits": 3, "misses": 4, "evictions": 0},
            "entries": {"k1": _entry()},
        }
        path.write_text(json.dumps(payload))
        cache = SolveCache(path=path)
        assert cache.get("k1")["status"] == "sat"
        assert cache.stats()["lifetime_hits"] == 4  # 3 stored + this get

    def test_chaos_corrupted_persist_quarantines_on_reload(self, tmp_path):
        """Garbled writes never raise on reload; the file or the entries
        are quarantined and the cache rebuilds from scratch."""
        for seed in range(8):
            path = tmp_path / f"cache{seed}.json"
            cache = SolveCache(path=path)
            cache.put("k1", _entry())
            chaos.install(ChaosPlan(seed, 1.0))
            try:
                cache.save()
            finally:
                chaos.uninstall()
            reloaded = SolveCache(path=path)  # must not raise
            assert reloaded.quarantined >= 1 or "k1" in reloaded

    def test_checksum_is_content_addressed(self):
        assert _entry_checksum(_entry("sat")) != _entry_checksum(_entry("unsat"))
        assert _entry_checksum(_entry()) == _entry_checksum(dict(_entry()))


# -- solver stack under chaos ------------------------------------------------


class TestSessionChaos:
    """Injected faults mid-session: structured unknown, no cache
    poisoning, and the session keeps answering once the storm passes."""

    @staticmethod
    def _session(cache=None):
        from repro.smtlib import parse_term
        from repro.smtlib.sorts import bv_sort
        from repro.solver.session import Session

        decls = {"v": bv_sort(8), "w": bv_sort(8)}
        session = Session(cache=cache)
        session.assert_term(parse_term("(= (bvmul v w) (_ bv77 8))", decls))
        session.assert_term(parse_term("(bvult v w)", decls))
        return session

    def test_injected_crash_degrades_to_unknown_and_session_survives(self):
        store = SolveCache()
        session = self._session(cache=store)
        chaos.install(ChaosPlan(17, 1.0, kinds={"session.check_sat": ("crash",)}))
        result = session.check_sat()
        assert result.status == "unknown"
        assert result.stats.get("gave_up_reason") == "chaos-crash"
        assert len(store) == 0  # never poisons the solve cache
        chaos.uninstall()
        recovered = session.check_sat()
        assert recovered.status == "sat"
        assert len(store) == 1

    def test_injected_budget_exhaustion_mid_session(self):
        store = SolveCache()
        session = self._session(cache=store)
        chaos.install(ChaosPlan(17, 1.0, kinds={"session.check_sat": ("budget",)}))
        result = session.check_sat()
        assert result.status == "unknown"
        assert len(store) == 0
        chaos.uninstall()
        assert session.check_sat().status == "sat"

    def test_crash_at_depth_preserves_scope_stack(self):
        from repro.smtlib import parse_term
        from repro.smtlib.sorts import bv_sort

        decls = {"v": bv_sort(8), "w": bv_sort(8)}
        session = self._session()
        session.push()
        session.assert_term(parse_term("(bvult w v)", decls))
        chaos.install(ChaosPlan(3, 1.0, kinds={"session.check_sat": ("crash",)}))
        assert session.check_sat().status == "unknown"
        chaos.uninstall()
        assert session.depth == 1
        assert session.check_sat().status == "unsat"
        session.pop()
        assert session.check_sat().status == "sat"

    def test_fault_free_checks_cached_even_with_plan_installed(self):
        # A plan at rate 0 never fires: results are untainted and cached.
        store = SolveCache()
        chaos.install(ChaosPlan(17, 0.0))
        session = self._session(cache=store)
        assert session.check_sat().status == "sat"
        assert len(store) == 1


class TestSolverChaos:
    def test_facade_skips_caching_tainted_results(self):
        chaos.install(ChaosPlan(11, 1.0, kinds={"solver.pre_solve": ("budget",)}))
        store = SolveCache()
        script = parse_script(UNSAT_LIA)
        result = solve_script(script, budget=10**6, cache=store)
        assert result.status == "unknown"  # injected exhaustion
        assert len(store) == 0  # tainted: never persisted

    def test_fault_free_results_still_cached(self):
        store = SolveCache()
        script = parse_script(UNSAT_LIA)
        first = solve_script(script, budget=10**6, cache=store)
        assert first.status == "unsat"
        assert len(store) == 1
        second = solve_script(script, budget=10**6, cache=store)
        assert second.cached and second.status == "unsat"

    def test_interleaving_lanes_crash_retry_then_written_off(self):
        from repro.portfolio.scheduler import InterleavingScheduler
        from repro.portfolio.tasks import BaselineTask

        chaos.install(ChaosPlan(5, 1.0, kinds={"solver.pre_solve": ("crash",)}))
        telemetry.enable()
        scheduler = InterleavingScheduler(
            [BaselineTask("zorro"), BaselineTask("corvus")], budget=200000
        )
        outcome = scheduler.run(parse_script(NIA_SAT))  # must not raise
        assert outcome.status == "unknown"
        assert outcome.winner is None
        statuses = [a.status for round_ in outcome.history for a in round_]
        assert statuses and set(statuses) == {"crashed"}
        assert outcome.rounds == 2  # one retry round, then written off
        snap = telemetry.snapshot()
        assert snap.get("portfolio.lane_crashed{lane=original/zorro}") == 1
        assert snap.get("portfolio.lane_crashed{lane=original/corvus}") == 1

    def test_interleaving_delay_faults_preserve_verdict(self):
        from repro.portfolio.scheduler import InterleavingScheduler
        from repro.portfolio.tasks import BaselineTask

        tasks = [BaselineTask("zorro"), BaselineTask("corvus")]
        baseline = InterleavingScheduler(tasks, budget=400000).run(
            parse_script(NIA_SAT)
        )
        chaos.install(ChaosPlan(21, 0.5))  # default mix: pre_solve => delay
        chaotic = InterleavingScheduler(tasks, budget=400000).run(
            parse_script(NIA_SAT)
        )
        assert chaotic.status == baseline.status == "sat"

    def test_parallel_race_worker_crashes_recovered(self):
        from repro.portfolio.scheduler import parallel_race
        from repro.portfolio.tasks import BaselineTask

        chaos.install(ChaosPlan(9, 1.0))  # worker_spawn => crash, always
        telemetry.enable()
        tasks = [BaselineTask("zorro"), BaselineTask("corvus")]
        outcome = parallel_race(
            tasks, parse_script(NIA_SAT), budget=400000, wall_timeout=30.0
        )
        # Every worker (and its one retry) crashed: written off cleanly.
        assert outcome.status == "unknown"
        assert {a.status for a in outcome.history[0]} == {"crashed"}
        assert multiprocessing.active_children() == []
        snap = telemetry.snapshot()
        crashed = [k for k in snap if k.startswith("portfolio.lane_crashed")]
        assert len(crashed) == 2

    def test_parallel_race_crash_rate_preserves_verdict(self):
        from repro.portfolio.scheduler import parallel_race
        from repro.portfolio.tasks import BaselineTask

        script = parse_script(NIA_SAT)
        tasks = [BaselineTask("zorro"), BaselineTask("corvus")]
        fault_free = parallel_race(tasks, script, budget=400000, wall_timeout=30.0)
        chaos.install(ChaosPlan(13, 0.5))
        chaotic = parallel_race(tasks, script, budget=400000, wall_timeout=30.0)
        assert fault_free.status == chaotic.status == "sat"
        assert multiprocessing.active_children() == []

    def test_telemetry_writer_drops_instead_of_crashing(self, tmp_path):
        from repro.telemetry.spans import JsonlWriter

        chaos.install(ChaosPlan(17, 1.0))  # telemetry.flush => drop
        writer = JsonlWriter(str(tmp_path / "trace.jsonl"))
        writer({"span": "solve"})
        writer.flush()
        writer.close()
        assert writer.dropped == 1
        assert (tmp_path / "trace.jsonl").read_text() == ""

    def test_solve_verdict_stable_under_default_chaos(self):
        """The acceptance invariant in miniature: same verdicts, chaos on."""
        script = parse_script(NIA_SAT)
        clean = solve_script(script, budget=400000)
        chaos.install(ChaosPlan(29, 0.3))
        chaotic = solve_script(script, budget=400000)
        assert clean.status == chaotic.status == "sat"
        assert chaotic.model == clean.model
