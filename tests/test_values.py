"""Tests for repro.smtlib.values (BVValue and FPValue)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.smtlib.values import BVValue, FPValue


class TestBVValue:
    def test_wraps_modulo_width(self):
        assert BVValue(256, 8).unsigned == 0
        assert BVValue(257, 8).unsigned == 1

    def test_negative_wraps_to_twos_complement(self):
        assert BVValue(-1, 8).unsigned == 255
        assert BVValue(-1, 8).signed == -1

    def test_signed_view(self):
        assert BVValue(0x80, 8).signed == -128
        assert BVValue(0x7F, 8).signed == 127

    def test_bit_access(self):
        value = BVValue(0b1010, 4)
        assert [value.bit(i) for i in range(4)] == [0, 1, 0, 1]

    def test_equality_requires_same_width(self):
        assert BVValue(3, 4) != BVValue(3, 5)
        assert BVValue(3, 4) == BVValue(3, 4)

    def test_hashable(self):
        assert len({BVValue(3, 4), BVValue(3, 4), BVValue(4, 4)}) == 2

    def test_smtlib_spelling(self):
        assert BVValue(855, 12).smtlib() == "(_ bv855 12)"

    def test_fits_signed(self):
        value = BVValue(0, 8)
        assert value.fits_signed(127)
        assert value.fits_signed(-128)
        assert not value.fits_signed(128)
        assert not value.fits_signed(-129)

    @given(st.integers(-1000, 1000), st.integers(2, 16))
    def test_signed_roundtrip(self, number, width):
        value = BVValue(number, width)
        assert BVValue(value.signed, width).unsigned == value.unsigned


class TestFPValue:
    def test_zero_signs(self):
        assert FPValue.zero(8, 24, 0) != FPValue.zero(8, 24, 1)
        assert FPValue.zero(8, 24).is_zero

    def test_nan_is_pathological(self):
        assert FPValue.nan(8, 24).is_pathological
        assert FPValue.nan(8, 24).is_nan

    def test_inf_is_pathological(self):
        assert FPValue.inf(8, 24).is_inf
        assert FPValue.inf(8, 24, 1).sign == 1

    def test_finite_to_fraction(self):
        value = FPValue(8, 24, "finite", 0, 3, -1)  # 3 * 2^-1
        assert value.to_fraction() == Fraction(3, 2)

    def test_negative_to_fraction(self):
        value = FPValue(8, 24, "finite", 1, 3, 0)
        assert value.to_fraction() == -3

    def test_pathological_to_fraction_raises(self):
        with pytest.raises(Exception):
            FPValue.nan(8, 24).to_fraction()

    def test_structural_equality_distinguishes_zero_signs(self):
        assert FPValue.zero(8, 24, 0) != FPValue.zero(8, 24, 1)

    def test_nan_equals_nan_structurally(self):
        assert FPValue.nan(8, 24) == FPValue.nan(8, 24)

    def test_hashable(self):
        values = {FPValue.nan(8, 24), FPValue.zero(8, 24), FPValue.zero(8, 24)}
        assert len(values) == 2
