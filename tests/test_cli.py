"""Tests for the staub command-line tool."""

import pytest

from repro.cli import main


@pytest.fixture()
def nia_file(tmp_path):
    path = tmp_path / "cubes.smt2"
    path.write_text(
        "(set-logic QF_NIA)\n"
        "(declare-fun x () Int)(declare-fun y () Int)\n"
        "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))\n"
        "(check-sat)\n"
    )
    return str(path)


@pytest.fixture()
def bv_file(tmp_path):
    path = tmp_path / "bv.smt2"
    path.write_text(
        "(declare-fun v () (_ BitVec 8))\n"
        "(assert (= (bvmul v (_ bv4 8)) (_ bv20 8)))\n"
        "(check-sat)\n"
    )
    return str(path)


class TestTransform:
    def test_transform_prints_bounded_script(self, nia_file, capsys):
        assert main(["transform", nia_file]) == 0
        out = capsys.readouterr().out
        assert "(set-logic QF_BV)" in out
        assert "bvmul" in out
        assert "; theory: int" in out

    def test_transform_fixed_width(self, nia_file, capsys):
        assert main(["transform", nia_file, "--width", "10"]) == 0
        out = capsys.readouterr().out
        assert "(_ BitVec 10)" in out


class TestSolve:
    def test_solve_sat(self, nia_file, capsys):
        assert main(["solve", nia_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("sat")
        assert "x = 7" in out and "y = 11" in out

    def test_solve_profiles(self, nia_file, capsys):
        assert main(["solve", nia_file, "--profile", "corvus"]) == 0
        assert "sat" in capsys.readouterr().out


class TestArbitrage:
    def test_arbitrage_verified(self, nia_file, capsys):
        assert main(["arbitrage", nia_file]) == 0
        out = capsys.readouterr().out
        assert "case: verified-sat" in out
        assert "verified model:" in out

    def test_arbitrage_revert_message(self, tmp_path, capsys):
        path = tmp_path / "unsat.smt2"
        path.write_text(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))(check-sat)"
        )
        assert main(["arbitrage", str(path)]) == 0
        out = capsys.readouterr().out
        assert "case: bounded-unsat" in out
        assert "reverting" in out


class TestAnalyze:
    def test_analyze_report(self, nia_file, capsys):
        assert main(["analyze", nia_file]) == 0
        out = capsys.readouterr().out
        assert "theory: int" in out
        assert "largest constant: 77" in out
        assert "variable assumption x:" in out


class TestOptimize:
    def test_optimize_bounded(self, bv_file, capsys):
        assert main(["optimize", bv_file]) == 0
        out = capsys.readouterr().out
        assert "bvshl" in out  # strength-reduced multiply by 4

    def test_optimize_rejects_unbounded(self, nia_file, capsys):
        assert main(["optimize", nia_file]) == 1
        assert "error" in capsys.readouterr().err


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["solve", "/nonexistent.smt2"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error(self, tmp_path, capsys):
        path = tmp_path / "bad.smt2"
        path.write_text("(assert (=")
        assert main(["solve", str(path)]) == 1


class TestReduce:
    def test_reduce_verified(self, tmp_path, capsys):
        path = tmp_path / "wide.smt2"
        path.write_text(
            "(declare-fun x () (_ BitVec 24))(declare-fun y () (_ BitVec 24))"
            "(assert (= (bvmul x y) (_ bv77 24)))"
            "(assert (bvsgt x (_ bv1 24)))(assert (bvsgt y x))"
            "(assert (bvslt y (_ bv16 24)))(check-sat)"
        )
        assert main(["reduce", str(path), "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "case: verified-sat" in out
        assert "24 -> 8 bits" in out


class TestChaosSpecValidation:
    """Malformed chaos specs exit 2 with one structured line, no traceback."""

    @pytest.fixture(autouse=True)
    def no_ambient_chaos(self, monkeypatch):
        from repro.guard import chaos

        monkeypatch.delenv(chaos.ENV_VAR, raising=False)
        chaos.uninstall()
        yield
        chaos.uninstall()

    @pytest.mark.parametrize("bad", ["garbage", "1234", "x:0.1", "1:y", "1234:5.0"])
    def test_bad_chaos_flag_exits_2(self, nia_file, capsys, bad):
        assert main(["solve", nia_file, "--chaos", bad]) == 2
        err = capsys.readouterr().err
        assert err.startswith("staub: error:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_bad_chaos_env_exits_2(self, nia_file, capsys, monkeypatch):
        # A typo'd REPRO_CHAOS used to surface as a raw ValueError
        # traceback from the first lazy chaos.active() call mid-solve.
        from repro.guard import chaos

        monkeypatch.setenv(chaos.ENV_VAR, "oops")
        assert main(["solve", nia_file]) == 2
        err = capsys.readouterr().err
        assert err.startswith("staub: error:")
        assert chaos.ENV_VAR in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_good_chaos_flag_still_runs(self, nia_file, capsys):
        assert main(["solve", nia_file, "--chaos", "7:0.0"]) == 0
        assert "sat" in capsys.readouterr().out

    def test_good_chaos_env_still_runs(self, nia_file, capsys, monkeypatch):
        from repro.guard import chaos

        monkeypatch.setenv(chaos.ENV_VAR, "7:0.0")
        assert main(["solve", nia_file]) == 0
        assert "sat" in capsys.readouterr().out


class TestServeCLI:
    def test_serve_stdio_smoke(self, monkeypatch, capsys):
        import io
        import json
        import sys as _sys

        lines = "\n".join(
            [
                json.dumps(
                    {
                        "op": "solve",
                        "id": 1,
                        "script": "(set-logic QF_LIA)(declare-fun a () Int)"
                        "(assert (> a 10))(assert (< a 13))(check-sat)",
                    }
                ),
                json.dumps({"op": "shutdown", "id": 2}),
            ]
        )
        monkeypatch.setattr(_sys, "stdin", io.StringIO(lines + "\n"))
        assert main(["serve"]) == 0
        out = capsys.readouterr().out
        payloads = [json.loads(line) for line in out.splitlines()]
        assert payloads[0]["id"] == 1 and payloads[0]["status"] == "sat"
        assert payloads[-1]["shutdown"] is True

    def test_cache_stats_on_sharded_directory(self, tmp_path, capsys):
        from repro.cache import ShardedSolveCache

        target = tmp_path / "shards"
        cache = ShardedSolveCache(str(target), shards=2)
        cache.put("deadbeef" + "0" * 8, {"status": "sat", "work": 1,
                                         "engine": "t", "model": None, "stats": {}})
        cache.save()
        assert main(["cache", "stats", str(target)]) == 0
        out = capsys.readouterr().out
        assert "shards = 2" in out
        assert "entries = 1" in out
