"""Tests for the staub command-line tool."""

import pytest

from repro.cli import main


@pytest.fixture()
def nia_file(tmp_path):
    path = tmp_path / "cubes.smt2"
    path.write_text(
        "(set-logic QF_NIA)\n"
        "(declare-fun x () Int)(declare-fun y () Int)\n"
        "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))\n"
        "(check-sat)\n"
    )
    return str(path)


@pytest.fixture()
def bv_file(tmp_path):
    path = tmp_path / "bv.smt2"
    path.write_text(
        "(declare-fun v () (_ BitVec 8))\n"
        "(assert (= (bvmul v (_ bv4 8)) (_ bv20 8)))\n"
        "(check-sat)\n"
    )
    return str(path)


class TestTransform:
    def test_transform_prints_bounded_script(self, nia_file, capsys):
        assert main(["transform", nia_file]) == 0
        out = capsys.readouterr().out
        assert "(set-logic QF_BV)" in out
        assert "bvmul" in out
        assert "; theory: int" in out

    def test_transform_fixed_width(self, nia_file, capsys):
        assert main(["transform", nia_file, "--width", "10"]) == 0
        out = capsys.readouterr().out
        assert "(_ BitVec 10)" in out


class TestSolve:
    def test_solve_sat(self, nia_file, capsys):
        assert main(["solve", nia_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("sat")
        assert "x = 7" in out and "y = 11" in out

    def test_solve_profiles(self, nia_file, capsys):
        assert main(["solve", nia_file, "--profile", "corvus"]) == 0
        assert "sat" in capsys.readouterr().out


class TestArbitrage:
    def test_arbitrage_verified(self, nia_file, capsys):
        assert main(["arbitrage", nia_file]) == 0
        out = capsys.readouterr().out
        assert "case: verified-sat" in out
        assert "verified model:" in out

    def test_arbitrage_revert_message(self, tmp_path, capsys):
        path = tmp_path / "unsat.smt2"
        path.write_text(
            "(declare-fun x () Int)(assert (> x 5))(assert (< x 3))(check-sat)"
        )
        assert main(["arbitrage", str(path)]) == 0
        out = capsys.readouterr().out
        assert "case: bounded-unsat" in out
        assert "reverting" in out


class TestAnalyze:
    def test_analyze_report(self, nia_file, capsys):
        assert main(["analyze", nia_file]) == 0
        out = capsys.readouterr().out
        assert "theory: int" in out
        assert "largest constant: 77" in out
        assert "variable assumption x:" in out


class TestOptimize:
    def test_optimize_bounded(self, bv_file, capsys):
        assert main(["optimize", bv_file]) == 0
        out = capsys.readouterr().out
        assert "bvshl" in out  # strength-reduced multiply by 4

    def test_optimize_rejects_unbounded(self, nia_file, capsys):
        assert main(["optimize", nia_file]) == 1
        assert "error" in capsys.readouterr().err


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["solve", "/nonexistent.smt2"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error(self, tmp_path, capsys):
        path = tmp_path / "bad.smt2"
        path.write_text("(assert (=")
        assert main(["solve", str(path)]) == 1


class TestReduce:
    def test_reduce_verified(self, tmp_path, capsys):
        path = tmp_path / "wide.smt2"
        path.write_text(
            "(declare-fun x () (_ BitVec 24))(declare-fun y () (_ BitVec 24))"
            "(assert (= (bvmul x y) (_ bv77 24)))"
            "(assert (bvsgt x (_ bv1 24)))(assert (bvsgt y x))"
            "(assert (bvslt y (_ bv16 24)))(check-sat)"
        )
        assert main(["reduce", str(path), "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "case: verified-sat" in out
        assert "24 -> 8 bits" in out
