"""Tests for the SMT-LIB tokenizer."""

import pytest

from repro.errors import ParseError
from repro.smtlib.lexer import (
    DECIMAL,
    KEYWORD,
    LPAREN,
    NUMERAL,
    RPAREN,
    STRING,
    SYMBOL,
    tokenize,
)


def kinds(text):
    return [token.kind for token in tokenize(text)]


def texts(text):
    return [token.text for token in tokenize(text)]


class TestBasics:
    def test_parens(self):
        assert kinds("()") == [LPAREN, RPAREN]

    def test_symbols(self):
        assert texts("declare-fun x bvadd") == ["declare-fun", "x", "bvadd"]

    def test_numerals_and_decimals(self):
        assert kinds("855 8.5") == [NUMERAL, DECIMAL]

    def test_operators_are_symbols(self):
        assert texts("<= >= + - * / =") == ["<=", ">=", "+", "-", "*", "/", "="]

    def test_keyword(self):
        tokens = tokenize(":status")
        assert tokens[0].kind == KEYWORD
        assert tokens[0].text == ":status"

    def test_comments_skipped(self):
        assert texts("x ; the rest is ignored\ny") == ["x", "y"]

    def test_whitespace_only(self):
        assert tokenize("   \n\t ") == []


class TestQuotedForms:
    def test_quoted_symbol(self):
        tokens = tokenize("|hello world|")
        assert tokens[0].kind == SYMBOL
        assert tokens[0].text == "hello world"

    def test_unterminated_quoted_symbol(self):
        with pytest.raises(ParseError):
            tokenize("|oops")

    def test_string_literal(self):
        tokens = tokenize('"a string"')
        assert tokens[0].kind == STRING
        assert tokens[0].text == "a string"

    def test_string_with_escaped_quote(self):
        tokens = tokenize('"say ""hi"""')
        assert tokens[0].text == 'say "hi"'

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')


class TestBitvectorLiterals:
    def test_binary_literal(self):
        assert texts("#b1010") == ["#b1010"]

    def test_hex_literal(self):
        assert texts("#xFF") == ["#xFF"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("(assert\n  (= x 1))")
        by_text = {token.text: token for token in tokens}
        assert by_text["assert"].line == 1
        assert by_text["="].line == 2
        assert by_text["="].column == 4

    def test_bad_character(self):
        with pytest.raises(ParseError) as error:
            tokenize("x \x01")
        assert "unexpected character" in str(error.value)
