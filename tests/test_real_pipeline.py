"""End-to-end behaviour of the real-arithmetic arbitrage.

The paper's real-number story has three regimes, all exercised here:

1. dyadic-friendly constraints verify (the NRA wins);
2. decimal constants produce semantic differences that defeat
   verification (why LRA shows no improvements);
3. constraints whose only witnesses are irrational cannot be rescued by
   any bounded representation (the NRA unknown residue).
"""

from fractions import Fraction

import pytest

from repro.core.pipeline import (
    CASE_BOUNDED_UNSAT,
    CASE_SEMANTIC_DIFFERENCE,
    CASE_VERIFIED_SAT,
    Staub,
)
from repro.smtlib import parse_script
from repro.smtlib.evaluator import evaluate_assertions

BUDGET = 1_200_000


class TestDyadicRegime:
    def test_square_root_of_dyadic_verifies(self):
        script = parse_script(
            "(declare-fun x () Real)"
            "(assert (= (* x x) 2.25))(assert (> x 0.0))"
        )
        report = Staub().run(script, budget=BUDGET)
        assert report.case == CASE_VERIFIED_SAT
        assert report.model["x"] == Fraction(3, 2)

    def test_linear_dyadic_system_verifies(self):
        script = parse_script(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (= (+ x y) 1.5))(assert (= (- x y) 0.25))"
        )
        report = Staub().run(script, budget=BUDGET)
        assert report.case == CASE_VERIFIED_SAT
        assert evaluate_assertions(script.assertions, report.model)
        assert report.model["x"] == Fraction(7, 8)

    def test_shape_comes_from_inference(self):
        script = parse_script(
            "(declare-fun x () Real)(assert (> x 0.125))(assert (< x 0.375))"
        )
        staub = Staub()
        transformed, inference, _ = staub.transform(script)
        # dig(1/8) = 3, plus one: at least 4 fractional bits.
        assert transformed.shape.precision_bits >= 4
        report = staub.run(script, budget=BUDGET)
        assert report.case == CASE_VERIFIED_SAT


class TestDecimalRegime:
    def test_equality_on_decimal_cannot_verify(self):
        # x = 0.1 exactly: no dyadic witness exists, so the bounded side
        # either proves its rounded version unsat or finds a rounded
        # model that fails exact verification.
        script = parse_script(
            "(declare-fun x () Real)"
            "(assert (= (* 10.0 x) 1.0))"
        )
        report = Staub().run(script, budget=BUDGET)
        assert report.case in (CASE_BOUNDED_UNSAT, CASE_SEMANTIC_DIFFERENCE)

    def test_inexact_flag_set_for_decimal_constants(self):
        script = parse_script("(declare-fun x () Real)(assert (> x 0.1))")
        transformed, _, _ = Staub().transform(script)
        assert transformed.inexact_constants

    def test_wide_slack_decimal_inequalities_can_still_verify(self):
        # Inequalities with generous slack tolerate constant rounding:
        # these are the (rare) verifiable decimal cases.
        script = parse_script(
            "(declare-fun x () Real)"
            "(assert (> x 0.1))(assert (< x 10.1))"
        )
        report = Staub().run(script, budget=BUDGET)
        if report.case == CASE_VERIFIED_SAT:
            assert evaluate_assertions(script.assertions, report.model)


class TestIrrationalRegime:
    def test_sqrt_two_cannot_be_rescued(self):
        script = parse_script(
            "(declare-fun x () Real)(assert (= (* x x) 2.0))"
        )
        report = Staub().run(script, budget=BUDGET)
        # No fixed-point value squares to 2 exactly; truncation may allow
        # a spurious bounded model, which verification then rejects.
        assert report.case in (CASE_BOUNDED_UNSAT, CASE_SEMANTIC_DIFFERENCE)


class TestGuards:
    def test_overflow_guard_blocks_wraparound_models(self):
        # Without magnitude guards the bounded side could "solve" this by
        # wrapping; the guards force bounded-unsat instead.
        script = parse_script(
            "(declare-fun x () Real)"
            "(assert (> (* x x) 1000000.0))(assert (< x 2.0))"
        )
        report = Staub().run(script, budget=BUDGET)
        assert report.case != CASE_VERIFIED_SAT or evaluate_assertions(
            script.assertions, report.model
        )

    def test_division_by_zero_not_exploited(self):
        script = parse_script(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (= (/ x y) 2.0))(assert (= y 0.0))"
        )
        report = Staub().run(script, budget=BUDGET)
        # Our total semantics make x/0 = 0, so the original is unsat;
        # the bounded guard (divisor != 0) must not fabricate a model.
        assert report.case != CASE_VERIFIED_SAT
