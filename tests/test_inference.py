"""Tests for bound inference (Section 4.2's analysis pass)."""

import pytest

from repro.core.absint import MagPrec
from repro.core.inference import infer_bounds
from repro.errors import TransformError
from repro.smtlib import parse_script


def infer(text):
    return infer_bounds(parse_script(text))


class TestIntegerInference:
    def test_figure4_example(self):
        """Paper Fig. 4: largest constant 15, assumption covers b = 16."""
        inference = infer(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (>= a 15))(assert (< (- a b) 0))"
        )
        assert inference.theory == "int"
        assert inference.largest_constant == 15
        # x = width(15) + 1 = 6 (tight widths), subtraction adds one.
        assert inference.assumption == 6
        assert inference.root == inference.assumption + 1

    def test_motivating_example_structure(self):
        inference = infer(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))"
        )
        assert inference.largest_constant == 855
        assert inference.assumption == 12  # width(855)=11, plus one
        # Root: three cube widths 3x=36, two fold additions -> 38.
        assert inference.root == 38

    def test_linear_constraint_small_root(self):
        inference = infer(
            "(declare-fun x () Int)(assert (> x 100))(assert (< x 200))"
        )
        assert inference.root <= inference.assumption + 1

    def test_multiplication_adds_widths(self):
        inference = infer(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (* x y) 10))"
        )
        assert inference.root == 2 * inference.assumption

    def test_division_and_mod(self):
        inference = infer(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (div x y) (mod x y)))"
        )
        assert inference.root == inference.assumption + 1

    def test_no_constants_gives_floor_assumption(self):
        inference = infer(
            "(declare-fun x () Int)(declare-fun y () Int)(assert (< x y))"
        )
        assert inference.assumption == 3

    def test_node_widths_populated(self):
        script = parse_script("(declare-fun x () Int)(assert (= (* x x) 49))")
        inference = infer_bounds(script)
        term = script.assertions[0]
        assert inference.node_widths[term.tid] == inference.root
        square = term.args[0]
        assert inference.node_widths[square.tid] == 2 * inference.assumption


class TestRealInference:
    def test_dyadic_constants(self):
        inference = infer(
            "(declare-fun x () Real)(assert (= (* x x) 2.25))"
        )
        assert inference.theory == "real"
        assumption = inference.assumption
        assert isinstance(assumption, MagPrec)
        assert assumption.precision == 3  # dig(9/4) = 2, plus one

    def test_decimal_constant_precision_proxy(self):
        inference = infer("(declare-fun x () Real)(assert (> x 0.1))")
        # 1/10 has no finite binary expansion; assumption uses a finite
        # proxy and verification handles the inexactness.
        assert inference.assumption.precision is not None

    def test_multiplication_adds_both_components(self):
        inference = infer(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (> (* x y) 2.0))"
        )
        assumption = inference.assumption
        assert inference.root.magnitude >= 2 * assumption.magnitude
        assert inference.root.precision == 2 * assumption.precision

    def test_division_uses_modified_rule(self):
        inference = infer(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (> (/ x y) 2.0))"
        )
        # Same growth as multiplication (end of Section 4.2), never
        # infinite from division alone.
        assert inference.root.precision is not None


class TestRejections:
    def test_mixed_sorts_rejected(self):
        with pytest.raises(TransformError):
            infer(
                "(declare-fun x () Int)(declare-fun y () Real)"
                "(assert (> x 0))(assert (> y 0.0))"
            )

    def test_to_real_rejected(self):
        with pytest.raises(TransformError):
            infer(
                "(declare-fun x () Int)"
                "(assert (> (to_real x) 0.5))"
            )
