"""Tests for the Automizer-like driver and program suite."""

import pytest

from repro.termination import Automizer, termination_benchmark_suite
from repro.termination.automizer import NONTERMINATING, TERMINATING, UNKNOWN
from repro.termination.interp import RUNNING, TERMINATED, run_program
from repro.termination.lang import parse_program


class TestSuite:
    def test_suite_has_97_programs(self):
        suite = termination_benchmark_suite()
        assert len(suite) == 97

    def test_custom_count(self):
        assert len(termination_benchmark_suite(count=10)) == 10
        assert len(termination_benchmark_suite(count=120)) == 120

    def test_deterministic(self):
        first = termination_benchmark_suite(seed=5, count=20)
        second = termination_benchmark_suite(seed=5, count=20)
        assert [p.name for p, _ in first] == [p.name for p, _ in second]

    def test_expected_labels_match_execution(self):
        """Ground-truth labels agree with concrete interpretation."""
        for program, expected in termination_benchmark_suite(count=97):
            if expected is None:
                continue
            outcome = run_program(program, max_steps=3000)
            if expected == "terminating":
                assert outcome.status == TERMINATED, program.name
            else:
                assert outcome.status == RUNNING, program.name

    def test_family_mix(self):
        names = [p.name for p, _ in termination_benchmark_suite()]
        for family in ("countdown", "race", "diverge-geometric", "spiral", "fixed-point"):
            assert any(family in name for name in names), family


class TestAnalysis:
    def test_countdown_proved_terminating(self):
        program = parse_program("x := 20; while (x > 0) { x := x - 1; }")
        result = Automizer(use_staub=False).analyze(program)
        assert result.verdict == TERMINATING

    def test_divergence_proved_nonterminating(self):
        program = parse_program("x := 2; while (x > 0) { x := 2 * x; }")
        result = Automizer(use_staub=False).analyze(program)
        assert result.verdict == NONTERMINATING

    def test_query_log_is_populated(self):
        program = parse_program("x := 20; while (x > 0) { x := x - 1; }")
        result = Automizer(use_staub=False).analyze(program)
        assert result.queries
        assert all(q.baseline_status in ("sat", "unsat", "unknown") for q in result.queries)
        assert result.baseline_work >= result.final_work

    def test_staub_portfolio_never_slower(self):
        program = parse_program("x := 20; while (x > 0) { x := x - 2; }")
        result = Automizer(use_staub=True).analyze(program)
        for query in result.queries:
            assert query.final_work <= query.baseline_work

    def test_failed_candidates_precede_success(self):
        program = parse_program("x := 20; while (x > 0) { x := x - 1; }")
        result = Automizer(use_staub=False).analyze(program)
        # The aggressive-decrease candidate fails first.
        assert result.queries[0].baseline_status == "unsat"

    def test_verdicts_against_ground_truth_sample(self):
        automizer = Automizer(use_staub=False, budget=500_000)
        correct = 0
        checked = 0
        for program, expected in termination_benchmark_suite(count=24):
            if expected is None:
                continue
            verdict = automizer.analyze(program).verdict
            checked += 1
            if verdict == UNKNOWN:
                continue  # sound but incomplete is fine
            assert verdict == expected, program.name
            correct += 1
        assert checked > 0 and correct > 0
