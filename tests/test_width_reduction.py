"""Tests for the bitvector width-reduction extension (Section 6.4)."""

import pytest

from repro.core.width_reduction import reduce_and_solve, reduce_script
from repro.errors import TransformError
from repro.smtlib import build, parse_script
from repro.smtlib.evaluator import evaluate_assertions
from repro.smtlib.script import Script
from repro.smtlib.terms import Op


def wide_script():
    # The bvslt bound keeps the product below 2^8, so no narrow model can
    # rely on 8-bit wraparound: the reduction verifies deterministically.
    return parse_script(
        "(declare-fun x () (_ BitVec 24))(declare-fun y () (_ BitVec 24))"
        "(assert (= (bvmul x y) (_ bv77 24)))"
        "(assert (bvsgt x (_ bv1 24)))(assert (bvsgt y x))"
        "(assert (bvslt y (_ bv16 24)))"
    )


class TestReduceScript:
    def test_widths_rewritten(self):
        reduced, original = reduce_script(wide_script(), 8)
        assert original == 24
        assert all(s.width == 8 for s in reduced.declarations.values())

    def test_constants_rewritten(self):
        reduced, _ = reduce_script(wide_script(), 8)
        constants = [
            c.value.unsigned
            for a in reduced.assertions
            for c in a.constants()
        ]
        assert 77 in constants

    def test_oversized_constant_refused(self):
        script = parse_script(
            "(declare-fun x () (_ BitVec 24))(assert (bvsgt x (_ bv1000 24)))"
        )
        with pytest.raises(TransformError):
            reduce_script(script, 8)

    def test_widening_refused(self):
        with pytest.raises(TransformError):
            reduce_script(wide_script(), 24)

    def test_width_dependent_operators_refused(self):
        x = build.BitVecVar("x", 16)
        script = Script.from_assertions(
            [build.Eq(build.Extract(7, 0, x), build.BitVecConst(3, 8))]
        )
        with pytest.raises(TransformError):
            reduce_script(script, 8)

    def test_mixed_widths_refused(self):
        x = build.BitVecVar("x", 16)
        y = build.BitVecVar("y", 8)
        script = Script.from_assertions(
            [build.Eq(x, x), build.Eq(y, y)]
        )
        with pytest.raises(TransformError):
            reduce_script(script, 4)


class TestReduceAndSolve:
    def test_verified_model_satisfies_original(self):
        result = reduce_and_solve(wide_script(), 8, budget=1_200_000)
        assert result.case == "verified-sat"
        assert result.original_width == 24 and result.reduced_width == 8
        assert evaluate_assertions(wide_script().assertions, result.model)
        assert result.model["x"].width == 24  # model is for the original

    def test_reduction_is_cheaper_than_direct_solve(self):
        from repro.bv.solver import solve_bounded_script

        script = wide_script()
        direct = solve_bounded_script(script, max_work=10_000_000)
        reduced = reduce_and_solve(script, 8, budget=10_000_000)
        assert direct.status == "sat" and reduced.usable
        assert reduced.work < direct.work

    def test_unsat_narrow_says_nothing(self):
        # Satisfiable (x = 8), but the only 4-bit signed value above 6 is
        # 7, which violates the modulus constraint: the narrow constraint
        # is unsat even though the original is sat -- the
        # underapproximation case where the caller must revert.
        script = parse_script(
            "(declare-fun x () (_ BitVec 16))"
            "(assert (bvsgt x (_ bv6 16)))"
            "(assert (= (bvsmod x (_ bv5 16)) (_ bv3 16)))"
        )
        from repro.bv.solver import solve_bounded_script

        assert solve_bounded_script(script, max_work=2_000_000).status == "sat"
        result = reduce_and_solve(script, 4, budget=1_200_000)
        assert result.case == "reduced-unsat"
        assert not result.usable

    def test_unreducible_script_reports_failure(self):
        x = build.BitVecVar("x", 16)
        script = Script.from_assertions(
            [build.Eq(build.bv_binary(Op.BVSHL, x, x), build.BitVecConst(4, 16))]
        )
        result = reduce_and_solve(script, 8)
        assert result.case == "reduction-failed"
