"""SLOT pass tests: rewrites, and the semantics-preservation property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.slot.passes import (
    AlgebraicSimplify,
    AssertionCleanup,
    Canonicalize,
    ConstantFold,
    StrengthReduce,
)
from repro.slot.manager import PassManager, optimize_script
from repro.smtlib import build
from repro.smtlib.evaluator import evaluate
from repro.smtlib.script import Script
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue


def run_pass(pass_instance, term):
    from repro.smtlib.terms import map_terms

    return map_terms([term], pass_instance.rewrite)[0]


class TestConstantFold:
    def test_folds_bv_arithmetic(self):
        term = build.BVAdd(build.BitVecConst(3, 8), build.BitVecConst(4, 8))
        folded = run_pass(ConstantFold(), term)
        assert folded.is_const and folded.value.unsigned == 7

    def test_folds_nested(self):
        term = build.BVMul(
            build.BVAdd(build.BitVecConst(1, 8), build.BitVecConst(2, 8)),
            build.BitVecConst(5, 8),
        )
        folded = run_pass(ConstantFold(), term)
        assert folded.value.unsigned == 15

    def test_folds_comparisons(self):
        term = build.bv_compare(
            Op.BVULT, build.BitVecConst(3, 8), build.BitVecConst(4, 8)
        )
        assert run_pass(ConstantFold(), term) is build.TRUE

    def test_folds_overflow_predicates(self):
        term = build.bv_overflow(
            Op.BVSMULO, build.BitVecConst(100, 8), build.BitVecConst(2, 8)
        )
        assert run_pass(ConstantFold(), term) is build.TRUE

    def test_leaves_variables_alone(self):
        x = build.BitVecVar("x", 8)
        term = build.BVAdd(x, build.BitVecConst(0, 8))
        assert run_pass(ConstantFold(), term) is term


class TestAlgebraicSimplify:
    def test_add_zero(self):
        x = build.BitVecVar("x", 8)
        term = build.BVAdd(x, build.BitVecConst(0, 8))
        assert run_pass(AlgebraicSimplify(), term) is x

    def test_mul_one_and_zero(self):
        x = build.BitVecVar("x", 8)
        assert run_pass(AlgebraicSimplify(), build.BVMul(x, build.BitVecConst(1, 8))) is x
        zero = run_pass(AlgebraicSimplify(), build.BVMul(x, build.BitVecConst(0, 8)))
        assert zero.is_const and zero.value.unsigned == 0

    def test_sub_self(self):
        x = build.BitVecVar("x", 8)
        result = run_pass(AlgebraicSimplify(), build.BVSub(x, x))
        assert result.is_const and result.value.unsigned == 0

    def test_xor_self(self):
        x = build.BitVecVar("x", 8)
        result = run_pass(
            AlgebraicSimplify(), build.bv_binary(Op.BVXOR, x, x)
        )
        assert result.is_const and result.value.unsigned == 0

    def test_and_with_ones(self):
        x = build.BitVecVar("x", 8)
        term = build.bv_binary(Op.BVAND, x, build.BitVecConst(255, 8))
        assert run_pass(AlgebraicSimplify(), term) is x

    def test_double_negations(self):
        x = build.BitVecVar("x", 8)
        assert run_pass(AlgebraicSimplify(), build.BVNot(build.BVNot(x))) is x
        assert run_pass(AlgebraicSimplify(), build.BVNeg(build.BVNeg(x))) is x
        p = build.BoolVar("p")
        assert run_pass(AlgebraicSimplify(), build.Not(build.Not(p))) is p

    def test_reflexive_comparisons(self):
        x = build.BitVecVar("x", 8)
        assert run_pass(AlgebraicSimplify(), build.Eq(x, x)) is build.TRUE
        assert (
            run_pass(AlgebraicSimplify(), build.bv_compare(Op.BVULT, x, x))
            is build.FALSE
        )

    def test_and_short_circuit(self):
        p = build.BoolVar("p")
        term = build.And(p, build.FALSE)
        assert run_pass(AlgebraicSimplify(), term) is build.FALSE

    def test_ite_same_branches(self):
        p = build.BoolVar("p")
        x = build.BitVecVar("x", 8)
        assert run_pass(AlgebraicSimplify(), build.Ite(p, x, x)) is x


class TestStrengthReduce:
    def test_mul_by_power_of_two_becomes_shift(self):
        x = build.BitVecVar("x", 8)
        term = build.BVMul(x, build.BitVecConst(8, 8))
        reduced = run_pass(StrengthReduce(), term)
        assert reduced.op is Op.BVSHL
        assert reduced.args[1].value.unsigned == 3

    def test_udiv_by_power_of_two(self):
        x = build.BitVecVar("x", 8)
        term = build.bv_binary(Op.BVUDIV, x, build.BitVecConst(4, 8))
        reduced = run_pass(StrengthReduce(), term)
        assert reduced.op is Op.BVLSHR

    def test_urem_by_power_of_two_becomes_mask(self):
        x = build.BitVecVar("x", 8)
        term = build.bv_binary(Op.BVUREM, x, build.BitVecConst(8, 8))
        reduced = run_pass(StrengthReduce(), term)
        assert reduced.op is Op.BVAND
        assert reduced.args[1].value.unsigned == 7

    def test_non_power_untouched(self):
        x = build.BitVecVar("x", 8)
        term = build.BVMul(x, build.BitVecConst(6, 8))
        assert run_pass(StrengthReduce(), term) is term


class TestCanonicalize:
    def test_mirrored_products_merge(self):
        x = build.BitVecVar("x", 8)
        y = build.BitVecVar("y", 8)
        left = run_pass(Canonicalize(), build.BVMul(x, y))
        right = run_pass(Canonicalize(), build.BVMul(y, x))
        assert left is right

    def test_and_deduplicates(self):
        p = build.BoolVar("p")
        q = build.BoolVar("q")
        term = build.And(p, q, p)
        result = run_pass(Canonicalize(), term)
        assert len(result.args) == 2


class TestAssertionCleanup:
    def test_drops_true_and_duplicates(self):
        p = build.BoolVar("p")
        kept, falsified = AssertionCleanup().run([build.TRUE, p, p])
        assert kept == [p]
        assert not falsified

    def test_false_dominates(self):
        p = build.BoolVar("p")
        kept, falsified = AssertionCleanup().run([p, build.FALSE])
        assert falsified
        assert kept == [build.FALSE]


class TestSemanticsPreservation:
    """The load-bearing property: optimization never changes models."""

    BIN_OPS = [
        Op.BVADD, Op.BVSUB, Op.BVMUL, Op.BVAND, Op.BVOR, Op.BVXOR,
        Op.BVUDIV, Op.BVUREM, Op.BVSHL, Op.BVLSHR,
    ]

    def _random_term(self, data, depth):
        width = 4
        if depth == 0 or data.draw(st.booleans()):
            if data.draw(st.booleans()):
                return build.BitVecVar(data.draw(st.sampled_from("xy")), width)
            return build.BitVecConst(data.draw(st.integers(0, 15)), width)
        op = data.draw(st.sampled_from(self.BIN_OPS))
        return build.bv_binary(
            op, self._random_term(data, depth - 1), self._random_term(data, depth - 1)
        )

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_optimized_script_has_same_models(self, data):
        atom_count = data.draw(st.integers(1, 3))
        assertions = []
        for _ in range(atom_count):
            left = self._random_term(data, 2)
            right = self._random_term(data, 2)
            kind = data.draw(st.integers(0, 2))
            if kind == 0:
                assertions.append(build.Eq(left, right))
            elif kind == 1:
                assertions.append(build.bv_compare(Op.BVULT, left, right))
            else:
                assertions.append(build.Not(build.Eq(left, right)))
        script = Script.from_assertions(assertions)
        script.declarations.setdefault("x", build.BitVecVar("x", 4).sort)
        script.declarations.setdefault("y", build.BitVecVar("y", 4).sort)
        optimized, _ = optimize_script(script)
        for xv in range(0, 16, 3):
            for yv in range(0, 16, 3):
                env = {"x": BVValue(xv, 4), "y": BVValue(yv, 4)}
                original = all(evaluate(a, env) for a in script.assertions)
                rewritten = all(evaluate(a, env) for a in optimized.assertions)
                assert original == rewritten


class TestPassManager:
    def test_fixpoint_reached(self):
        x = build.BitVecVar("x", 8)
        # ((x + 0) * 1) * 4: needs fold -> simplify -> strength-reduce.
        term = build.BVMul(
            build.BVMul(build.BVAdd(x, build.BitVecConst(0, 8)), build.BitVecConst(1, 8)),
            build.BitVecConst(4, 8),
        )
        script = Script.from_assertions(
            [build.Eq(term, build.BitVecConst(20, 8))]
        )
        optimized, stats = optimize_script(script)
        text_ops = {
            sub.op
            for assertion in optimized.assertions
            for sub in assertion.subterms()
        }
        assert Op.BVSHL in text_ops
        assert Op.BVMUL not in text_ops

    def test_unbounded_script_rejected(self):
        from repro.errors import SolverError
        from repro.smtlib import parse_script

        script = parse_script("(declare-fun x () Int)(assert (> x 0))")
        with pytest.raises(SolverError):
            PassManager().run(script)

    def test_declarations_preserved(self):
        x = build.BitVecVar("x", 8)
        script = Script.from_assertions([build.Eq(x, x)])  # simplifies to true
        optimized, _ = optimize_script(script)
        assert "x" in optimized.declarations
