"""Tests for sort correspondences (Definition 4.1) and their properties."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correspondence import (
    FixedPointShape,
    INT_OVERFLOW_GUARDS,
    INT_TO_BITVECTOR,
    REAL_TO_FIXEDPOINT,
    REAL_TO_FLOATINGPOINT,
)
from repro.errors import TransformError
from repro.smtlib.sorts import fp_sort
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue, FPValue


class TestIntCorrespondence:
    @given(st.integers(-128, 127))
    def test_phi_inverse_is_left_inverse(self, value):
        """Property (ii): phi is a partial surjection with exact inverse."""
        image = INT_TO_BITVECTOR.phi(value, 8)
        assert image is not None
        assert INT_TO_BITVECTOR.phi_inverse(image, 8) == value

    def test_phi_is_partial(self):
        assert INT_TO_BITVECTOR.phi(128, 8) is None
        assert INT_TO_BITVECTOR.phi(-129, 8) is None
        assert INT_TO_BITVECTOR.phi(127, 8) is not None

    @given(st.integers(-(2**10), 2**10 - 1))
    def test_monotone_widths_nest(self, value):
        """Property (iii): gamma images nest as widths grow."""
        narrow = INT_TO_BITVECTOR.phi(value, 11)
        wide = INT_TO_BITVECTOR.phi(value, 12)
        assert narrow is not None and wide is not None
        assert wide.signed == narrow.signed

    def test_operator_map_is_injective(self):
        targets = list(INT_TO_BITVECTOR.operator_map.values()) + list(
            INT_TO_BITVECTOR.comparison_map.values()
        )
        assert len(targets) == len(set(targets))

    def test_mapping_contents(self):
        assert INT_TO_BITVECTOR.map_operator(Op.MUL) is Op.BVMUL
        assert INT_TO_BITVECTOR.map_operator(Op.LT) is Op.BVSLT
        with pytest.raises(TransformError):
            INT_TO_BITVECTOR.map_operator(Op.RDIV)

    def test_every_arithmetic_op_has_a_guard(self):
        for op in (Op.BVADD, Op.BVSUB, Op.BVMUL, Op.BVSDIV, Op.BVNEG):
            assert op in INT_OVERFLOW_GUARDS


class TestFixedPointShape:
    def test_width_and_scale(self):
        shape = FixedPointShape(8, 4)
        assert shape.width == 12
        assert shape.scale == 16

    def test_minimums_enforced(self):
        shape = FixedPointShape(0, -1)
        assert shape.magnitude_bits >= 2 and shape.precision_bits == 0

    def test_equality_and_hash(self):
        assert FixedPointShape(8, 4) == FixedPointShape(8, 4)
        assert len({FixedPointShape(8, 4), FixedPointShape(8, 4)}) == 1


class TestRealFixedPointCorrespondence:
    @given(st.integers(-500, 500))
    def test_dyadic_roundtrip(self, numerator):
        shape = FixedPointShape(10, 4)
        value = Fraction(numerator, 16)
        image = REAL_TO_FIXEDPOINT.phi(value, shape)
        assert image is not None
        assert REAL_TO_FIXEDPOINT.phi_inverse(image, shape) == value

    def test_non_dyadic_has_no_image(self):
        shape = FixedPointShape(10, 4)
        assert REAL_TO_FIXEDPOINT.phi(Fraction(1, 10), shape) is None
        assert REAL_TO_FIXEDPOINT.phi(Fraction(1, 32), shape) is None

    def test_magnitude_overflow_has_no_image(self):
        shape = FixedPointShape(4, 2)  # 6 bits total: [-32, 31] scaled by 4
        assert REAL_TO_FIXEDPOINT.phi(Fraction(8), shape) is None
        assert REAL_TO_FIXEDPOINT.phi(Fraction(7), shape) is not None

    def test_phi_inverse_total_on_bounded_side(self):
        shape = FixedPointShape(6, 2)
        for bits in range(1 << shape.width):
            value = REAL_TO_FIXEDPOINT.phi_inverse(BVValue(bits, shape.width), shape)
            assert isinstance(value, Fraction)


class TestRealFloatingPointCorrespondence:
    def test_exact_value_roundtrip(self):
        sort = fp_sort(8, 24)
        image = REAL_TO_FLOATINGPOINT.phi(Fraction(3, 4), sort)
        assert image is not None
        assert REAL_TO_FLOATINGPOINT.phi_inverse(image, sort) == Fraction(3, 4)

    def test_inexact_value_has_no_image(self):
        sort = fp_sort(8, 24)
        assert REAL_TO_FLOATINGPOINT.phi(Fraction(1, 10), sort) is None

    def test_pathological_values_have_no_preimage(self):
        sort = fp_sort(8, 24)
        with pytest.raises(TransformError):
            REAL_TO_FLOATINGPOINT.phi_inverse(FPValue.nan(8, 24), sort)

    def test_operator_map(self):
        assert REAL_TO_FLOATINGPOINT.map_operator(Op.ADD) is Op.FP_ADD
        assert REAL_TO_FLOATINGPOINT.map_operator(Op.LE) is Op.FP_LEQ
