"""Incremental-use contract of the CDCL core.

The width-refinement engine leans on three SatSolver behaviors that the
one-shot tests never exercise: interleaving ``solve(assumptions)`` with
``add_clause``, the final-conflict (assumption core) staying correct
across re-solves, and the permanent root-UNSAT state. These tests pin
them down directly at the SAT layer.
"""

from repro.sat.solver import SAT, UNSAT, SatSolver


def _exactly_one(solver, literals):
    solver.add_clause(list(literals))
    for i, a in enumerate(literals):
        for b in literals[i + 1 :]:
            solver.add_clause([-a, -b])


class TestInterleavedSolving:
    def test_add_clause_between_assumption_solves(self):
        solver = SatSolver(3)
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) == SAT
        assert solver.model()[2] is True
        # Tighten the problem mid-stream: clauses added after a solve
        # take effect on the next call.
        solver.add_clause([-2, 3])
        solver.add_clause([-3])
        assert solver.solve(assumptions=[-1]) == UNSAT
        # Without the blocking assumption the other branch still works.
        assert solver.solve() == SAT
        assert solver.model()[1] is True

    def test_assumptions_do_not_persist(self):
        solver = SatSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1, -2]) == UNSAT
        # The failed assumptions were temporary: the solver is not dead.
        assert solver.okay()
        assert solver.solve() == SAT

    def test_clause_added_while_assignment_in_progress(self):
        # add_clause after a SAT call must cope with the leftover trail
        # (it backtracks to level 0 internally).
        solver = SatSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve() == SAT
        first = solver.model()
        blocking = [(-v if first[v] else v) for v in (1, 2)]
        solver.add_clause(blocking)
        assert solver.solve() == SAT
        second = solver.model()
        assert second != first


class TestFinalConflict:
    def test_core_is_subset_of_assumptions(self):
        solver = SatSolver(4)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, -3])
        # 1 forces 2 forces not-3; assuming 3 too is contradictory, while
        # assumption 4 is irrelevant and must stay out of the core.
        assert solver.solve(assumptions=[1, 3, 4]) == UNSAT
        core = solver.final_conflict()
        assert set(core) <= {-1, -3, -4}
        assert -4 not in core
        assert -3 in core

    def test_core_resets_between_solves(self):
        solver = SatSolver(3)
        solver.add_clause([-1, -2])
        assert solver.solve(assumptions=[1, 2]) == UNSAT
        assert solver.final_conflict()
        # A later satisfiable call must not leave the stale core behind.
        assert solver.solve(assumptions=[1]) == SAT
        # And a later *different* conflict reports its own assumptions.
        solver.add_clause([-3])
        assert solver.solve(assumptions=[3]) == UNSAT
        assert solver.final_conflict() == [-3]

    def test_negated_core_is_refutable(self):
        # The contract: the conjunction of the failing assumptions is
        # inconsistent with the clauses, i.e. asserting them as units
        # kills the solver at the root.
        solver = SatSolver(3)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, -1])
        assert solver.solve(assumptions=[1]) == UNSAT
        failed = [-lit for lit in solver.final_conflict()]
        assert failed  # non-root conflict
        replay = SatSolver(3)
        replay.add_clause([-1, 2])
        replay.add_clause([-2, 3])
        replay.add_clause([-3, -1])
        alive = all(replay.add_clause([lit]) for lit in failed)
        assert not (alive and replay.solve() == SAT)


class TestPermanentUnsat:
    def test_root_conflict_is_permanent(self):
        solver = SatSolver(1)
        solver.add_clause([1])
        assert not solver.add_clause([-1])
        assert not solver.okay()
        # Every later solve is UNSAT regardless of assumptions, with an
        # empty final conflict: no assumption subset is to blame.
        assert solver.solve() == UNSAT
        assert solver.final_conflict() == []
        assert solver.solve(assumptions=[1]) == UNSAT
        assert solver.final_conflict() == []

    def test_root_conflict_found_by_search_is_permanent(self):
        solver = SatSolver(2)
        _exactly_one(solver, [1, 2])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 1])
        assert solver.solve() == UNSAT
        assert not solver.okay()
        assert solver.final_conflict() == []
        assert solver.solve(assumptions=[1]) == UNSAT

    def test_add_clause_after_death_refuses(self):
        solver = SatSolver(1)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.add_clause([1])

    def test_dead_solver_answers_without_search_work(self):
        # Regression: a permanently root-UNSAT solver used to re-enter
        # the search loop on every call. Post-death solves must be pure
        # lookups -- deterministic UNSAT, empty core, zero new counters --
        # so a session whose hard clauses died keeps answering its
        # remaining checks for free.
        solver = SatSolver(2)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.okay()
        before = solver.stats.as_dict()
        for assumptions in ((), [2], [-2], [2, -2]):
            assert solver.solve(assumptions=assumptions) == UNSAT
            assert solver.final_conflict() == []
        assert solver.stats.as_dict() == before


class TestLearnedClauseRetention:
    def _pigeonhole(self, holes):
        """PHP(holes+1, holes): small, UNSAT, conflict-rich."""
        solver = SatSolver(0)
        pigeons = holes + 1
        var = lambda p, h: 1 + p * holes + h
        solver.grow_to(pigeons * holes)
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, holes + 1):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        return solver, var

    def test_learned_clauses_survive_solve_calls(self):
        solver, var = self._pigeonhole(4)
        # Assume one placement away from triviality so the conflict is
        # assumption-level, not root-level, and the solver stays alive.
        assert solver.solve(assumptions=[var(0, 0)]) == UNSAT
        assert solver.okay()
        learned = solver.learned_count()
        assert learned > 0
        before = solver.stats.work()
        assert solver.solve(assumptions=[var(0, 1)]) == UNSAT
        # The database was retained across the calls (reduction may trim,
        # but this instance is far below the reduction threshold).
        assert solver.learned_count() >= learned
        assert solver.stats.work() > before  # stats accumulate, not reset
