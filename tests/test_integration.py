"""Cross-module integration tests: the full story on single constraints.

Each test walks a constraint through the complete pipeline the way the
evaluation harness does -- baseline solve, arbitrage, verification,
portfolio -- and checks the *semantic* agreements between the layers
(bounded answers vs unbounded answers vs exact evaluation).
"""

import pytest

from repro.core import Staub
from repro.core.pipeline import portfolio_time
from repro.evaluation.runner import make_staub
from repro.slot import optimize_script
from repro.smtlib import parse_script, print_script
from repro.smtlib.evaluator import evaluate_assertions
from repro.solver import solve_script


class TestAgreementBetweenLayers:
    CONSTRAINTS = [
        # (text, expected status)
        ("(declare-fun x () Int)(assert (= (* x x) 169))", "sat"),
        ("(declare-fun x () Int)(assert (= (* x x) 170))", "unsat"),
        (
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (+ (* x x) (* y y)) 125))(assert (< 0 x))(assert (< x y))",
            "sat",
        ),
        (
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (= (+ (* 7 a) (* 11 b)) 59))(assert (>= a 0))(assert (>= b 0))",
            "unsat",
        ),
        (
            "(declare-fun x () Real)(assert (= (* 4.0 x) 3.0))",
            "sat",
        ),
    ]

    @pytest.mark.parametrize("text,expected", CONSTRAINTS)
    def test_profiles_agree_with_ground_truth(self, text, expected):
        script = parse_script(text)
        for profile in ("zorro", "corvus"):
            result = solve_script(script, budget=1_200_000, profile=profile)
            if not result.is_unknown:
                assert result.status == expected, (profile, text)
            if result.is_sat:
                assert evaluate_assertions(script.assertions, result.model)

    @pytest.mark.parametrize("text,expected", CONSTRAINTS)
    def test_arbitrage_never_contradicts(self, text, expected):
        script = parse_script(text)
        report = Staub().run(script, budget=1_200_000)
        if report.case == "verified-sat":
            assert expected == "sat"
            assert evaluate_assertions(script.assertions, report.model)


class TestRoundTripThroughSmtlib:
    def test_transformed_script_roundtrips_and_solves(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (= (* x y) 143))(assert (> x 1))(assert (< x y))"
        )
        transformed, _, _ = Staub().transform(script)
        reparsed = parse_script(print_script(transformed.script))
        result = solve_script(reparsed, budget=1_200_000)
        assert result.is_sat
        back = transformed.back_map(result.model)
        assert evaluate_assertions(script.assertions, back)

    def test_optimized_script_roundtrips(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (= (* x 8) 88))"
        )
        transformed, _, _ = Staub().transform(script)
        optimized, _ = optimize_script(transformed.script)
        reparsed = parse_script(print_script(optimized))
        result = solve_script(reparsed, budget=1_200_000)
        assert result.is_sat
        assert transformed.back_map(result.model)["x"] == 11


class TestPortfolioInvariants:
    def test_portfolio_never_worse_on_suite_sample(self):
        from repro.benchgen import suite_for

        suite = suite_for("QF_NIA", seed=5, scale=0.15)
        staub = make_staub("staub")
        for bench in suite:
            baseline = solve_script(bench.script, budget=400_000, profile="zorro")
            t_pre = 400_000 if baseline.is_unknown else baseline.work
            report = staub.run(bench.script, budget=400_000)
            final = portfolio_time(t_pre, report)
            assert final <= t_pre
            if report.case == "verified-sat" and bench.expected == "unsat":
                pytest.fail(f"verified a model for unsat benchmark {bench.name}")

    def test_verified_models_check_against_originals(self):
        from repro.benchgen import suite_for

        for logic in ("QF_NIA", "QF_LIA", "QF_NRA", "QF_LRA"):
            suite = suite_for(logic, seed=5, scale=0.12)
            staub = make_staub("staub")
            for bench in suite:
                report = staub.run(bench.script, budget=400_000)
                if report.case == "verified-sat":
                    assert evaluate_assertions(
                        bench.script.assertions, report.model
                    ), bench.name
