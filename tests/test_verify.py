"""Tests for the verification step (Section 4.4)."""

from fractions import Fraction

from repro.core.verify import SEMANTIC_DIFFERENCE, VERIFIED, verify_model
from repro.smtlib import parse_script


class TestVerify:
    def test_correct_model_verifies(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))"
        )
        outcome = verify_model(script, {"x": 7, "y": 8, "z": 0})
        assert outcome.ok
        assert outcome.status == VERIFIED
        assert outcome.work > 0

    def test_wrong_model_is_semantic_difference(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 10))"
        )
        outcome = verify_model(script, {"x": 3})
        assert not outcome.ok
        assert outcome.status == SEMANTIC_DIFFERENCE
        assert outcome.failing_assertion == 0

    def test_failing_assertion_index(self):
        script = parse_script(
            "(declare-fun x () Int)"
            "(assert (> x 0))(assert (> x 5))(assert (> x 100))"
        )
        outcome = verify_model(script, {"x": 10})
        assert outcome.failing_assertion == 2

    def test_missing_variable_is_difference_not_crash(self):
        script = parse_script("(declare-fun x () Int)(assert (> x 0))")
        outcome = verify_model(script, {})
        assert not outcome.ok

    def test_real_models_use_exact_arithmetic(self):
        script = parse_script(
            "(declare-fun x () Real)(assert (= (* x 3.0) 1.0))"
        )
        assert verify_model(script, {"x": Fraction(1, 3)}).ok
        # A floating-point-style approximation of 1/3 must NOT verify.
        approximation = Fraction(6004799503160661, 2**54)
        assert not verify_model(script, {"x": approximation}).ok

    def test_work_scales_with_script_size(self):
        small = parse_script("(declare-fun x () Int)(assert (> x 0))")
        big = parse_script(
            "(declare-fun x () Int)"
            + "".join(f"(assert (> (* x x) {i}))" for i in range(20))
        )
        small_work = verify_model(small, {"x": 1}).work
        big_work = verify_model(big, {"x": 100}).work
        assert big_work > small_work
