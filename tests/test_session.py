"""Differential fuzzing and unit tests for push/pop solving sessions.

The oracle is the non-incremental path itself: after every ``check-sat``
the fuzzer re-solves the *flattened* live stack from scratch through
:func:`repro.solver.solve_script`. The session's verdict must be
byte-identical, and when both sides produce models, both models must
bind exactly the declared variables and satisfy every live assertion.

Two trace families run >= 200 seeded traces in total:

- bounded BV traces exercise the persistent assumption-slice backend
  (the interesting lane: retraction, clause reuse, root conflicts);
- benchgen LIA/NIA traces exercise the unbounded fallback lane.
"""

import random

import pytest

from repro.cache import SolveCache, activated
from repro.errors import SessionError, SmtLibError
from repro.smtlib import parse_script, parse_term
from repro.smtlib.evaluator import evaluate_assertions
from repro.smtlib.sorts import BOOL, INT, bv_sort
from repro.solver import solve_script
from repro.solver.session import Session, open_session, run_script_session

# -- trace generation ---------------------------------------------------------

_BV_DECLS = {"v": bv_sort(8), "w": bv_sort(8), "u": bv_sort(8)}
_BV_SHAPES = (
    "(bvult {a} {b})",
    "(bvule {a} (_ bv{k} 8))",
    "(= (bvadd {a} {b}) (_ bv{k} 8))",
    "(= (bvmul {a} {b}) (_ bv{k} 8))",
    "(bvugt (bvor {a} {b}) (_ bv{k} 8))",
    "(= (bvxor {a} {b}) (_ bv{k} 8))",
    "(bvule (bvsub {a} {b}) (_ bv{k} 8))",
)


def _bv_pool(rng):
    """A seeded pool of BV atoms over three shared variables."""
    atoms = []
    for _ in range(10):
        shape = rng.choice(_BV_SHAPES)
        text = shape.format(
            a=rng.choice("vwu"), b=rng.choice("vwu"), k=rng.randrange(256)
        )
        atoms.append(parse_term(text, _BV_DECLS))
    return atoms


def _check_against_oracle(session, budget, profile):
    """One session check, differentially validated against a scratch solve."""
    result = session.check_sat(budget=budget)
    flattened = session.flattened_script()
    oracle = solve_script(flattened, budget=budget, profile=profile)
    assert result.status == oracle.status, (
        f"verdict drift at depth {session.depth} over "
        f"{len(session.assertions())} live assertions: session said "
        f"{result.status!r}, scratch re-solve said {oracle.status!r}"
    )
    if result.status == "sat":
        live = session.assertions()
        assert set(result.model) == set(session.declarations)
        assert set(oracle.model) == set(session.declarations)
        assert evaluate_assertions(live, result.model), (
            "session model does not satisfy the live assertions"
        )
        assert evaluate_assertions(live, oracle.model), (
            "scratch model does not satisfy the live assertions"
        )


def _drive(session, pool, rng, steps=12, budget=None, profile="zorro"):
    """One random push/assert/check/pop/reset trace with oracle checks."""
    session.assert_term(rng.choice(pool))
    for _ in range(steps):
        op = rng.choices(
            ("push", "pop", "assert", "check", "reset"),
            weights=(20, 15, 35, 25, 3),
        )[0]
        if op == "push":
            session.push(rng.choice((1, 1, 1, 2)))
        elif op == "pop":
            if session.depth:
                session.pop(rng.randrange(1, session.depth + 1))
        elif op == "assert":
            session.assert_term(rng.choice(pool))
        elif op == "reset":
            session.reset_assertions()
        else:
            _check_against_oracle(session, budget, profile)
    # Every trace ends on a check so it always exercises the oracle.
    _check_against_oracle(session, budget, profile)


class TestBoundedFuzz:
    """140 seeded traces on the persistent assumption-slice backend."""

    @pytest.mark.parametrize("seed", range(140))
    def test_trace_matches_scratch_resolve(self, seed):
        rng = random.Random(100_000 + seed)
        session = Session()
        _drive(session, _bv_pool(rng), rng)
        assert session.counters["check_sat"] >= 1
        assert session.counters["backend_checks"] == session.counters["check_sat"]
        assert session.counters["fallback_checks"] == 0


@pytest.fixture(scope="module")
def benchgen_pools():
    from repro.benchgen import suite_for

    pools = []
    for logic, scale in (("QF_LIA", 0.05), ("QF_NIA", 0.04)):
        for benchmark in suite_for(logic, seed=7, scale=scale):
            if benchmark.script.assertions:
                pools.append(list(benchmark.script.assertions))
    assert pools
    return pools


class TestUnboundedFuzz:
    """60 seeded traces through the unbounded fallback lane."""

    @pytest.mark.parametrize("seed", range(60))
    def test_trace_matches_scratch_resolve(self, seed, benchgen_pools):
        rng = random.Random(200_000 + seed)
        pool = benchgen_pools[seed % len(benchgen_pools)]
        session = Session()
        _drive(session, pool, rng, steps=8, budget=150_000)
        assert session.counters["fallback_checks"] == session.counters["check_sat"]
        assert session.counters["backend_checks"] == 0


# -- session API --------------------------------------------------------------


class TestSessionApi:
    def test_pop_below_depth_raises(self):
        session = Session()
        session.push(2)
        with pytest.raises(SessionError, match="below assertion-stack depth"):
            session.pop(3)
        # The failed pop must not have moved the stack.
        assert session.depth == 2

    def test_negative_counts_rejected(self):
        session = Session()
        with pytest.raises(SessionError):
            session.push(-1)
        with pytest.raises(SessionError):
            session.pop(-1)

    def test_redeclaration_with_new_sort_rejected(self):
        session = Session()
        session.declare("x", INT)
        with pytest.raises(SmtLibError, match="redeclared"):
            session.declare("x", BOOL)

    def test_non_bool_assertion_rejected(self):
        session = Session()
        with pytest.raises(SmtLibError, match="expected Bool"):
            session.assert_term(parse_term("(+ x 1)", {"x": INT}))

    def test_declarations_are_global(self):
        session = Session()
        session.push()
        session.assert_term(parse_term("(bvult v (_ bv9 8))", _BV_DECLS))
        session.pop()
        session.reset_assertions()
        assert "v" in session.declarations
        assert session.assertions() == []

    def test_pop_retracts_assertions(self):
        session = Session()
        session.assert_term(parse_term("(bvult v (_ bv9 8))", _BV_DECLS))
        session.push()
        session.assert_term(parse_term("(bvugt v (_ bv200 8))", _BV_DECLS))
        assert session.check_sat().status == "unsat"
        session.pop()
        result = session.check_sat()
        assert result.status == "sat"
        assert evaluate_assertions(session.assertions(), result.model)

    def test_contradiction_is_retractable_not_poisoning(self):
        # Assertions enter the backend as assumption slices, so even a
        # plainly false assertion never hardens into a root conflict:
        # dropping it (reset) must bring the session back to sat. The
        # genuinely permanent root-UNSAT fast path lives at the SAT layer
        # and is covered in tests/test_sat_incremental.py.
        session = Session()
        session.assert_term(parse_term("(bvult v v)", _BV_DECLS))
        assert session.check_sat().status == "unsat"
        assert session.check_sat().status == "unsat"
        session.reset_assertions()
        session.assert_term(parse_term("(bvult v w)", _BV_DECLS))
        result = session.check_sat()
        assert result.status == "sat"
        assert evaluate_assertions(session.assertions(), result.model)

    def test_equal_stacks_share_cache_entries(self):
        # Two sessions reach the same live stack through different
        # push/pop interleavings: the scope-prefix keys must collide.
        a = parse_term("(bvult v w)", _BV_DECLS)
        b = parse_term("(bvule w (_ bv50 8))", _BV_DECLS)
        store = SolveCache()
        one = Session(cache=store)
        one.assert_term(a)
        one.push()
        one.assert_term(b)
        first = one.check_sat()
        two = Session(cache=store)
        two.assert_term(a)
        two.push()
        two.assert_term(parse_term("(bvugt w (_ bv250 8))", _BV_DECLS))
        two.pop()
        two.push()
        two.assert_term(b)
        second = two.check_sat()
        assert two.counters["cache_hits"] == 1
        assert second.status == first.status

    def test_different_scopes_do_not_share_entries(self):
        # Same live conjunction, different scope structure: the prefix
        # chain distinguishes them (a pop must not resurrect the wrong
        # cached answer later).
        a = parse_term("(bvult v w)", _BV_DECLS)
        store = SolveCache()
        one = Session(cache=store)
        one.assert_term(a)
        one.check_sat()
        two = Session(cache=store)
        two.push()
        two.assert_term(a)
        two.check_sat()
        assert two.counters["cache_hits"] == 0

    def test_open_session_facade(self):
        from repro.solver import open_session as facade_open

        session = facade_open(budget=1_000_000)
        assert isinstance(session, Session)
        assert session.budget == 1_000_000
        assert open_session().profile == "zorro"

    def test_run_script_session_replays_commands(self):
        script = parse_script(
            "(declare-fun v () (_ BitVec 8))\n"
            "(assert (bvult v (_ bv10 8)))\n"
            "(check-sat)\n"
            "(push 1)\n"
            "(assert (bvugt v (_ bv200 8)))\n"
            "(check-sat)\n"
            "(pop 1)\n"
            "(check-sat)\n"
            "(reset-assertions)\n"
            "(check-sat)\n"
        )
        results, session = run_script_session(script)
        assert [r.status for r in results] == ["sat", "unsat", "sat", "sat"]
        assert session.depth == 0
        assert session.counters["check_sat"] == 4

    def test_unbounded_fallback_matches_facade(self):
        session = Session()
        session.assert_term(parse_term("(> x 3)", {"x": INT}))
        session.push()
        session.assert_term(parse_term("(< x 2)", {"x": INT}))
        assert session.check_sat().status == "unsat"
        session.pop()
        result = session.check_sat()
        oracle = solve_script(session.flattened_script())
        assert result.status == oracle.status == "sat"
        assert session.counters["fallback_checks"] == 2

    def test_process_wide_cache_is_honoured(self):
        store = SolveCache()
        with activated(store):
            session = Session()
            session.assert_term(parse_term("(bvult v w)", _BV_DECLS))
            session.check_sat()
            again = Session()
            again.assert_term(parse_term("(bvult v w)", _BV_DECLS))
            again.check_sat()
        assert again.counters["cache_hits"] == 1
