"""Regression: a warm persistent cache means zero fresh solves.

The in-process ``ExperimentCache`` memoization only ever covered one
runner instance; these tests pin the persistent-cache behaviour that a
*second* runner (or a second ``run_all`` invocation) performs no fresh
baseline or arbitrage solves at all -- every answer is served from the
:class:`~repro.cache.SolveCache` and counted as ``eval.cache_hit``.
"""

import json

import pytest

from repro import telemetry
from repro.cache import SolveCache
from repro.evaluation import run_all
from repro.evaluation.runner import ExperimentCache
from repro.telemetry.metrics import MetricsRegistry

SEED = 11
SCALE = 0.1
TIMEOUT = 200_000


@pytest.fixture(autouse=True)
def telemetry_off():
    telemetry.disable()
    telemetry.get_registry().reset()
    yield
    telemetry.disable()
    telemetry.get_registry().reset()


def _counters(registry, prefix):
    return {k: v for k, v in registry.snapshot().items() if k.startswith(prefix)}


def _drive(cache, logic="QF_LIA"):
    """Touch a small baseline + arbitrage grid the way the tables do."""
    rows = []
    for benchmark in cache.suite(logic).benchmarks[:4]:
        rows.append(cache.row(logic, benchmark.name, "zorro", "staub"))
        rows.append(cache.row(logic, benchmark.name, "corvus", "fixed8"))
    return rows


class TestRunnerPersistentCache:
    def test_second_runner_performs_zero_fresh_solves(self, tmp_path):
        path = tmp_path / "cache.json"

        store = SolveCache(path=path)
        registry = MetricsRegistry()
        telemetry.enable(registry=registry)
        cold = _drive(ExperimentCache(SEED, SCALE, TIMEOUT, solve_cache=store))
        telemetry.disable()
        assert _counters(registry, "eval.baseline_runs"), "cold run must solve"
        assert _counters(registry, "eval.arbitrage_runs")
        store.save()

        registry = MetricsRegistry()
        telemetry.enable(registry=registry)
        warm = _drive(
            ExperimentCache(SEED, SCALE, TIMEOUT, solve_cache=SolveCache(path=path))
        )
        telemetry.disable()
        assert not _counters(registry, "eval.baseline_runs")
        assert not _counters(registry, "eval.arbitrage_runs")
        hits = _counters(registry, "eval.cache_hit")
        assert any("kind=baseline" in key for key in hits)
        assert any("kind=arbitrage" in key for key in hits)
        assert warm == cold

    def test_no_store_still_solves_fresh_each_time(self):
        for _ in range(2):
            registry = MetricsRegistry()
            telemetry.enable(registry=registry)
            _drive(ExperimentCache(SEED, SCALE, TIMEOUT))
            telemetry.disable()
            assert _counters(registry, "eval.baseline_runs")


class TestRunAllWarmCache:
    def _invoke(self, tmp_path, run_index):
        telemetry_path = tmp_path / f"telemetry-{run_index}.json"
        argv = [
            "--experiment",
            "table2",
            "--scale",
            str(SCALE),
            "--timeout",
            str(TIMEOUT),
            "--cache",
            str(tmp_path / "cache.json"),
            "--telemetry",
            str(telemetry_path),
        ]
        assert run_all.main(argv) == 0
        with open(telemetry_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def test_second_run_all_is_fully_cached(self, tmp_path, capsys):
        cold = self._invoke(tmp_path, 0)
        warm = self._invoke(tmp_path, 1)
        capsys.readouterr()  # drop the rendered tables

        cold_fresh = {
            k: v for k, v in cold["metrics"].items()
            if k.startswith(("eval.baseline_runs", "eval.arbitrage_runs"))
        }
        warm_fresh = {
            k: v for k, v in warm["metrics"].items()
            if k.startswith(("eval.baseline_runs", "eval.arbitrage_runs"))
        }
        assert cold_fresh, "cold run must perform fresh solves"
        assert warm_fresh == {}, f"warm run re-solved: {sorted(warm_fresh)}"
        assert any(
            k.startswith("eval.cache_hit") for k in warm["metrics"]
        )
        # The rendered cell summary (statuses, work, cases) is unchanged,
        # while the warm experiment span performs no solver work at all.
        assert warm["cells"] == cold["cells"]
        assert [e["experiment"] for e in warm["experiments"]] == [
            e["experiment"] for e in cold["experiments"]
        ]
        assert cold["experiments"][0]["work"] > 0
        assert warm["experiments"][0]["work"] == 0
