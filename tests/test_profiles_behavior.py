"""Behavioral contracts of the two solver profiles.

These pin the asymmetries the evaluation story depends on, so a future
engine change that erases them fails loudly here rather than silently
flattening the tables.
"""

from repro.smtlib import parse_script
from repro.solver import solve_script

#: An NIA instance whose witness magnitude (~30-90) is cheap for
#: contraction-guided search but expensive for shell enumeration.
MODERATE_WITNESS = (
    "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
    "(assert (= (+ (* x y) (* y z) (* x z)) 3119))"
    "(assert (> x 10))(assert (< x y))(assert (< y z))"
)

#: A tiny-witness instance both engines handle.
TINY_WITNESS = (
    "(declare-fun x () Int)(declare-fun y () Int)"
    "(assert (= (* x y) 6))(assert (> x 0))(assert (> y x))"
)


class TestProfileAsymmetry:
    def test_corvus_times_out_where_zorro_solves(self):
        script = parse_script(MODERATE_WITNESS)
        zorro = solve_script(script, budget=1_200_000, profile="zorro")
        corvus = solve_script(script, budget=1_200_000, profile="corvus")
        assert zorro.is_sat
        assert corvus.is_unknown

    def test_both_solve_tiny_witnesses(self):
        script = parse_script(TINY_WITNESS)
        for profile in ("zorro", "corvus"):
            assert solve_script(script, budget=400_000, profile=profile).is_sat

    def test_profiles_agree_on_linear_logics(self):
        script = parse_script(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (= (+ (* 3 a) (* 5 b)) 44))(assert (>= a 0))(assert (>= b 0))"
        )
        zorro = solve_script(script, budget=400_000, profile="zorro")
        corvus = solve_script(script, budget=400_000, profile="corvus")
        assert zorro.status == corvus.status == "sat"
        assert zorro.work == corvus.work  # literally the same engine

    def test_structural_unsat_caught_by_both(self):
        script = parse_script("(declare-fun x () Int)(assert (< (* x x) 0))")
        for profile in ("zorro", "corvus"):
            result = solve_script(script, budget=200_000, profile=profile)
            assert result.is_unsat
