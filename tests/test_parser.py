"""Tests for the SMT-LIB parser."""

from fractions import Fraction

import pytest

from repro.errors import ParseError
from repro.smtlib import build, parse_script, parse_term
from repro.smtlib.sorts import BOOL, INT, REAL, bv_sort, fp_sort
from repro.smtlib.terms import Op


class TestCommands:
    def test_declare_fun_and_assert(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 3))(check-sat)"
        )
        assert script.declarations == {"x": INT}
        assert len(script.assertions) == 1

    def test_declare_const(self):
        script = parse_script("(declare-const b Bool)(assert b)")
        assert script.declarations == {"b": BOOL}

    def test_set_logic(self):
        script = parse_script("(set-logic QF_NIA)(declare-fun x () Int)(assert (= x 1))")
        assert script.logic == "QF_NIA"

    def test_logic_inferred_when_missing(self):
        script = parse_script("(declare-fun x () Int)(assert (= (* x x) 4))")
        assert script.logic == "QF_NIA"

    def test_set_info_ignored(self):
        script = parse_script('(set-info :status sat)(declare-fun x () Int)(assert (= x 1))')
        assert len(script.assertions) == 1

    def test_define_fun_zero_arity_macro(self):
        script = parse_script(
            "(declare-fun x () Int)"
            "(define-fun twice () Int (* 2 x))"
            "(assert (= twice 6))"
        )
        assertion = script.assertions[0]
        assert assertion.args[0].op is Op.MUL

    def test_define_fun_with_parameters(self):
        script = parse_script(
            "(declare-fun a () Int)"
            "(define-fun sq ((n Int)) Int (* n n))"
            "(assert (= (sq a) 49))"
        )
        assertion = script.assertions[0]
        square = assertion.args[0]
        assert square.op is Op.MUL
        assert square.args[0].name == "a"

    def test_unknown_command_rejected(self):
        with pytest.raises(ParseError):
            parse_script("(maximize x)")

    def test_nonzero_arity_declare_rejected(self):
        with pytest.raises(ParseError):
            parse_script("(declare-fun f (Int) Int)")


class TestSessionCommands:
    def test_push_pop_parse_with_counts(self):
        script = parse_script(
            "(declare-fun x () Int)"
            "(push 2)(assert (> x 0))(check-sat)(pop 2)(check-sat)"
        )
        names = [command.name for command in script.commands]
        assert names == [
            "declare-fun", "push", "assert", "check-sat", "pop", "check-sat",
        ]
        push = script.commands[1]
        pop = script.commands[4]
        assert push.args[0] == 2
        assert pop.args[0] == 2
        assert script.is_incremental

    def test_push_pop_default_count_is_one(self):
        script = parse_script("(push)(pop)")
        assert script.commands[0].args[0] == 1
        assert script.commands[1].args[0] == 1

    def test_reset_assertions_parses(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 0))(reset-assertions)(check-sat)"
        )
        assert any(c.name == "reset-assertions" for c in script.commands)
        assert script.is_incremental

    def test_pop_below_zero_is_structured_parse_error(self):
        with pytest.raises(ParseError, match="below assertion stack depth"):
            parse_script("(push 1)(pop 2)")

    def test_pop_without_push_is_structured_parse_error(self):
        with pytest.raises(ParseError, match="below assertion stack depth"):
            parse_script("(declare-fun x () Int)(assert (> x 0))(pop)")

    def test_pop_after_reset_assertions_rejected(self):
        # reset-assertions empties the stack: a later pop has nothing to pop.
        with pytest.raises(ParseError, match="below assertion stack depth"):
            parse_script("(push 3)(reset-assertions)(pop 1)")

    def test_push_takes_a_numeral(self):
        with pytest.raises(ParseError, match="numeral"):
            parse_script("(push x)")

    def test_declarations_survive_pop(self):
        script = parse_script(
            "(push 1)(declare-fun x () Int)(pop 1)(assert (> x 0))(check-sat)"
        )
        assert "x" in script.declarations

    def test_multiple_check_sat_is_incremental(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 0))(check-sat)(check-sat)"
        )
        assert script.is_incremental
        assert script.check_sat_count() == 2


class TestSorts:
    def test_bitvec_sort(self):
        script = parse_script("(declare-fun v () (_ BitVec 12))(assert (= v (_ bv855 12)))")
        assert script.declarations["v"] is bv_sort(12)

    def test_fp_sort(self):
        script = parse_script("(declare-fun f () (_ FloatingPoint 8 24))(assert (fp.isNaN f))")
        assert script.declarations["f"] is fp_sort(8, 24)

    def test_float32_alias(self):
        script = parse_script("(declare-fun f () Float32)(assert (fp.isNaN f))")
        assert script.declarations["f"] is fp_sort(8, 24)


class TestTerms:
    def test_negative_literal_folds(self):
        term = parse_term("(- 5)")
        assert term.is_const and term.value == -5

    def test_decimal_literal(self):
        term = parse_term("2.5")
        assert term.value == Fraction(5, 2)

    def test_rational_via_division(self):
        term = parse_term("(/ 9.0 4.0)")
        # Constant division folds to the rational literal it spells, so
        # the printer's (/ n d) form for non-integer rationals round-trips
        # to the identical hash-consed constant.
        assert term.is_const
        assert term.value == Fraction(9, 4)

    def test_division_by_zero_literal_stays_symbolic(self):
        term = parse_term("(/ 9.0 0.0)")
        assert term.op is Op.RDIV

    def test_bv_literals(self):
        assert parse_term("(_ bv855 12)").value.unsigned == 855
        assert parse_term("#b1010").value.unsigned == 10
        assert parse_term("#xff").value.unsigned == 255

    def test_chainable_comparison(self):
        term = parse_term("(< 1 2 3)")
        assert term.op is Op.AND

    def test_chained_equality(self):
        term = parse_term("(= 1 1 1)")
        assert term.op is Op.AND

    def test_let_binding(self):
        declarations = {"x": INT}
        term = parse_term("(let ((y (* x x))) (> y 4))", declarations)
        assert term.op is Op.GT
        assert term.args[0].op is Op.MUL

    def test_let_is_parallel(self):
        declarations = {"x": INT}
        term = parse_term("(let ((x 1) (y x)) (= x y))", declarations)
        # y binds to the OUTER x (the variable), not to 1.
        left, right = term.args
        assert left.is_const and left.value == 1
        assert right.is_var and right.name == "x"

    def test_indexed_extract(self):
        declarations = {"v": bv_sort(8)}
        term = parse_term("((_ extract 7 4) v)", declarations)
        assert term.op is Op.EXTRACT
        assert term.payload == (7, 4)
        assert term.sort.width == 4

    def test_zero_extend(self):
        declarations = {"v": bv_sort(8)}
        term = parse_term("((_ zero_extend 4) v)", declarations)
        assert term.sort.width == 12

    def test_undeclared_symbol_rejected(self):
        with pytest.raises(ParseError):
            parse_term("(> x 1)")

    def test_fp_special_literals(self):
        nan = parse_term("(_ NaN 8 24)")
        assert nan.value.is_nan
        inf = parse_term("(_ -oo 8 24)")
        assert inf.value.is_inf and inf.value.sign == 1
        zero = parse_term("(_ +zero 8 24)")
        assert zero.value.is_zero

    def test_fp_arith_with_rne(self):
        declarations = {"a": fp_sort(8, 24), "b": fp_sort(8, 24)}
        term = parse_term("(fp.add RNE a b)", declarations)
        assert term.op is Op.FP_ADD
        assert len(term.args) == 2

    def test_mixed_int_real_comparison_promotes(self):
        declarations = {"x": REAL}
        term = parse_term("(< x 3)", declarations)
        assert term.args[1].sort is REAL

    def test_nary_bv_operators_fold(self):
        declarations = {"a": bv_sort(4), "b": bv_sort(4), "c": bv_sort(4)}
        term = parse_term("(bvadd a b c)", declarations)
        assert term.op is Op.BVADD
        assert term.args[0].op is Op.BVADD

    def test_implies_right_associates(self):
        declarations = {"p": BOOL, "q": BOOL, "r": BOOL}
        term = parse_term("(=> p q r)", declarations)
        assert term.op is Op.IMPLIES
        assert term.args[1].op is Op.IMPLIES

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_script("(assert (= 1 1)")
