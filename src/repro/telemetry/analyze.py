"""Deep analysis of JSONL span traces: tree reconstruction, critical
path, and collapsed-stack flamegraph export.

The ``staub profile`` table (:mod:`repro.telemetry.profile`) answers
"how much work went into each stage name overall". The two views here
answer the follow-up questions a perf investigation actually asks:

- **Critical path**: which *chain* of nested stages dominates the trace?
  Starting from the heaviest root span, repeatedly descend into the
  heaviest child. The resulting path is where an optimisation pays off
  end to end; a stage that is hot in aggregate but off this chain only
  shaves slack.
- **Flamegraph export**: the trace collapsed into the standard
  ``parent;child;grandchild <count>`` stack format consumed by
  flamegraph.pl, speedscope, inferno, and friends. Counts are *self*
  work (a span's work minus its children's), so stack counts sum to
  total trace work exactly like sampled profiler output.

Both views are computed from the deterministic virtual-clock fields
only, so their output is byte-identical across machines and diffable in
CI. Span records arrive in close order (children before parents -- see
:class:`~repro.telemetry.spans.Tracer`), which makes tree reconstruction
a single pass: a record at depth ``d`` adopts every not-yet-adopted
record at depth ``d + 1``.
"""


class SpanNode:
    """One reconstructed span with its children attached.

    Attributes:
        name / attrs / depth / t_start / t_end / work: the record fields.
        children: list of child :class:`SpanNode`, in close order.
        self_work: ``work`` minus the children's work (never negative).
    """

    __slots__ = ("name", "attrs", "depth", "t_start", "t_end", "work", "children")

    def __init__(self, record, children):
        self.name = record["name"]
        self.attrs = record.get("attrs", {})
        self.depth = record["depth"]
        self.t_start = record["t_start"]
        self.t_end = record["t_end"]
        self.work = record.get("work", 0)
        self.children = children

    @property
    def self_work(self):
        return max(0, self.work - sum(child.work for child in self.children))

    def __repr__(self):
        return f"SpanNode({self.name!r}, work={self.work}, children={len(self.children)})"


def build_tree(spans):
    """Reconstruct the span forest from close-ordered records.

    Returns the list of root nodes in close order. Records the tracer
    never closed under a root (impossible in a well-formed trace, but
    tolerated) are promoted to roots, ordered by start time.
    """
    pending = {}  # depth -> [SpanNode] closed but not yet adopted
    for record in spans:
        depth = record["depth"]
        children = pending.pop(depth + 1, [])
        pending.setdefault(depth, []).append(SpanNode(record, children))
    roots = pending.pop(0, [])
    for depth in sorted(pending):
        roots.extend(pending[depth])
    roots.sort(key=lambda node: (node.t_start, node.depth))
    return roots


def _heaviest(nodes):
    """Deterministic pick: most work, then earliest start, then name."""
    return min(nodes, key=lambda node: (-node.work, node.t_start, node.name))


def critical_path(spans):
    """The dominant chain of nested stages.

    Returns a list of dicts ``{name, work, self_work, share}`` from the
    heaviest root down to a leaf, always descending into the heaviest
    child. ``share`` is the node's work as a fraction of the root's
    (computed here for rendering; it is derived, not stored in
    deterministic artifacts).
    """
    roots = build_tree(spans)
    if not roots:
        return []
    node = _heaviest(roots)
    total = node.work or 1
    path = []
    while True:
        path.append(
            {
                "name": node.name,
                "work": node.work,
                "self_work": node.self_work,
                "share": node.work / total,
            }
        )
        if not node.children:
            return path
        node = _heaviest(node.children)


def render_critical_path(spans):
    """Human-readable critical-path report."""
    path = critical_path(spans)
    if not path:
        return "critical path: (empty trace)"
    width = max(len(entry["name"]) for entry in path)
    lines = ["critical path (heaviest chain of nested stages):"]
    for index, entry in enumerate(path):
        indent = "  " * index
        lines.append(
            f"  {indent}{entry['name']:<{width}}  work={entry['work']}  "
            f"self={entry['self_work']}  {100.0 * entry['share']:5.1f}%"
        )
    return "\n".join(lines)


def _sanitize(name):
    """Frame names safe for the collapsed-stack grammar."""
    return str(name).replace(";", ":").replace(" ", "_")


def collapse_stacks(spans):
    """Fold the trace into ``{"a;b;c": self_work}`` stack counts.

    Only stacks with positive self work appear (standard collapsed
    format semantics: a frame that delegated all its work to children
    contributes no samples of its own). Counts across all stacks sum to
    the total trace work.
    """
    folded = {}

    def walk(node, prefix):
        stack = f"{prefix};{_sanitize(node.name)}" if prefix else _sanitize(node.name)
        self_work = node.self_work
        if self_work > 0:
            folded[stack] = folded.get(stack, 0) + self_work
        for child in node.children:
            walk(child, stack)

    for root in build_tree(spans):
        walk(root, "")
    return folded


def render_flamegraph(spans):
    """Collapsed-stack text (one ``stack count`` line, sorted) ready for
    ``flamegraph.pl`` / speedscope / inferno."""
    folded = collapse_stacks(spans)
    return "\n".join(f"{stack} {count}" for stack, count in sorted(folded.items()))
