"""Observability for the STAUB stack: spans, metrics, profiling.

Design constraints, in priority order:

1. **Determinism.** Spans run on the same virtual clock as every
   experiment (unified work units); metrics record deterministic
   counters. Two runs of the same seeded workload produce byte-identical
   telemetry. Wall-clock is opt-in and clearly segregated.
2. **Near-zero overhead when off.** Telemetry is disabled by default.
   Every hook checks the module-level :data:`enabled` flag before doing
   any work; ``span()`` returns a shared no-op object, counter helpers
   return immediately. Disabled runs are byte-identical to the pre-
   telemetry behaviour.
3. **One vocabulary.** All engines funnel their counters through
   :func:`repro.telemetry.stats.unified_stats`, so every result carries
   the same stats shape.

Typical use::

    from repro import telemetry

    telemetry.enable(trace_path="out.jsonl")
    with telemetry.span("bounded-solve", engine="bv") as sp:
        result = solve(...)
        sp.add_work(result.work)
    telemetry.disable()
"""

from repro.telemetry.metrics import (
    MetricsRegistry,
    format_metric,
    get_registry,
    set_registry,
)
from repro.telemetry.spans import NULL_SPAN, JsonlWriter, Span, Tracer
from repro.telemetry.stats import STAT_KEYS, merge_stats, unified_stats

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "Span",
    "JsonlWriter",
    "STAT_KEYS",
    "enabled",
    "enable",
    "disable",
    "is_enabled",
    "span",
    "add_work",
    "counter_add",
    "gauge_set",
    "observe",
    "record_counters",
    "get_registry",
    "set_registry",
    "get_tracer",
    "format_metric",
    "merge_stats",
    "unified_stats",
    "snapshot",
]

#: Module-level fast-path flag: hooks check this before any other work.
enabled = False

_tracer = None
_writer = None


def is_enabled():
    """True while telemetry collection is on."""
    return enabled


def enable(trace_path=None, wall_clock=False, registry=None, sink=None):
    """Turn telemetry on.

    Args:
        trace_path: write closed spans to this JSONL file.
        wall_clock: also record (non-deterministic) wall durations.
        registry: replace the process-global metrics registry.
        sink: callable receiving each closed span's dict; used by
            in-process consumers (the bench harness) instead of a trace
            file. Ignored when ``trace_path`` is given.

    Returns:
        The active :class:`~repro.telemetry.spans.Tracer`.
    """
    global enabled, _tracer, _writer
    if _writer is not None:
        _writer.close()
    _writer = JsonlWriter(trace_path) if trace_path else None
    _tracer = Tracer(sink=_writer if _writer is not None else sink, wall_clock=wall_clock)
    if registry is not None:
        set_registry(registry)
    enabled = True
    return _tracer


def disable():
    """Turn telemetry off and close any trace file."""
    global enabled, _tracer, _writer
    enabled = False
    if _writer is not None:
        _writer.close()
        _writer = None
    _tracer = None


def get_tracer():
    """The active tracer (None while disabled)."""
    return _tracer


def span(name, **attrs):
    """Open a span on the active tracer; no-op while disabled."""
    if not enabled or _tracer is None:
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def add_work(units):
    """Charge virtual work to the currently open span, if any."""
    if enabled and _tracer is not None:
        _tracer.advance(units)


def counter_add(name, amount=1, **labels):
    """Bump a counter in the default registry; no-op while disabled."""
    if not enabled:
        return
    get_registry().counter(name, **labels).inc(amount)


def gauge_set(name, value, **labels):
    """Set a gauge in the default registry; no-op while disabled."""
    if not enabled:
        return
    get_registry().gauge(name, **labels).set(value)


def observe(name, value, **labels):
    """Record a histogram observation; no-op while disabled."""
    if not enabled:
        return
    get_registry().histogram(name, **labels).observe(value)


def record_counters(counts, prefix="solver", **labels):
    """Bulk-record a ``{key: int}`` dict as ``prefix.key`` counters.

    The engines call this once per solve with their stats delta, so the
    hot loops themselves stay untouched.
    """
    if not enabled:
        return
    registry = get_registry()
    for key, value in counts.items():
        if value:
            registry.counter(f"{prefix}.{key}", **labels).inc(value)


def snapshot():
    """Deterministic snapshot of the default registry."""
    return get_registry().snapshot()
