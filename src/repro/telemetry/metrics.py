"""Named counters, gauges, and histograms with label support.

The registry is the numeric half of the observability layer: engines
record what they did (``solver.propagations{engine=sat}``), the
evaluation harness records what it ran, and exporters snapshot the whole
registry into a deterministic, sorted mapping.

Everything here runs on deterministic inputs (the virtual clock, work
counters), so two runs of the same seeded workload produce byte-identical
snapshots -- the property the determinism tests pin down.
"""


def format_metric(name, labels):
    """Canonical ``name{k=v,...}`` rendering with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A value that can go up or down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount

    def snapshot(self):
        return self.value


class Histogram:
    """Summary statistics over observed values.

    Stores count/sum/min/max rather than buckets: enough for the
    per-stage breakdowns the experiments need, with no binning choices
    that could differ between runs.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """A namespace of metrics keyed by (name, labels).

    Asking for a metric creates it on first use; asking again with the
    same name and labels returns the same object, so hot paths can hold a
    reference instead of re-resolving.
    """

    def __init__(self):
        self._metrics = {}

    def _get(self, factory, name, labels):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {format_metric(name, labels)} already registered "
                f"as {type(metric).__name__}, not {factory.__name__}"
            )
        return metric

    def counter(self, name, **labels):
        return self._get(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels)

    def histogram(self, name, **labels):
        return self._get(Histogram, name, labels)

    def __len__(self):
        return len(self._metrics)

    def reset(self):
        """Drop every metric (test isolation)."""
        self._metrics.clear()

    def snapshot(self):
        """Deterministic ``{rendered-name: value}`` mapping, sorted."""
        out = {}
        for (name, labels) in sorted(self._metrics):
            metric = self._metrics[(name, labels)]
            out[format_metric(name, dict(labels))] = metric.snapshot()
        return out


#: The process-global default registry every hook records into.
_default_registry = MetricsRegistry()


def get_registry():
    """The process-global default registry."""
    return _default_registry


def set_registry(registry):
    """Swap the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
