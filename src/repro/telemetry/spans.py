"""Span tracing on the deterministic virtual clock.

A span covers one pipeline stage (``infer``, ``transform``,
``bounded-solve``, ``verify``, ...). Spans nest: the tracer keeps a
stack, and a span's virtual duration is everything charged to the clock
while it was open -- its own :meth:`Span.add_work` charges plus those of
any children. Because the clock only advances through explicit work
charges (unified work units, see :mod:`repro.solver.costs`), traces are
byte-identical across machines and runs.

Wall-clock timing is optional (``wall_clock=True`` on the tracer) and is
kept out of the deterministic fields so that traces stay diffable.

Export is JSON Lines: one object per *closed* span, written in close
order (children before parents, like any post-order trace format).
"""

import json
import time


class Span:
    """One open (then closed) region of the trace.

    Attributes:
        name: stage name; the profile report aggregates by it.
        attrs: free-form labels (engine, case, width, ...).
        depth: nesting depth at open time (0 = root).
        t_start / t_end: virtual-clock timestamps.
        work: virtual duration (``t_end - t_start`` once closed).
    """

    __slots__ = (
        "name",
        "attrs",
        "depth",
        "t_start",
        "t_end",
        "_tracer",
        "_wall_start",
        "wall_seconds",
    )

    def __init__(self, tracer, name, attrs, depth, t_start, wall_start=None):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = depth
        self.t_start = t_start
        self.t_end = None
        self._wall_start = wall_start
        self.wall_seconds = None

    @property
    def work(self):
        end = self.t_end if self.t_end is not None else self._tracer.vclock
        return end - self.t_start

    def add_work(self, units):
        """Charge ``units`` of virtual work to this span (and ancestors)."""
        self._tracer.advance(units)

    def settle(self, total):
        """Top the span up so its duration equals ``total``.

        Children may already have charged part of the total to the clock;
        this charges only the remainder, so a stage whose cost is known
        in aggregate (``t_post``) never double-counts its sub-spans.
        """
        remainder = total - self.work
        if remainder > 0:
            self._tracer.advance(remainder)

    def set_attr(self, key, value):
        self.attrs[key] = value

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer.close(self, error=exc_type is not None)
        return False

    def to_dict(self):
        record = {
            "name": self.name,
            "depth": self.depth,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "work": self.work,
        }
        if self.attrs:
            record["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        if self.wall_seconds is not None:
            record["wall_seconds"] = self.wall_seconds
        return record

    def __repr__(self):
        state = "open" if self.t_end is None else "closed"
        return f"Span({self.name!r}, {state}, work={self.work})"


class _NullSpan:
    """The do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()
    name = None
    attrs = {}
    work = 0
    wall_seconds = None

    def add_work(self, units):
        pass

    def settle(self, total):
        pass

    def set_attr(self, key, value):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """A stack of spans over one shared virtual clock.

    Args:
        sink: optional callable receiving each closed span's dict (e.g.
            a :class:`JsonlWriter`).
        wall_clock: also record wall-clock durations (non-deterministic;
            excluded from deterministic artifacts).
    """

    def __init__(self, sink=None, wall_clock=False):
        self.sink = sink
        self.wall_clock = wall_clock
        self.vclock = 0
        self._stack = []

    @property
    def depth(self):
        return len(self._stack)

    @property
    def current(self):
        return self._stack[-1] if self._stack else None

    def advance(self, units):
        """Advance the virtual clock (charges every open span)."""
        self.vclock += units

    def span(self, name, **attrs):
        """Open a nested span; use as a context manager."""
        wall_start = time.perf_counter() if self.wall_clock else None
        opened = Span(
            self, name, dict(attrs), len(self._stack), self.vclock, wall_start
        )
        self._stack.append(opened)
        return opened

    def close(self, span, error=False):
        """Close ``span`` (and any forgotten children above it)."""
        while self._stack:
            top = self._stack.pop()
            self._finish(top, error=error and top is span)
            if top is span:
                return
        raise RuntimeError(f"closing span {span.name!r} that is not open")

    def _finish(self, span, error):
        span.t_end = self.vclock
        if span._wall_start is not None:
            span.wall_seconds = time.perf_counter() - span._wall_start
        if error:
            span.attrs["error"] = True
        if self.sink is not None:
            self.sink(span.to_dict())


class JsonlWriter:
    """Append closed spans to a JSON Lines file.

    Write failures (disk errors, injected ``telemetry.flush`` faults)
    drop the record and bump :attr:`dropped`; observability loss must
    never fail a solve.
    """

    def __init__(self, path):
        self.path = path
        self.dropped = 0
        self._handle = open(path, "w", encoding="utf-8")

    def __call__(self, record):
        # Imported lazily: chaos imports repro.telemetry at module load.
        from repro.guard import chaos

        try:
            if chaos.inject("telemetry.flush") is not None:
                self.dropped += 1
                return
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            self.dropped += 1

    def flush(self):
        self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None
