"""The uniform per-result statistics vocabulary.

Every engine used to report its own partial ``detail`` dict (the bounded
path had CNF sizes, the unbounded path had nothing). This module fixes a
single key set so that :class:`~repro.solver.result.SolveResult.stats`
and :class:`~repro.core.pipeline.ArbitrageReport.stats` always carry the
same shape, with zeros for counters an engine does not have.
"""

#: Canonical counter keys, in reporting order.
STAT_KEYS = (
    "propagations",
    "conflicts",
    "restarts",
    "decisions",
    "learned_clauses",
    "deleted_clauses",
    "minimized_literals",
    "pivots",
    "bb_nodes",
    "contractions",
    "interval_evals",
    "cnf_vars",
    "cnf_clauses",
    "theory_rounds",
)


def unified_stats(**counts):
    """A stats dict with every canonical key, zeros filled in.

    Unknown keys are kept too (engines may report extras such as
    ``width`` or ``case``); canonical keys always come first.
    """
    stats = {key: 0 for key in STAT_KEYS}
    stats.update(counts)
    return stats


def merge_stats(target, extra):
    """Accumulate numeric counters from ``extra`` into ``target`` in place.

    Non-numeric values (labels like ``case``) overwrite instead of add.
    """
    for key, value in extra.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            target[key] = value
        else:
            target[key] = target.get(key, 0) + value
    return target
