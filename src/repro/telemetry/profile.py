"""Per-stage breakdown of a JSONL trace (the ``staub profile`` view).

Reads the span records written by :class:`~repro.telemetry.spans.JsonlWriter`
and aggregates virtual work by stage name, so a trace of one (or many)
pipeline runs collapses into the paper's Fig. 3 decomposition:

    stage            spans       work     share
    infer                1         12      4.2%
    transform            1         12      4.2%
    bounded-solve        1        241     84.6%
    verify               1         20      7.0%
"""

import json

#: The Fig. 3 pipeline stages, in execution order.
FIG3_STAGES = ("infer", "transform", "bounded-solve", "verify")


def load_trace(path):
    """Parse a JSONL trace file into a list of span dicts."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def aggregate(spans):
    """Aggregate spans by name: ``{name: {"spans": n, "work": w}}``.

    Only leaf-relative work is *not* separated out -- a parent span's
    work includes its children's, so the share column is computed against
    the total of the stage rows requested, not the roots.
    """
    stages = {}
    for span in spans:
        entry = stages.setdefault(span["name"], {"spans": 0, "work": 0})
        entry["spans"] += 1
        entry["work"] += span.get("work", 0)
    return stages


def render_profile(spans, stage_order=FIG3_STAGES, top=None):
    """Human-readable per-stage table for a trace.

    Stages in ``stage_order`` come first (present or not -- a stage the
    trace never reached prints as zero); any other span names follow.

    Sort order is deterministic and documented so profile output can be
    diffed in CI: the non-pipeline rows are ordered by aggregate work
    descending, ties broken by name ascending. ``top`` keeps only the
    first ``top`` of those extra rows (the pinned pipeline stages always
    print).
    """
    stages = aggregate(spans)
    names = [name for name in stage_order]
    extras = sorted(
        (name for name in stages if name not in stage_order),
        key=lambda name: (-stages[name]["work"], name),
    )
    if top is not None:
        extras = extras[: max(0, top)]
    names += extras
    denominator = sum(stages.get(name, {}).get("work", 0) for name in stage_order)
    if denominator == 0:
        denominator = sum(entry["work"] for entry in stages.values()) or 1

    width = max([len(name) for name in names] + [len("stage")])
    lines = [f"{'stage':<{width}}  {'spans':>6}  {'work':>10}  {'share':>6}"]
    for name in names:
        entry = stages.get(name, {"spans": 0, "work": 0})
        share = 100.0 * entry["work"] / denominator
        lines.append(
            f"{name:<{width}}  {entry['spans']:>6}  {entry['work']:>10}  {share:>5.1f}%"
        )
    total = sum(stages.get(name, {}).get("work", 0) for name in stage_order)
    lines.append(f"{'total (pipeline)':<{width}}  {'':>6}  {total:>10}")
    return "\n".join(lines)
