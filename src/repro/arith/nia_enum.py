"""Shell-enumeration NIA engine (the ``corvus`` profile's baseline).

A deliberately simpler decision strategy than the branch-and-prune engine:
after one interval-contraction pass (for cheap unsat detection), it
enumerates integer assignments in expanding max-norm shells
``max(|x_i|) = 0, 1, 2, ...`` and tests each point exactly.

This models a solver whose nonlinear engine relies on model search rather
than propagation: complete-in-the-limit for satisfiable instances but with
cost exponential in the magnitude of the smallest solution -- which is the
behaviour the paper observes for CVC5 on QF_NIA (thousands of timeouts
that theory arbitrage then renders tractable).
"""

import itertools

from repro import guard
from repro.arith.contractor import Box, Contractor, literals_to_atoms
from repro.arith.interval import Interval
from repro.arith.nia import ArithResult
from repro.errors import UnsupportedLogicError
from repro.smtlib.evaluator import evaluate
from repro.smtlib.sorts import INT


class NiaEnumSolver:
    """Magnitude-shell enumeration for conjunctions of NIA literals."""

    def __init__(self, literals, declarations):
        self.literals = list(literals)
        self.declarations = dict(declarations)
        atoms, residual = literals_to_atoms(self.literals)
        if residual:
            raise UnsupportedLogicError(
                f"NIA enumeration solver got non-arithmetic literals: {residual[:3]}"
            )
        self.atoms = atoms
        self.work = 0
        self._names = sorted(
            name for name, sort in self.declarations.items() if sort is INT
        )
        self._literal_cost = sum(literal.size() for literal in self.literals)
        self._contractors = []

    def _new_contractor(self):
        contractor = Contractor(self.atoms)
        self._contractors.append(contractor)
        return contractor

    def stats(self):
        """Uniform engine counters (see :mod:`repro.telemetry.stats`)."""
        return {
            "contractions": sum(c.contractions for c in self._contractors),
            "interval_evals": sum(c.work for c in self._contractors),
        }

    def _check_point(self, assignment):
        self.work += self._literal_cost
        return all(evaluate(literal, assignment) for literal in self.literals)

    def _shell_points(self, radius):
        """All integer points with max-norm exactly ``radius``."""
        names = self._names
        if radius == 0:
            yield {name: 0 for name in names}
            return
        span = range(-radius, radius + 1)
        for values in itertools.product(span, repeat=len(names)):
            if max(abs(value) for value in values) == radius:
                yield dict(zip(names, values))

    def solve(self, budget=None):
        """Enumerate shells until a model is found or the budget dies."""
        if not self._names:
            if self._check_point({}):
                return ArithResult("sat", {}, self.work)
            return ArithResult("unsat", None, self.work)

        # One contraction pass on the unbounded box: catches structurally
        # unsatisfiable input (x*x < 0) the way a real solver's
        # preprocessing would.
        contractor = self._new_contractor()
        top = Box({name: Interval.top() for name in self._names})
        contracted = contractor.contract(top)
        self.work += contractor.work
        if contracted is None:
            return ArithResult("unsat", None, self.work)

        bounded = all(contracted.get(name).is_bounded for name in self._names)
        governor = guard.active()
        radius = 0
        while True:
            in_range = False
            for point in self._shell_points(radius):
                # Skip points outside the contracted box cheaply.
                self.work += len(self._names)
                if any(
                    not contracted.get(name).contains(value)
                    for name, value in point.items()
                ):
                    continue
                in_range = True
                if self._check_point(point):
                    return ArithResult("sat", point, self.work)
                if budget is not None and self.work > budget:
                    return ArithResult("unknown", None, self.work)
                if governor.interrupted("nia-enum"):
                    return ArithResult("unknown", None, self.work)
            if budget is not None and self.work > budget:
                return ArithResult("unknown", None, self.work)
            if governor.interrupted("nia-enum"):
                return ArithResult("unknown", None, self.work)
            if bounded and not in_range and radius > self._max_radius(contracted):
                # The whole contracted box has been enumerated.
                return ArithResult("unsat", None, self.work)
            radius += 1

    def _max_radius(self, box):
        radius = 0
        for name in self._names:
            interval = box.get(name)
            radius = max(radius, abs(int(interval.lo)), abs(int(interval.hi)))
        return radius


def solve_nia_enum_conjunction(literals, declarations, budget=None):
    """Convenience wrapper around :class:`NiaEnumSolver`."""
    return NiaEnumSolver(literals, declarations).solve(budget)
