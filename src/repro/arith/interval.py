"""Exact interval arithmetic over rationals with infinite endpoints.

Endpoints are :class:`~fractions.Fraction` or ``None`` (meaning -oo for
lower, +oo for upper). All operations are *conservative*: the result
interval contains every possible value of the operation over the operand
intervals, which is the soundness requirement for the ICP solvers built on
top (a contraction may fail to narrow, but must never drop a solution).
"""

from fractions import Fraction


class Interval:
    """A closed interval ``[lo, hi]``; ``None`` endpoints are infinite.

    The empty interval is represented by the singleton :data:`EMPTY`
    (``is_empty`` true); operations on it propagate emptiness.
    """

    __slots__ = ("lo", "hi", "_empty")

    def __init__(self, lo=None, hi=None, _empty=False):
        self.lo = Fraction(lo) if lo is not None else None
        self.hi = Fraction(hi) if hi is not None else None
        self._empty = _empty
        if not _empty and self.lo is not None and self.hi is not None and self.lo > self.hi:
            self._empty = True

    # -- constructors ---------------------------------------------------

    @classmethod
    def point(cls, value):
        return cls(value, value)

    @classmethod
    def top(cls):
        return cls(None, None)

    @property
    def is_empty(self):
        return self._empty

    @property
    def is_point(self):
        return not self._empty and self.lo is not None and self.lo == self.hi

    @property
    def is_bounded(self):
        return self._empty or (self.lo is not None and self.hi is not None)

    def width(self):
        """hi - lo; None when unbounded, 0 for points and empty."""
        if self._empty:
            return Fraction(0)
        if self.lo is None or self.hi is None:
            return None
        return self.hi - self.lo

    def contains(self, value):
        if self._empty:
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def midpoint(self):
        """A finite sample point, preferring the middle."""
        if self._empty:
            raise ValueError("empty interval has no midpoint")
        if self.lo is not None and self.hi is not None:
            return (self.lo + self.hi) / 2
        if self.lo is not None:
            return self.lo + 1
        if self.hi is not None:
            return self.hi - 1
        return Fraction(0)

    # -- lattice --------------------------------------------------------

    def intersect(self, other):
        if self._empty or other._empty:
            return EMPTY
        lo = self.lo if other.lo is None else (other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (other.hi if self.hi is None else min(self.hi, other.hi))
        if lo is not None and hi is not None and lo > hi:
            return EMPTY
        return Interval(lo, hi)

    def hull(self, other):
        if self._empty:
            return other
        if other._empty:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    # -- arithmetic -------------------------------------------------------

    def __neg__(self):
        if self._empty:
            return EMPTY
        return Interval(
            -self.hi if self.hi is not None else None,
            -self.lo if self.lo is not None else None,
        )

    def __add__(self, other):
        if self._empty or other._empty:
            return EMPTY
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def __sub__(self, other):
        return self + (-other)

    def __mul__(self, other):
        if self._empty or other._empty:
            return EMPTY
        if self.is_zero_point() or other.is_zero_point():
            return Interval.point(0)
        candidates = []
        unbounded_lo = False
        unbounded_hi = False
        for a, a_inf in ((self.lo, -1), (self.hi, 1)):
            for b, b_inf in ((other.lo, -1), (other.hi, 1)):
                if a is None or b is None:
                    # Sign analysis for infinite products.
                    sign = _product_sign(self, a, a_inf, other, b, b_inf)
                    if sign is None:
                        continue
                    if sign > 0:
                        unbounded_hi = True
                    elif sign < 0:
                        unbounded_lo = True
                else:
                    candidates.append(a * b)
        lo = None if unbounded_lo else (min(candidates) if candidates else None)
        hi = None if unbounded_hi else (max(candidates) if candidates else None)
        if not candidates and not (unbounded_lo or unbounded_hi):
            return Interval.top()
        return Interval(lo, hi)

    def is_zero_point(self):
        return self.is_point and self.lo == 0

    def divide(self, other):
        """Conservative interval division (0 in divisor widens to top)."""
        if self._empty or other._empty:
            return EMPTY
        if other.contains(Fraction(0)):
            if other.is_zero_point():
                # Division by exactly zero: total semantics give 0.
                return Interval.point(0)
            return Interval.top()
        reciprocal_lo = None if other.hi is None else Fraction(1) / other.hi
        reciprocal_hi = None if other.lo is None else Fraction(1) / other.lo
        return self * Interval(reciprocal_lo, reciprocal_hi)

    def power(self, exponent):
        """``self ** exponent`` for a positive integer exponent.

        Unlike repeated interval multiplication, this is exact for even
        exponents of sign-straddling intervals (e.g. ``[-2, 3]**2`` is
        ``[0, 9]``, not ``[-6, 9]``).
        """
        if self._empty:
            return EMPTY
        if exponent == 1:
            return self
        if exponent % 2 == 1:
            lo = None if self.lo is None else self.lo**exponent
            hi = None if self.hi is None else self.hi**exponent
            return Interval(lo, hi)
        magnitude = self.abs()
        lo = magnitude.lo**exponent
        hi = None if magnitude.hi is None else magnitude.hi**exponent
        return Interval(lo, hi)

    def root(self, degree):
        """Conservative interval n-th root preimage.

        Returns an interval containing every x with ``x**degree`` in self.
        For even degrees the preimage is symmetric (the gap around zero is
        conservatively kept); an even root of a strictly negative interval
        is empty.
        """
        if self._empty:
            return EMPTY
        if degree == 1:
            return self
        if degree % 2 == 1:
            lo = None if self.lo is None else nth_root_lower(self.lo, degree)
            hi = None if self.hi is None else nth_root_upper(self.hi, degree)
            return Interval(lo, hi)
        if self.hi is not None and self.hi < 0:
            return EMPTY
        if self.hi is None:
            return Interval.top()
        bound = nth_root_upper(self.hi, degree)
        return Interval(-bound, bound)

    def abs(self):
        if self._empty:
            return EMPTY
        if self.lo is not None and self.lo >= 0:
            return self
        if self.hi is not None and self.hi <= 0:
            return -self
        # Straddles zero.
        if self.lo is None or self.hi is None:
            return Interval(0, None)
        return Interval(0, max(-self.lo, self.hi))

    # -- integer refinement -----------------------------------------------

    def round_to_integer(self):
        """Shrink to the integer sub-lattice (ceil lower, floor upper)."""
        if self._empty:
            return EMPTY
        lo = None
        hi = None
        if self.lo is not None:
            lo = -((-self.lo.numerator) // self.lo.denominator)  # ceil
        if self.hi is not None:
            hi = self.hi.numerator // self.hi.denominator  # floor
        if lo is not None and hi is not None and lo > hi:
            return EMPTY
        return Interval(lo, hi)

    def integer_count(self):
        """Number of integers inside, or None when unbounded."""
        rounded = self.round_to_integer()
        if rounded.is_empty:
            return 0
        if rounded.lo is None or rounded.hi is None:
            return None
        return int(rounded.hi - rounded.lo) + 1

    def split(self):
        """Bisect at the midpoint; returns (left, right)."""
        middle = self.midpoint()
        return Interval(self.lo, middle), Interval(middle, self.hi)

    def split_integer(self):
        """Bisect an integer interval into two disjoint halves."""
        middle = self.midpoint()
        floor = middle.numerator // middle.denominator
        return Interval(self.lo, floor), Interval(floor + 1, self.hi)

    # -- comparisons against another interval -------------------------------

    def certainly_le(self, other):
        return (
            not self._empty
            and not other._empty
            and self.hi is not None
            and other.lo is not None
            and self.hi <= other.lo
        )

    def certainly_lt(self, other):
        return (
            not self._empty
            and not other._empty
            and self.hi is not None
            and other.lo is not None
            and self.hi < other.lo
        )

    def possibly_le(self, other):
        """Can some a <= b hold? i.e. not (a always > b)."""
        return not other.certainly_lt(self)

    def possibly_lt(self, other):
        return not other.certainly_le(self)

    def possibly_eq(self, other):
        return not self.intersect(other).is_empty

    def certainly_eq(self, other):
        return self.is_point and other.is_point and self.lo == other.lo

    def __eq__(self, other):
        if not isinstance(other, Interval):
            return NotImplemented
        if self._empty or other._empty:
            return self._empty and other._empty
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self):
        return hash((self._empty, self.lo, self.hi))

    def __repr__(self):
        if self._empty:
            return "Interval(empty)"
        lo = "-oo" if self.lo is None else str(self.lo)
        hi = "+oo" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


def _product_sign(left, a, a_inf, right, b, b_inf):
    """Sign of the product corner a*b when at least one factor is infinite.

    Returns +1, -1, 0, or None when the corner is degenerate (0 * oo).
    """

    def endpoint_sign(interval, endpoint, which):
        if endpoint is not None:
            return (endpoint > 0) - (endpoint < 0)
        # Infinite endpoint: lower is -oo (sign -1), upper +oo (sign +1).
        return which

    sa = endpoint_sign(left, a, a_inf)
    sb = endpoint_sign(right, b, b_inf)
    if sa == 0 or sb == 0:
        return None  # 0 * oo corner contributes nothing beyond 0
    return sa * sb


def integer_nth_root(value, degree):
    """Floor of the n-th root of a non-negative integer (exact)."""
    if value < 0:
        raise ValueError("integer_nth_root needs a non-negative value")
    if value == 0:
        return 0
    guess = 1 << ((value.bit_length() + degree - 1) // degree)
    while True:
        candidate = ((degree - 1) * guess + value // guess ** (degree - 1)) // degree
        if candidate >= guess:
            break
        guess = candidate
    while guess**degree > value:
        guess -= 1
    while (guess + 1) ** degree <= value:
        guess += 1
    return guess


def nth_root_upper(value, degree):
    """A rational upper bound on ``value ** (1/degree)`` (conservative)."""
    value = Fraction(value)
    if value < 0:
        if degree % 2 == 0:
            raise ValueError("even root of a negative value")
        return -nth_root_lower(-value, degree)
    scaled = value.numerator * value.denominator ** (degree - 1)
    root = integer_nth_root(scaled, degree)
    if root**degree < scaled:
        root += 1
    return Fraction(root, value.denominator)


def nth_root_lower(value, degree):
    """A rational lower bound on ``value ** (1/degree)`` (conservative)."""
    value = Fraction(value)
    if value < 0:
        if degree % 2 == 0:
            raise ValueError("even root of a negative value")
        return -nth_root_upper(-value, degree)
    scaled = value.numerator * value.denominator ** (degree - 1)
    root = integer_nth_root(scaled, degree)
    return Fraction(root, value.denominator)


#: The canonical empty interval.
EMPTY = Interval(0, 0)
EMPTY._empty = True
