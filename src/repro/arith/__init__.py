"""Unbounded-theory arithmetic solvers (the "expensive side").

These are the baseline decision procedures that play the role of Z3/CVC5's
unbounded arithmetic engines in the reproduction:

- :mod:`repro.arith.linear` -- linear-form extraction from terms.
- :mod:`repro.arith.simplex` -- exact-rational general simplex with
  delta-rationals for strict inequalities (QF_LRA).
- :mod:`repro.arith.lia` -- branch-and-bound over the simplex (QF_LIA).
- :mod:`repro.arith.interval` -- interval arithmetic and HC4-style
  forward/backward contraction over term DAGs.
- :mod:`repro.arith.nia` -- interval propagation + branching + magnitude
  deepening for nonlinear integers (incomplete, as the theory demands).
- :mod:`repro.arith.nra` -- ICP with dyadic splitting for nonlinear reals.
"""

from repro.arith.linear import LinearExpr, NonlinearTermError, linearize
from repro.arith.simplex import DeltaRational, Simplex
from repro.arith.interval import Interval

__all__ = [
    "LinearExpr",
    "NonlinearTermError",
    "linearize",
    "DeltaRational",
    "Simplex",
    "Interval",
]
