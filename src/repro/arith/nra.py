"""Nonlinear real arithmetic via interval constraint propagation.

A dReal-style branch-and-prune loop over rational boxes: contract with
HC4, split the widest interval, and at small widths try to promote the
numeric box to an *exact* rational model (midpoint, endpoints, and the
simplest rational in the interval via Stern--Brocot search). NRA is
decidable in theory (CAD), but practical engines behave just like this:
strong on robust instances, prone to giving up on degenerate ones --
which is the behaviour the paper's QF_NRA rows reflect.
"""

from fractions import Fraction

from repro import guard
from repro.arith.contractor import Box, Contractor, literals_to_atoms
from repro.arith.interval import Interval
from repro.arith.nia import ArithResult
from repro.errors import UnsupportedLogicError
from repro.smtlib.evaluator import evaluate
from repro.smtlib.sorts import REAL

#: Stop splitting an interval once it is this narrow.
DEFAULT_EPSILON = Fraction(1, 1 << 12)

#: Magnitude deepening schedule for unbounded directions.
DEEPENING_SCHEDULE = (4, 64, 4096, 1 << 20)


def simplest_rational_between(lo, hi):
    """The rational with the smallest denominator in ``[lo, hi]``.

    Stern--Brocot / continued-fraction construction; both endpoints are
    inclusive. This is how the ICP loop recovers exact witnesses like
    ``1/3`` from a numeric enclosure.
    """
    lo = Fraction(lo)
    hi = Fraction(hi)
    if lo > hi:
        raise ValueError("empty interval")
    if lo <= 0 <= hi:
        return Fraction(0)
    if hi < 0:
        return -simplest_rational_between(-hi, -lo)
    # 0 < lo <= hi: walk the continued fraction expansion.
    floor_lo = lo.numerator // lo.denominator
    if floor_lo + 1 <= hi:
        return Fraction(floor_lo if floor_lo >= lo else floor_lo + 1)
    if lo.denominator == 1:
        return lo
    fractional = simplest_rational_between(
        Fraction(1) / (hi - floor_lo), Fraction(1) / (lo - floor_lo)
    )
    return floor_lo + Fraction(1) / fractional


class NraSolver:
    """Branch-and-prune NRA solver for conjunctions of literals."""

    def __init__(self, literals, declarations, epsilon=DEFAULT_EPSILON):
        self.literals = list(literals)
        self.declarations = dict(declarations)
        self.epsilon = Fraction(epsilon)
        atoms, residual = literals_to_atoms(self.literals)
        if residual:
            raise UnsupportedLogicError(
                f"NRA conjunction solver got non-arithmetic literals: {residual[:3]}"
            )
        self.atoms = atoms
        self.work = 0
        self._names = sorted(
            name for name, sort in self.declarations.items() if sort is REAL
        )
        self._contractors = []

    def _new_contractor(self):
        contractor = Contractor(self.atoms)
        self._contractors.append(contractor)
        return contractor

    def stats(self):
        """Uniform engine counters (see :mod:`repro.telemetry.stats`)."""
        return {
            "contractions": sum(c.contractions for c in self._contractors),
            "interval_evals": sum(c.work for c in self._contractors),
        }

    def _check_point(self, assignment):
        self.work += sum(literal.size() for literal in self.literals)
        return all(evaluate(literal, assignment) for literal in self.literals)

    def _candidate_points(self, interval):
        """Exact rational candidates inside an interval."""
        candidates = []
        if interval.lo is not None and interval.hi is not None:
            candidates.append(simplest_rational_between(interval.lo, interval.hi))
        candidates.append(interval.midpoint())
        if interval.lo is not None:
            candidates.append(interval.lo)
        if interval.hi is not None:
            candidates.append(interval.hi)
        unique = []
        for value in candidates:
            if value not in unique and interval.contains(value):
                unique.append(value)
        return unique

    def _try_box(self, box):
        """Attempt to promote a narrow box to an exact model."""
        per_variable = [self._candidate_points(box.get(name)) for name in self._names]
        # Cap the cartesian product to keep point testing cheap.
        total = 1
        for candidates in per_variable:
            total *= len(candidates)
        if total > 64:
            per_variable = [candidates[:2] for candidates in per_variable]

        assignment = {}

        def recurse(index):
            if index == len(self._names):
                return self._check_point(dict(assignment))
            for value in per_variable[index]:
                assignment[self._names[index]] = value
                if recurse(index + 1):
                    return True
            return False

        if recurse(0):
            return dict(assignment)
        return None

    def _narrow_enough(self, box):
        for name in self._names:
            width = box.get(name).width()
            if width is None or width > self.epsilon:
                return False
        return True

    def _search_box(self, initial_box, budget):
        contractor = self._new_contractor()
        governor = guard.active()
        stack = [initial_box]
        gave_up = False
        while stack:
            if budget is not None and self.work + contractor.work > budget:
                self.work += contractor.work
                return "unknown", None
            if governor.interrupted("nra") or not governor.memory_ok(len(stack), "nra"):
                self.work += contractor.work
                return "unknown", None
            box = stack.pop()
            contracted = contractor.contract(box)
            if contracted is None:
                continue
            model = self._try_box(contracted)
            if model is not None:
                self.work += contractor.work
                return "sat", model
            if self._narrow_enough(contracted):
                # Numerically satisfiable but no exact witness surfaced:
                # a delta-sat box. We cannot conclude either way.
                gave_up = True
                continue
            name = contracted.widest_variable()
            if name is None:
                gave_up = True
                continue
            left, right = contracted.get(name).split()
            for half in (right, left):
                child = contracted.copy()
                child.set(name, half)
                stack.append(child)
        self.work += contractor.work
        return ("unknown" if gave_up else "unsat"), None

    def solve(self, budget=None):
        """Decide the conjunction; returns an :class:`ArithResult`."""
        if not self._names:
            if self._check_point({}):
                return ArithResult("sat", {}, self.work)
            return ArithResult("unsat", None, self.work)

        top = Box({name: Interval.top() for name in self._names})
        contractor = self._new_contractor()
        contracted = contractor.contract(top)
        self.work += contractor.work
        if contracted is None:
            return ArithResult("unsat", None, self.work)

        fully_bounded = all(contracted.get(name).is_bounded for name in self._names)
        if fully_bounded:
            status, model = self._search_box(contracted, budget)
            return ArithResult(status, model, self.work)

        for bound in DEEPENING_SCHEDULE:
            box = contracted.copy()
            for name in self._names:
                clipped = box.get(name).intersect(Interval(-bound, bound))
                if not clipped.is_empty:
                    box.set(name, clipped)
            if any(not box.get(name).is_bounded for name in self._names):
                continue
            status, model = self._search_box(box, budget)
            if status == "sat":
                return ArithResult("sat", model, self.work)
            if status == "unknown" and budget is not None and self.work > budget:
                return ArithResult("unknown", None, self.work)
        return ArithResult("unknown", None, self.work)


def solve_nra_conjunction(literals, declarations, budget=None):
    """Convenience wrapper around :class:`NraSolver`."""
    return NraSolver(literals, declarations).solve(budget)
