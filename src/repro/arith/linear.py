"""Extraction of linear forms from arithmetic terms.

A :class:`LinearExpr` is ``constant + sum(coefficient * variable)`` with
exact :class:`~fractions.Fraction` coefficients. :func:`linearize` turns a
term into one, raising :class:`NonlinearTermError` when the term is
genuinely nonlinear -- the signal the solver façade uses to route a
constraint to the NIA/NRA engines instead.
"""

from fractions import Fraction

from repro.errors import ReproError
from repro.smtlib.terms import Op


class NonlinearTermError(ReproError):
    """The term has no linear form (variable products, division, ...)."""


class LinearExpr:
    """An affine expression: ``constant + sum coeffs[v] * v``."""

    __slots__ = ("constant", "coefficients")

    def __init__(self, constant=0, coefficients=None):
        self.constant = Fraction(constant)
        self.coefficients = dict(coefficients or {})

    @classmethod
    def variable(cls, name):
        return cls(0, {name: Fraction(1)})

    def __add__(self, other):
        if isinstance(other, LinearExpr):
            coefficients = dict(self.coefficients)
            for name, coefficient in other.coefficients.items():
                updated = coefficients.get(name, Fraction(0)) + coefficient
                if updated:
                    coefficients[name] = updated
                else:
                    coefficients.pop(name, None)
            return LinearExpr(self.constant + other.constant, coefficients)
        return LinearExpr(self.constant + Fraction(other), self.coefficients)

    def __sub__(self, other):
        return self + (other * -1 if isinstance(other, LinearExpr) else -Fraction(other))

    def __mul__(self, scalar):
        scalar = Fraction(scalar)
        if scalar == 0:
            return LinearExpr(0)
        return LinearExpr(
            self.constant * scalar,
            {name: c * scalar for name, c in self.coefficients.items()},
        )

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1

    @property
    def is_constant(self):
        return not self.coefficients

    def evaluate(self, assignment):
        """Exact value under a name -> number mapping."""
        total = self.constant
        for name, coefficient in self.coefficients.items():
            total += coefficient * Fraction(assignment[name])
        return total

    def __repr__(self):
        parts = [str(self.constant)] if self.constant or not self.coefficients else []
        for name, coefficient in sorted(self.coefficients.items()):
            parts.append(f"{coefficient}*{name}")
        return " + ".join(parts)


def linearize(term):
    """Convert an Int/Real term into a :class:`LinearExpr`.

    Multiplication is linear only when at most one factor mentions a
    variable; division only by a non-zero constant. ``ite``, ``abs``,
    ``div``/``mod`` and variable division raise
    :class:`NonlinearTermError`.
    """
    memo = {}
    for sub in term.subterms():
        memo[sub.tid] = _linearize_node(sub, [memo[a.tid] for a in sub.args])
    return memo[term.tid]


def _linearize_node(term, args):
    op = term.op
    if op is Op.CONST:
        return LinearExpr(term.value)
    if op is Op.VAR:
        return LinearExpr.variable(term.name)
    if op is Op.ADD:
        result = args[0]
        for arg in args[1:]:
            result = result + arg
        return result
    if op is Op.SUB:
        result = args[0]
        for arg in args[1:]:
            result = result - arg
        return result
    if op is Op.NEG:
        return -args[0]
    if op is Op.TO_REAL:
        return args[0]
    if op is Op.MUL:
        result = LinearExpr(1)
        constant_product = Fraction(1)
        linear_part = None
        for arg in args:
            if arg.is_constant:
                constant_product *= arg.constant
            elif linear_part is None:
                linear_part = arg
            else:
                raise NonlinearTermError(f"product of variables in {term!r}")
        if linear_part is None:
            return LinearExpr(constant_product)
        return linear_part * constant_product
    if op is Op.RDIV:
        numerator, denominator = args
        if not denominator.is_constant:
            raise NonlinearTermError(f"division by a variable in {term!r}")
        if denominator.constant == 0:
            raise NonlinearTermError("division by literal zero")
        return numerator * (Fraction(1) / denominator.constant)
    raise NonlinearTermError(f"operator {op} has no linear form")
