"""Linear integer arithmetic via branch-and-bound over the simplex.

The classic LIA loop: solve the real relaxation exactly; if some integer
variable takes a fractional value, branch on ``x <= floor(v)`` versus
``x >= floor(v) + 1`` and recurse. Decidable, but the search tree can be
enormous -- the paper's Table 1 point that the theoretical solution bound
``2n(ma)^{2m+1}`` is "practically unbounded" shows up here as real work.
"""

from fractions import Fraction

from repro import guard
from repro.arith.contractor import GE, GT, LE, LT, EQ, NE, literals_to_atoms
from repro.arith.linear import linearize
from repro.arith.nia import ArithResult
from repro.arith.simplex import Simplex, SimplexConflict
from repro.errors import BudgetExceeded, UnsupportedLogicError
from repro.smtlib.evaluator import evaluate
from repro.smtlib.sorts import INT

#: Simplex pivots charged per branch-and-bound node, in addition to the
#: pivots the simplex itself performs.
NODE_OVERHEAD = 5

#: Abandon branches deeper than this; the subtree becomes "unknown".
MAX_BRANCH_DEPTH = 64


class _LinearAtom:
    """A linear atom ``expr <relation> 0`` in solver-ready form."""

    __slots__ = ("coefficients", "relation", "constant")

    def __init__(self, coefficients, relation, constant):
        self.coefficients = coefficients
        self.relation = relation
        self.constant = constant


def _compile_atoms(atoms, integer_names):
    """Turn contractor atoms into linear constraints.

    Strict inequalities over all-integer, all-integral-coefficient atoms
    are tightened to non-strict ones (``a < b`` becomes ``a <= b - 1``),
    the standard preprocessing that keeps branch-and-bound from diving
    forever on constraints like ``a < b < a + 1``.
    """
    compiled = []
    disequalities = []
    for atom in atoms:
        left = linearize(atom.left)
        right = linearize(atom.right)
        difference = left - right
        coefficients = dict(difference.coefficients)
        constant = -difference.constant  # move constant to the RHS
        relation = {LE: "<=", LT: "<", GE: ">=", GT: ">", EQ: "=", NE: "!="}[
            atom.relation
        ]
        if relation in ("<", ">") and _is_integral(coefficients, constant, integer_names):
            if relation == "<":
                relation, constant = "<=", constant - 1
            else:
                relation, constant = ">=", constant + 1
        if relation == "!=":
            disequalities.append((coefficients, constant))
        else:
            compiled.append(_LinearAtom(coefficients, relation, constant))
    return compiled, disequalities


def _is_integral(coefficients, constant, integer_names):
    return (
        all(name in integer_names for name in coefficients)
        and all(Fraction(c).denominator == 1 for c in coefficients.values())
        and Fraction(constant).denominator == 1
    )


class LiaSolver:
    """Branch-and-bound LIA solver for conjunctions of literals."""

    def __init__(self, literals, declarations):
        self.literals = list(literals)
        self.declarations = dict(declarations)
        atoms, residual = literals_to_atoms(self.literals)
        if residual:
            raise UnsupportedLogicError(
                f"LIA conjunction solver got non-arithmetic literals: {residual[:3]}"
            )
        self.integer_names = sorted(
            name for name, sort in self.declarations.items() if sort is INT
        )
        self.base_atoms, self.disequalities = _compile_atoms(
            atoms, set(self.integer_names)
        )
        self.work = 0
        self.pivots = 0
        self.bb_nodes = 0

    def stats(self):
        """Uniform engine counters (see :mod:`repro.telemetry.stats`)."""
        return {"pivots": self.pivots, "bb_nodes": self.bb_nodes}

    def _relaxation(self, extra_bounds, budget):
        """Solve the LRA relaxation with the given branching bounds."""
        simplex = Simplex(
            work_budget=None if budget is None else max(1, budget - self.work)
        )
        self.bb_nodes += 1
        try:
            return self._relax_inner(simplex, extra_bounds)
        finally:
            self.pivots += simplex.pivots

    def _relax_inner(self, simplex, extra_bounds):
        try:
            for atom in self.base_atoms:
                if not atom.coefficients:
                    # Ground atom: evaluate directly.
                    value = Fraction(0)
                    satisfied = {
                        "<=": value <= atom.constant,
                        "<": value < atom.constant,
                        ">=": value >= atom.constant,
                        ">": value > atom.constant,
                        "=": value == atom.constant,
                    }[atom.relation]
                    if not satisfied:
                        return None
                    continue
                simplex.assert_constraint(atom.coefficients, atom.relation, atom.constant)
            for name, relation, bound in extra_bounds:
                # Branching entries are single variables; disequality splits
                # carry a full coefficient dict.
                coefficients = name if isinstance(name, dict) else {name: 1}
                simplex.assert_constraint(coefficients, relation, bound)
        except SimplexConflict:
            self.work += simplex.pivots + NODE_OVERHEAD
            return None
        feasible = simplex.check()
        self.work += simplex.pivots + NODE_OVERHEAD
        if not feasible:
            return None
        return simplex.model()

    def _check_point(self, assignment):
        self.work += sum(literal.size() for literal in self.literals)
        return all(evaluate(literal, assignment) for literal in self.literals)

    def _gcd_infeasible(self):
        """Divisibility cut: ``sum c_i * x_i = b`` over integers is unsat
        when gcd(c_i) does not divide b (standard LIA preprocessing)."""
        from math import gcd

        for atom in self.base_atoms:
            if atom.relation != "=" or not atom.coefficients:
                continue
            if any(name not in self.integer_names for name in atom.coefficients):
                continue
            denominators = [Fraction(c).denominator for c in atom.coefficients.values()]
            denominators.append(Fraction(atom.constant).denominator)
            scale = 1
            for denominator in denominators:
                scale = scale * denominator // gcd(scale, denominator)
            coefficients = [int(Fraction(c) * scale) for c in atom.coefficients.values()]
            constant = Fraction(atom.constant) * scale
            divisor = 0
            for coefficient in coefficients:
                divisor = gcd(divisor, coefficient)
            if divisor and int(constant) % divisor != 0:
                return True
        return False

    def solve(self, budget=None):
        """Decide the conjunction; returns an :class:`ArithResult`."""
        if self._gcd_infeasible():
            return ArithResult("unsat", None, self.work + len(self.base_atoms))
        stack = [()]  # each entry: tuple of (name, relation, bound) branches
        depth_capped = False
        governor = guard.active()
        max_depth = governor.max_depth if governor.max_depth is not None else MAX_BRANCH_DEPTH
        try:
            while stack:
                if budget is not None and self.work > budget:
                    return ArithResult("unknown", None, self.work)
                if governor.interrupted("lia"):
                    return ArithResult("unknown", None, self.work)
                if not governor.memory_ok(len(stack), "lia"):
                    return ArithResult("unknown", None, self.work)
                extra = stack.pop()
                if len(extra) > max_depth:
                    depth_capped = True
                    if governor.max_depth is not None:
                        governor.note_give_up("lia", "depth")
                    continue
                model = self._relaxation(extra, budget)
                if model is None:
                    continue
                fractional = None
                for name in self.integer_names:
                    value = model.get(name, Fraction(0))
                    if value.denominator != 1:
                        fractional = (name, value)
                        break
                if fractional is None:
                    candidate = {
                        name: int(model.get(name, Fraction(0)))
                        for name in self.integer_names
                    }
                    # Give non-integer (hybrid) variables their values too.
                    for name, value in model.items():
                        if name not in candidate:
                            candidate[name] = value
                    if self._check_point(candidate):
                        return ArithResult("sat", candidate, self.work)
                    # A disequality or strictness nuance failed: exclude via
                    # branching on the first violated disequality.
                    branched = self._branch_disequality(candidate, extra, stack)
                    if not branched:
                        return ArithResult("unknown", None, self.work)
                    continue
                name, value = fractional
                floor = value.numerator // value.denominator
                stack.append(extra + ((name, "<=", Fraction(floor)),))
                stack.append(extra + ((name, ">=", Fraction(floor + 1)),))
        except BudgetExceeded:
            return ArithResult("unknown", None, self.work)
        if depth_capped:
            # Some branches were abandoned; exhausting the rest proves nothing.
            return ArithResult("unknown", None, self.work)
        return ArithResult("unsat", None, self.work)

    def _branch_disequality(self, candidate, extra, stack):
        """Split on a violated ``!=`` atom; True if a split was added."""
        for coefficients, constant in self.disequalities:
            value = sum(
                Fraction(c) * Fraction(candidate.get(name, 0))
                for name, c in coefficients.items()
            )
            if value == constant:
                # lhs must be < or > the constant; explore both half-spaces.
                stack.append(extra + ((coefficients, "<", constant),))
                stack.append(extra + ((coefficients, ">", constant),))
                return True
        return False


def solve_lia_conjunction(literals, declarations, budget=None):
    """Convenience wrapper around :class:`LiaSolver`."""
    return LiaSolver(literals, declarations).solve(budget)
