"""HC4-style constraint propagation over term DAGs.

Given a conjunction of arithmetic literals and a box (variable name ->
:class:`~repro.arith.interval.Interval`), the contractor runs the classic
forward-backward sweep:

- *forward*: evaluate an interval for every node bottom-up;
- *backward*: starting from the constraint's truth requirement, narrow the
  intervals of subterms top-down, intersecting variable boxes.

All rules are conservative, so a contracted box never loses a solution --
that soundness is what the ICP solvers rely on and what the property
tests assert.
"""

from fractions import Fraction

from repro import guard, telemetry
from repro.arith.interval import EMPTY, Interval
from repro.errors import SolverError
from repro.smtlib.sorts import INT
from repro.smtlib.terms import Op

#: Atom relations after negation elimination.
LE, LT, GE, GT, EQ, NE = "le", "lt", "ge", "gt", "eq", "ne"

_FLIP = {LE: GE, LT: GT, GE: LE, GT: LT, EQ: EQ, NE: NE}
_NEGATE = {LE: GT, LT: GE, GE: LT, GT: LE, EQ: NE, NE: EQ}


class Atom:
    """A normalized arithmetic literal: ``left <relation> right``."""

    __slots__ = ("relation", "left", "right")

    def __init__(self, relation, left, right):
        self.relation = relation
        self.left = left
        self.right = right

    def negated(self):
        return Atom(_NEGATE[self.relation], self.left, self.right)

    def __repr__(self):
        return f"Atom({self.left!r} {self.relation} {self.right!r})"


_OP_TO_RELATION = {Op.LE: LE, Op.LT: LT, Op.GE: GE, Op.GT: GT, Op.EQ: EQ}


def atom_from_term(term, polarity=True):
    """Build an :class:`Atom` from a comparison/equality term.

    Returns None if the term is not an arithmetic atom (e.g. a boolean
    variable or a bitvector comparison).
    """
    relation = _OP_TO_RELATION.get(term.op)
    if relation is None:
        return None
    left, right = term.args
    if not (left.sort.is_int or left.sort.is_real):
        return None
    atom = Atom(relation, left, right)
    return atom if polarity else atom.negated()


class Box:
    """An immutable-ish mapping from variable name to interval."""

    __slots__ = ("intervals",)

    def __init__(self, intervals):
        self.intervals = dict(intervals)

    def copy(self):
        return Box(self.intervals)

    def get(self, name):
        return self.intervals.get(name, Interval.top())

    def set(self, name, interval):
        self.intervals[name] = interval

    @property
    def is_empty(self):
        return any(interval.is_empty for interval in self.intervals.values())

    def widest_variable(self):
        """Variable with the largest width; unbounded beats bounded.

        Point intervals are excluded. Returns None when every interval is
        a point (the box is fully decided).
        """
        best_name = None
        best_width = Fraction(-1)
        for name in sorted(self.intervals):
            interval = self.intervals[name]
            if interval.is_point or interval.is_empty:
                continue
            width = interval.width()
            if width is None:
                return name
            if width > best_width:
                best_width = width
                best_name = name
        return best_name

    def volume_bound(self, limit):
        """Integer-point count if below ``limit``, else None.

        Only meaningful for all-integer boxes.
        """
        total = 1
        for interval in self.intervals.values():
            count = interval.integer_count()
            if count is None:
                return None
            total *= max(count, 1)
            if total > limit:
                return None
        return total

    def __repr__(self):
        inner = ", ".join(f"{k}: {v}" for k, v in sorted(self.intervals.items()))
        return f"Box({inner})"


class Contractor:
    """Forward-backward contraction for a fixed set of atoms.

    Attributes:
        work: interval-node evaluations performed (virtual cost).
        contractions: forward-backward sweeps run (calls to
            :meth:`contract`).
    """

    def __init__(self, atoms, integer_sorted=None):
        self.atoms = list(atoms)
        self.work = 0
        self.contractions = 0
        self._integer = integer_sorted

    def _is_int(self, term):
        return term.sort is INT

    # -- forward ---------------------------------------------------------

    def _forward(self, term, box, memo):
        for sub in term.subterms():
            if sub.tid in memo:
                continue
            self.work += 1
            memo[sub.tid] = self._forward_node(sub, box, memo)
        return memo[term.tid]

    def _forward_node(self, term, box, memo):
        op = term.op
        if op is Op.CONST:
            if isinstance(term.value, bool):
                return Interval.top()
            return Interval.point(Fraction(term.value))
        if op is Op.VAR:
            if term.sort.is_int or term.sort.is_real:
                interval = box.get(term.name)
                if term.sort is INT:
                    interval = interval.round_to_integer()
                return interval
            return Interval.top()
        args = [memo[a.tid] for a in term.args]
        if op is Op.ADD:
            result = args[0]
            for arg in args[1:]:
                result = result + arg
            return result
        if op is Op.SUB:
            result = args[0]
            for arg in args[1:]:
                result = result - arg
            return result
        if op is Op.MUL:
            # Group identical factors so that x*x is evaluated as a square
            # ([0, hi]) rather than a generic product ([-lo*hi, ...]).
            result = Interval.point(1)
            for tid, count in _factor_groups(term.args).items():
                result = result * memo[tid].power(count)
            return result
        if op is Op.NEG:
            return -args[0]
        if op is Op.ABS:
            return args[0].abs()
        if op is Op.RDIV:
            return args[0].divide(args[1])
        if op is Op.IDIV:
            quotient = args[0].divide(args[1])
            if quotient.is_empty:
                return EMPTY
            # Euclidean division differs from exact division by at most 1.
            widened = quotient + Interval(-1, 1)
            return widened.round_to_integer()
        if op is Op.MOD:
            divisor = args[1].abs()
            if divisor.hi is None:
                upper = None
            else:
                upper = max(divisor.hi - 1, Fraction(0))
            result = Interval(0, upper)
            # Total semantics: mod by zero returns the dividend.
            if args[1].contains(Fraction(0)):
                result = result.hull(args[0])
            return result
        if op is Op.ITE:
            return args[1].hull(args[2])
        if op is Op.TO_REAL:
            return args[0]
        if op is Op.TO_INT:
            lo = None
            hi = None
            if args[0].lo is not None:
                lo = args[0].lo.numerator // args[0].lo.denominator
            if args[0].hi is not None:
                hi = args[0].hi.numerator // args[0].hi.denominator
            if args[0].is_empty:
                return EMPTY
            return Interval(lo, hi)
        # Boolean-sorted operators inside ite conditions etc.
        return Interval.top()

    # -- backward -----------------------------------------------------------

    def _narrow(self, term, interval, box, memo, queue):
        if term.sort is INT:
            interval = interval.round_to_integer()
        current = memo.get(term.tid, Interval.top())
        narrowed = current.intersect(interval)
        if narrowed.is_empty:
            memo[term.tid] = EMPTY
            raise _EmptyBox
        if narrowed == current:
            return
        memo[term.tid] = narrowed
        if term.is_var:
            box.set(term.name, narrowed)
        else:
            queue.append(term)

    def _backward_node(self, term, box, memo, queue):
        """Push the node's (already narrowed) interval down to its args."""
        op = term.op
        target = memo[term.tid]
        args = term.args
        self.work += 1
        if op is Op.ADD:
            self._backward_sum(args, [memo[a.tid] for a in args], target, box, memo, queue, signs=None)
            return
        if op is Op.SUB:
            signs = [1] + [-1] * (len(args) - 1)
            self._backward_sum(args, [memo[a.tid] for a in args], target, box, memo, queue, signs=signs)
            return
        if op is Op.NEG:
            self._narrow(args[0], -target, box, memo, queue)
            return
        if op is Op.MUL:
            groups = _factor_groups(args)
            representatives = {a.tid: a for a in args}
            for tid, count in groups.items():
                others = Interval.point(1)
                for other_tid, other_count in groups.items():
                    if other_tid != tid:
                        others = others * memo[other_tid].power(other_count)
                # base**count must lie in target/others; take the count-th
                # root preimage (exact for x*x-style squares). This is the
                # relational inverse of multiplication, not SMT-LIB total
                # division: when the other factors admit zero and the
                # target admits zero, this factor is unconstrained
                # (0 * anything = 0), so do not narrow it.
                if others.contains(Fraction(0)) and target.contains(Fraction(0)):
                    continue
                power_target = target.divide(others)
                self._narrow(
                    representatives[tid], power_target.root(count), box, memo, queue
                )
            return
        if op is Op.ABS:
            value = memo[args[0].tid]
            hi = target.hi
            candidate = Interval(None if hi is None else -hi, hi)
            # Refine using the sign of the argument when it is known.
            if value.lo is not None and value.lo >= 0:
                candidate = target
            elif value.hi is not None and value.hi <= 0:
                candidate = -target
            self._narrow(args[0], candidate, box, memo, queue)
            return
        if op is Op.RDIV:
            numerator, denominator = args
            denominator_value = memo[denominator.tid]
            # target = n / d  =>  n = target * d (valid when d avoids 0).
            if not denominator_value.contains(Fraction(0)):
                self._narrow(numerator, target * denominator_value, box, memo, queue)
            return
        if op is Op.TO_REAL:
            self._narrow(args[0], target, box, memo, queue)
            return
        # IDIV / MOD / ITE / TO_INT: no (or unsound-to-attempt) narrowing.

    def _backward_sum(self, args, values, target, box, memo, queue, signs):
        count = len(args)
        if signs is None:
            signs = [1] * count
        # prefix[i] = signed sum of values[:i], suffix[i] = of values[i+1:].
        prefix = [Interval.point(0)]
        for value, sign in zip(values, signs):
            term_value = value if sign > 0 else -value
            prefix.append(prefix[-1] + term_value)
        suffix = [Interval.point(0)] * (count + 1)
        for index in range(count - 1, -1, -1):
            term_value = values[index] if signs[index] > 0 else -values[index]
            suffix[index] = suffix[index + 1] + term_value
        for index, arg in enumerate(args):
            rest = prefix[index] + suffix[index + 1]
            wanted = target - rest
            if signs[index] < 0:
                wanted = -wanted
            self._narrow(arg, wanted, box, memo, queue)

    # -- atom revision --------------------------------------------------------

    def _revise(self, atom, box):
        """One forward-backward sweep for a single atom.

        Returns False if the atom is certainly violated on the box.
        """
        memo = {}
        left = self._forward(atom.left, box, memo)
        right = self._forward(atom.right, box, memo)
        if left.is_empty or right.is_empty:
            return False
        relation = atom.relation
        integer = self._is_int(atom.left)

        if relation == NE:
            if left.certainly_eq(right):
                return False
            if integer:
                # Narrow when one side is a point at the other's endpoint.
                self._revise_ne_integer(atom, left, right, box, memo)
            return True

        if relation in (GE, GT):
            atom = Atom(_FLIP[relation], atom.right, atom.left)
            left, right = right, left
            relation = atom.relation

        if relation == EQ:
            meet = left.intersect(right)
            if meet.is_empty:
                return False
            try:
                queue = []
                self._narrow(atom.left, meet, box, memo, queue)
                self._narrow(atom.right, meet, box, memo, queue)
                self._drain(queue, box, memo)
            except _EmptyBox:
                return False
            return True

        # relation is LE or LT: left <= right (strict handled for ints).
        if relation == LT and left.certainly_eq(right):
            return False
        if not (left.possibly_lt(right) if relation == LT else left.possibly_le(right)):
            return False
        offset = 1 if (relation == LT and integer) else 0
        left_cap = Interval(None, right.hi - offset if right.hi is not None else None)
        right_floor = Interval(left.lo + offset if left.lo is not None else None, None)
        try:
            queue = []
            self._narrow(atom.left, left_cap, box, memo, queue)
            self._narrow(atom.right, right_floor, box, memo, queue)
            self._drain(queue, box, memo)
        except _EmptyBox:
            return False
        return True

    def _revise_ne_integer(self, atom, left, right, box, memo):
        """Integer disequality: peel a point endpoint off the other side."""
        for side, value, other in (
            (atom.left, left, right),
            (atom.right, right, left),
        ):
            if other.is_point and value.lo is not None and value.lo == other.lo:
                try:
                    self._narrow(
                        side, Interval(value.lo + 1, value.hi), box, memo, []
                    )
                except _EmptyBox:
                    pass
            if other.is_point and value.hi is not None and value.hi == other.lo:
                try:
                    self._narrow(
                        side, Interval(value.lo, value.hi - 1), box, memo, []
                    )
                except _EmptyBox:
                    pass

    def _drain(self, queue, box, memo):
        while queue:
            term = queue.pop()
            self._backward_node(term, box, memo, queue)

    def contract(self, box, max_passes=8):
        """Run atom revision to a (bounded) fixpoint.

        Returns the contracted box, or None when some atom is certainly
        violated (the box contains no solution).
        """
        self.contractions += 1
        if telemetry.enabled:
            telemetry.counter_add("solver.contractions", engine="icp")
        box = box.copy()
        governor = guard.active()
        for _ in range(max_passes):
            if governor.interrupted("contractor"):
                # Best-effort: the passes already run keep the box sound
                # (contraction only narrows), so returning early is safe.
                break
            before = dict(box.intervals)
            for atom in self.atoms:
                if not self._revise(atom, box):
                    return None
                if box.is_empty:
                    return None
            if box.intervals == before:
                break
        return box


def _factor_groups(args):
    """Multiset of factor term ids: tid -> multiplicity."""
    groups = {}
    for arg in args:
        groups[arg.tid] = groups.get(arg.tid, 0) + 1
    return groups


class _EmptyBox(Exception):
    """Internal: contraction emptied an interval."""


def split_conjunction(term):
    """Flatten nested conjunctions into a literal list."""
    literals = []
    stack = [term]
    while stack:
        current = stack.pop()
        if current.op is Op.AND:
            stack.extend(current.args)
        else:
            literals.append(current)
    return literals


def literals_to_atoms(literals):
    """Convert theory literals to atoms.

    Handles one level of negation. Returns (atoms, residual) where
    residual contains literals that are not arithmetic atoms (boolean
    structure the caller must deal with).
    """
    atoms = []
    residual = []
    for literal in literals:
        polarity = True
        core = literal
        while core.op is Op.NOT:
            polarity = not polarity
            core = core.args[0]
        if core.op is Op.DISTINCT and (
            core.args[0].sort.is_int or core.args[0].sort.is_real
        ):
            if polarity:
                for i in range(len(core.args)):
                    for j in range(i + 1, len(core.args)):
                        atoms.append(Atom(NE, core.args[i], core.args[j]))
                continue
            if len(core.args) == 2:
                atoms.append(Atom(EQ, core.args[0], core.args[1]))
                continue
            # not (distinct a b c ...) is a disjunction of equalities;
            # leave it to the boolean layer.
            residual.append(literal)
            continue
        atom = atom_from_term(core, polarity)
        if atom is None:
            if core.is_const and bool(core.value) == polarity:
                continue  # literally true
            residual.append(literal)
        else:
            atoms.append(atom)
    return atoms, residual
