"""Nonlinear integer arithmetic solving (the expensive baseline).

Satisfiability of QF_NIA is undecidable, so like every real solver this
engine is incomplete: it combines

- HC4 interval contraction (:mod:`repro.arith.contractor`),
- branch-and-prune search over integer boxes, and
- *magnitude deepening* for variables the contraction leaves unbounded:
  the box ``[-B, B]^n`` is searched for an escalating schedule of B.

``unsat`` is reported only when it is sound: the initial contraction
already bounded every variable, so the finite search was exhaustive, or
contraction proved emptiness outright. Otherwise an exhausted search
yields ``unknown`` -- exactly the behaviour the paper ascribes to
unbounded-theory solvers, and the reason theory arbitrage has room to win.
"""

from fractions import Fraction

from repro import guard, telemetry
from repro.arith.contractor import Box, Contractor, literals_to_atoms
from repro.arith.interval import Interval
from repro.errors import ReproError, SolverError, UnsupportedLogicError
from repro.smtlib.evaluator import evaluate
from repro.smtlib.sorts import INT


class ArithResult:
    """Outcome of a theory-solver query.

    Attributes:
        status: "sat" / "unsat" / "unknown".
        model: name -> int/Fraction when sat.
        work: deterministic work units spent.
    """

    __slots__ = ("status", "model", "work")

    def __init__(self, status, model=None, work=0):
        self.status = status
        self.model = model
        self.work = work

    def __repr__(self):
        return f"ArithResult({self.status}, work={self.work})"


#: Magnitude-deepening schedule: successive |x| <= B boxes.
DEEPENING_SCHEDULE = (8, 64, 1024, 1 << 16, 1 << 24, 1 << 40, 1 << 64)

#: Enumerate a box exhaustively once it has at most this many points.
ENUMERATION_LIMIT = 32


class NiaSolver:
    """Branch-and-prune NIA solver for conjunctions of literals."""

    def __init__(self, literals, declarations, enumeration_limit=ENUMERATION_LIMIT):
        self.literals = list(literals)
        self.declarations = dict(declarations)
        self.enumeration_limit = enumeration_limit
        atoms, residual = literals_to_atoms(self.literals)
        if residual:
            raise UnsupportedLogicError(
                f"NIA conjunction solver got non-arithmetic literals: {residual[:3]}"
            )
        self.atoms = atoms
        self.work = 0
        self._names = sorted(
            name for name, sort in self.declarations.items() if sort is INT
        )
        self._contractors = []

    def _new_contractor(self):
        contractor = Contractor(self.atoms)
        self._contractors.append(contractor)
        return contractor

    def stats(self):
        """Uniform engine counters (see :mod:`repro.telemetry.stats`)."""
        return {
            "contractions": sum(c.contractions for c in self._contractors),
            "interval_evals": sum(c.work for c in self._contractors),
        }

    # -- exact point checking ----------------------------------------------

    def _check_point(self, assignment):
        self.work += sum(literal.size() for literal in self.literals)
        try:
            return all(evaluate(literal, assignment) for literal in self.literals)
        except ReproError as error:
            # Taxonomy errors (e.g. an unevaluable operator) become a
            # structured solver failure; genuine bugs propagate raw.
            telemetry.counter_add("solver.internal_error", engine="nia")
            raise SolverError(f"point evaluation failed: {error}") from error

    def _enumerate(self, box):
        """Try every integer point of a small box."""
        names = self._names
        rounded = [box.get(name).round_to_integer() for name in names]
        if any(interval.is_empty for interval in rounded):
            return None
        ranges = [
            range(int(interval.lo), int(interval.hi) + 1) for interval in rounded
        ]
        assignment = {}

        def recurse(index):
            if index == len(names):
                return self._check_point(dict(assignment))
            for value in ranges[index]:
                assignment[names[index]] = value
                if recurse(index + 1):
                    return True
            return False

        if recurse(0):
            return dict(assignment)
        return None

    # -- search -------------------------------------------------------------

    def _search_box(self, initial_box, budget):
        """Exhaustive branch-and-prune within a bounded box.

        Returns ("sat", model), ("unsat", None), or ("unknown", None) when
        the budget ran out.
        """
        contractor = self._new_contractor()
        governor = guard.active()
        stack = [initial_box]
        while stack:
            if budget is not None and self.work + contractor.work > budget:
                self.work += contractor.work
                return "unknown", None
            if governor.interrupted("nia") or not governor.memory_ok(len(stack), "nia"):
                self.work += contractor.work
                return "unknown", None
            box = stack.pop()
            contracted = contractor.contract(box)
            if contracted is None:
                continue
            count = contracted.volume_bound(self.enumeration_limit)
            if count is not None:
                model = self._enumerate(contracted)
                if model is not None:
                    self.work += contractor.work
                    return "sat", model
                continue
            name = contracted.widest_variable()
            if name is None:
                # All points (should have been enumerable); fall back.
                model = self._enumerate(contracted)
                self.work += contractor.work
                if model is not None:
                    return "sat", model
                return "unsat", None
            left, right = contracted.get(name).round_to_integer().split_integer()
            for half in (right, left):
                if not half.is_empty:
                    child = contracted.copy()
                    child.set(name, half)
                    stack.append(child)
        self.work += contractor.work
        return "unsat", None

    def solve(self, budget=None):
        """Decide the conjunction. Returns an :class:`ArithResult`."""
        if not self._names:
            # Ground conjunction: just evaluate.
            if self._check_point({}):
                return ArithResult("sat", {}, self.work)
            return ArithResult("unsat", None, self.work)

        top = Box({name: Interval.top() for name in self._names})
        contractor = self._new_contractor()
        contracted = contractor.contract(top)
        self.work += contractor.work
        if contracted is None:
            return ArithResult("unsat", None, self.work)

        fully_bounded = all(
            contracted.get(name).is_bounded for name in self._names
        )
        if fully_bounded:
            status, model = self._search_box(contracted, budget)
            return ArithResult(status, model, self.work)

        # Magnitude deepening over the unbounded directions.
        for bound in DEEPENING_SCHEDULE:
            box = contracted.copy()
            for name in self._names:
                clipped = box.get(name).intersect(Interval(-bound, bound))
                if clipped.is_empty:
                    # The contracted interval lies entirely outside
                    # [-B, B]; keep the original and let the next
                    # deepening level reach it.
                    continue
                box.set(name, clipped)
            if any(not box.get(name).is_bounded for name in self._names):
                continue
            status, model = self._search_box(box, budget)
            if status == "sat":
                return ArithResult("sat", model, self.work)
            if status == "unknown":
                return ArithResult("unknown", None, self.work)
            if budget is not None and self.work > budget:
                return ArithResult("unknown", None, self.work)
        # Search exhausted the schedule without finding a model; since the
        # domain is genuinely unbounded this proves nothing.
        return ArithResult("unknown", None, self.work)


def solve_nia_conjunction(literals, declarations, budget=None):
    """Convenience wrapper around :class:`NiaSolver`."""
    return NiaSolver(literals, declarations).solve(budget)
