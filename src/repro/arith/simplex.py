"""Exact general simplex for linear real arithmetic.

Implements the Dutertre--de Moura "general simplex" used inside DPLL(T)
solvers: variables carry lower/upper bounds, linear combinations get slack
variables, and a Bland's-rule pivot loop restores feasibility. All
arithmetic is exact (:class:`~fractions.Fraction`); strict inequalities
are handled with delta-rationals (``c + k*delta`` for an infinitesimal
positive delta), so QF_LRA is decided exactly.

Work accounting: every pivot counts toward the deterministic work budget
used by the evaluation harness as its virtual clock.
"""

from fractions import Fraction

from repro import guard, telemetry
from repro.errors import BudgetExceeded


class DeltaRational:
    """A rational plus an infinitesimal: ``value + delta_coefficient * d``.

    Ordering is lexicographic, which models an arbitrarily small positive
    ``d`` exactly.
    """

    __slots__ = ("value", "delta")

    def __init__(self, value, delta=0):
        self.value = Fraction(value)
        self.delta = Fraction(delta)

    def __add__(self, other):
        return DeltaRational(self.value + other.value, self.delta + other.delta)

    def __sub__(self, other):
        return DeltaRational(self.value - other.value, self.delta - other.delta)

    def scale(self, factor):
        factor = Fraction(factor)
        return DeltaRational(self.value * factor, self.delta * factor)

    def _key(self):
        return (self.value, self.delta)

    def __eq__(self, other):
        return isinstance(other, DeltaRational) and self._key() == other._key()

    def __lt__(self, other):
        return self._key() < other._key()

    def __le__(self, other):
        return self._key() <= other._key()

    def __gt__(self, other):
        return self._key() > other._key()

    def __ge__(self, other):
        return self._key() >= other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        if self.delta == 0:
            return str(self.value)
        return f"{self.value}{'+' if self.delta > 0 else ''}{self.delta}d"


class SimplexConflict(Exception):
    """Internal signal: the asserted bounds are infeasible.

    Attributes:
        explanation: indices of the bound assertions involved, when known.
    """

    def __init__(self, explanation=None):
        super().__init__("infeasible bounds")
        self.explanation = explanation or []


class Simplex:
    """A general simplex instance over named variables.

    Typical use::

        simplex = Simplex()
        simplex.assert_constraint({"x": 1, "y": 2}, ">=", Fraction(3))
        simplex.assert_constraint({"x": 1}, "<", Fraction(1))
        if simplex.check():
            model = simplex.model()     # {"x": Fraction, "y": Fraction}
    """

    def __init__(self, work_budget=None):
        self._num_vars = 0
        self._names = {}  # external name -> index
        self._index_names = {}  # index -> external name (structural vars)
        self._rows = {}  # basic index -> {nonbasic index: Fraction}
        self._basic = set()
        self._lower = {}
        self._upper = {}
        self._assignment = {}
        self._slack_forms = {}  # frozen linear form -> slack index
        self._infeasible = False
        self.pivots = 0
        self.work_budget = work_budget
        self._bound_tags = {}  # index -> {('lo'|'hi'): tag}
        # Deep-profile counters, tracked only while telemetry is enabled
        # and flushed as deltas by check(); they never affect solving.
        self.bound_asserts = 0
        self.bound_updates = 0
        self._recorded = (0, 0)

    # -- variables --------------------------------------------------------

    def _new_index(self):
        index = self._num_vars
        self._num_vars += 1
        self._assignment[index] = DeltaRational(0)
        return index

    def variable(self, name):
        """Index of the structural variable ``name`` (created on demand)."""
        index = self._names.get(name)
        if index is None:
            index = self._new_index()
            self._names[name] = index
            self._index_names[index] = name
        return index

    def _slack_for(self, coefficients):
        """Slack variable for a linear combination (shared per form)."""
        form = tuple(sorted(coefficients.items()))
        slack = self._slack_forms.get(form)
        if slack is not None:
            return slack
        slack = self._new_index()
        row = {}
        value = DeltaRational(0)
        for name, coefficient in coefficients.items():
            index = self.variable(name)
            if index in self._basic:
                for other, factor in self._rows[index].items():
                    updated = row.get(other, Fraction(0)) + coefficient * factor
                    if updated:
                        row[other] = updated
                    else:
                        row.pop(other, None)
            else:
                updated = row.get(index, Fraction(0)) + Fraction(coefficient)
                if updated:
                    row[index] = updated
                else:
                    row.pop(index, None)
        for other, factor in row.items():
            value = value + self._assignment[other].scale(factor)
        self._rows[slack] = row
        self._basic.add(slack)
        self._assignment[slack] = value
        self._slack_forms[form] = slack
        return slack

    # -- bound assertion ----------------------------------------------------

    def assert_constraint(self, coefficients, relation, constant, tag=None):
        """Assert ``sum coefficients . vars  <relation>  constant``.

        relation is one of ``<=``, ``<``, ``>=``, ``>``, ``=``.
        ``tag`` labels the assertion for conflict explanations.

        Raises:
            SimplexConflict: the new bound contradicts an existing one
                directly (full conflicts can also surface later in check()).
        """
        if telemetry.enabled:
            self.bound_asserts += 1
        if len(coefficients) == 1:
            ((name, coefficient),) = coefficients.items()
            index = self.variable(name)
            constant = Fraction(constant) / Fraction(coefficient)
            if Fraction(coefficient) < 0:
                relation = {"<=": ">=", "<": ">", ">=": "<=", ">": "<", "=": "="}[relation]
        else:
            index = self._slack_for(coefficients)
            constant = Fraction(constant)
        if relation in ("<=", "<"):
            bound = DeltaRational(constant, -1 if relation == "<" else 0)
            self._assert_upper(index, bound, tag)
        elif relation in (">=", ">"):
            bound = DeltaRational(constant, 1 if relation == ">" else 0)
            self._assert_lower(index, bound, tag)
        else:
            self._assert_upper(index, DeltaRational(constant), tag)
            self._assert_lower(index, DeltaRational(constant), tag)

    def _tags_for(self, index):
        return self._bound_tags.setdefault(index, {})

    def _assert_upper(self, index, bound, tag):
        current = self._upper.get(index)
        if current is not None and current <= bound:
            return
        lower = self._lower.get(index)
        if lower is not None and bound < lower:
            self._infeasible = True
            raise SimplexConflict(
                [t for t in (self._tags_for(index).get("lo"), tag) if t is not None]
            )
        self._upper[index] = bound
        if tag is not None:
            self._tags_for(index)["hi"] = tag
        if index not in self._basic and self._assignment[index] > bound:
            self._update(index, bound)

    def _assert_lower(self, index, bound, tag):
        current = self._lower.get(index)
        if current is not None and current >= bound:
            return
        upper = self._upper.get(index)
        if upper is not None and bound > upper:
            self._infeasible = True
            raise SimplexConflict(
                [t for t in (self._tags_for(index).get("hi"), tag) if t is not None]
            )
        self._lower[index] = bound
        if tag is not None:
            self._tags_for(index)["lo"] = tag
        if index not in self._basic and self._assignment[index] < bound:
            self._update(index, bound)

    def _update(self, index, value):
        if telemetry.enabled:
            self.bound_updates += 1
        delta = value - self._assignment[index]
        for basic in self._basic:
            coefficient = self._rows[basic].get(index)
            if coefficient:
                self._assignment[basic] = self._assignment[basic] + delta.scale(coefficient)
        self._assignment[index] = value

    # -- pivoting ------------------------------------------------------------

    def _pivot(self, leaving, entering):
        """Make ``entering`` basic in place of ``leaving``."""
        row = self._rows.pop(leaving)
        self._basic.discard(leaving)
        pivot_coefficient = row.pop(entering)
        # leaving = sum(row) + pivot_coefficient * entering
        # => entering = (leaving - sum(row)) / pivot_coefficient
        new_row = {leaving: Fraction(1) / pivot_coefficient}
        for other, factor in row.items():
            new_row[other] = -factor / pivot_coefficient
        self._rows[entering] = new_row
        self._basic.add(entering)
        for basic in list(self._basic):
            if basic is entering:
                continue
            factor = self._rows[basic].pop(entering, None)
            if factor is None:
                continue
            target = self._rows[basic]
            for other, inner in new_row.items():
                updated = target.get(other, Fraction(0)) + factor * inner
                if updated:
                    target[other] = updated
                else:
                    target.pop(other, None)

    def _pivot_and_update(self, leaving, entering, value):
        coefficient = self._rows[leaving][entering]
        theta = (value - self._assignment[leaving]).scale(Fraction(1) / coefficient)
        self._assignment[leaving] = value
        self._assignment[entering] = self._assignment[entering] + theta
        for basic in self._basic:
            if basic == leaving:
                continue
            factor = self._rows[basic].get(entering)
            if factor:
                self._assignment[basic] = self._assignment[basic] + theta.scale(factor)
        self._pivot(leaving, entering)
        self.pivots += 1
        if self.work_budget is not None and self.pivots > self.work_budget:
            raise BudgetExceeded(self.pivots, self.work_budget, layer="simplex")
        if guard.active().interrupted("simplex"):
            raise BudgetExceeded(self.pivots, self.work_budget, layer="simplex")

    def check(self):
        """Restore feasibility. True if a model exists, False otherwise.

        Raises:
            BudgetExceeded: the pivot budget ran out (virtual timeout).
        """
        if not telemetry.enabled:
            return self._check()
        before = self.pivots
        try:
            return self._check()
        finally:
            asserts_done, updates_done = self._recorded
            telemetry.record_counters(
                {
                    "pivots": self.pivots - before,
                    "checks": 1,
                    "bound_asserts": self.bound_asserts - asserts_done,
                    "bound_updates": self.bound_updates - updates_done,
                },
                engine="simplex",
            )
            self._recorded = (self.bound_asserts, self.bound_updates)

    def _check(self):
        """The Bland's-rule pivot loop behind :meth:`check`."""
        if self._infeasible:
            return False
        while True:
            violated = None
            need_increase = False
            for basic in sorted(self._basic):  # Bland's rule: smallest index
                value = self._assignment[basic]
                lower = self._lower.get(basic)
                upper = self._upper.get(basic)
                if lower is not None and value < lower:
                    violated, need_increase, target = basic, True, lower
                    break
                if upper is not None and value > upper:
                    violated, need_increase, target = basic, False, upper
                    break
            if violated is None:
                return True
            row = self._rows[violated]
            entering = None
            for nonbasic in sorted(row):
                coefficient = row[nonbasic]
                value = self._assignment[nonbasic]
                upper = self._upper.get(nonbasic)
                lower = self._lower.get(nonbasic)
                if need_increase:
                    can_help = (coefficient > 0 and (upper is None or value < upper)) or (
                        coefficient < 0 and (lower is None or value > lower)
                    )
                else:
                    can_help = (coefficient > 0 and (lower is None or value > lower)) or (
                        coefficient < 0 and (upper is None or value < upper)
                    )
                if can_help:
                    entering = nonbasic
                    break
            if entering is None:
                self._infeasible = True
                return False
            self._pivot_and_update(violated, entering, target)

    # -- models ----------------------------------------------------------------

    def _delta_upper_bound(self):
        """A concrete positive value for the infinitesimal ``d``.

        For every bound ``a + b*d  <=  c + e*d`` that currently holds in
        delta-rational arithmetic, choose d small enough that it also holds
        over plain rationals.
        """
        candidates = []
        for index in range(self._num_vars):
            value = self._assignment[index]
            for bound, is_lower in ((self._lower.get(index), True), (self._upper.get(index), False)):
                if bound is None:
                    continue
                difference = (value - bound) if is_lower else (bound - value)
                # difference = p + q*d >= 0 in delta arithmetic; if q < 0 we
                # need d <= p / (-q).
                if difference.delta < 0 and difference.value > 0:
                    candidates.append(Fraction(difference.value, -difference.delta))
        if not candidates:
            return Fraction(1)
        return min(min(candidates) / 2, Fraction(1))

    def model(self):
        """Concrete rational values for every structural variable."""
        delta = self._delta_upper_bound()
        result = {}
        for name, index in self._names.items():
            value = self._assignment[index]
            result[name] = value.value + value.delta * delta
        return result

    def bounds_of(self, name):
        """Current (lower, upper) delta-rational bounds of a variable."""
        index = self._names.get(name)
        if index is None:
            return (None, None)
        return (self._lower.get(index), self._upper.get(index))
