"""Machine-readable export of experiment results (JSON / CSV).

A real artifact ships raw data next to rendered tables; this module
serializes the harness output so the numbers in EXPERIMENTS.md can be
regenerated and diffed mechanically.
"""

import csv
import io
import json

from repro.evaluation.runner import LOGICS, SOLVER_PROFILES, STRATEGIES


def rows_as_dicts(cache, logics=LOGICS):
    """Flatten every (logic, profile, strategy, benchmark) row."""
    flattened = []
    for logic in logics:
        for profile in SOLVER_PROFILES:
            for strategy in STRATEGIES:
                for row in cache.rows(logic, profile, strategy):
                    record = dict(row)
                    record["logic"] = logic
                    record["profile"] = profile
                    record["strategy"] = strategy
                    flattened.append(record)
    return flattened


def to_json(cache, logics=LOGICS, indent=2):
    """All per-constraint rows as a JSON string."""
    return json.dumps(rows_as_dicts(cache, logics), indent=indent, sort_keys=True)


_CSV_FIELDS = (
    "logic",
    "profile",
    "strategy",
    "name",
    "pre_status",
    "t_pre",
    "case",
    "verified",
    "t_staub",
    "final",
    "tractability",
    "timed_out",
    "width",
)


def to_csv(cache, logics=LOGICS):
    """All per-constraint rows as a CSV string."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_FIELDS, extrasaction="ignore")
    writer.writeheader()
    for record in rows_as_dicts(cache, logics):
        writer.writerow(record)
    return buffer.getvalue()


def write_results(cache, json_path=None, csv_path=None, logics=LOGICS):
    """Write results to disk; returns the paths written."""
    written = []
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(to_json(cache, logics))
        written.append(json_path)
    if csv_path:
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(to_csv(cache, logics))
        written.append(csv_path)
    return written
