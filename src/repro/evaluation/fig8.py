"""Figure 8 / RQ3: STAUB inside the termination-proving client.

Runs the Automizer-like analysis over the 97-program suite with STAUB's
portfolio enabled and reports the paper's summary statistics: verified
cases, tractability improvements, mean speedup over verified cases, and
the overall mean speedup across all queries.
"""

from repro.evaluation.stats import geometric_mean
from repro.termination import Automizer, termination_benchmark_suite


def run_client_experiment(profile="zorro", budget=2_000_000, seed=2024, count=97):
    """Run the client analysis; returns the summary dict."""
    suite = termination_benchmark_suite(seed=seed, count=count)
    automizer = Automizer(profile=profile, budget=budget, use_staub=True)
    verified = 0
    tractability = 0
    verified_speedups = []
    overall_speedups = []
    verdicts = {}
    total_queries = 0
    unsat_queries = 0
    for program, _expected in suite:
        result = automizer.analyze(program)
        verdicts[result.verdict] = verdicts.get(result.verdict, 0) + 1
        total_queries += len(result.queries)
        unsat_queries += sum(
            1 for query in result.queries if query.baseline_status == "unsat"
        )
        # Per-benchmark accounting (the unit of the paper's Fig. 8): a
        # benchmark is "verified" when a meaningful STAUB win occurred on
        # at least one of its queries, and the speedup compares the whole
        # per-program constraint stream's cost.
        ratio = max(result.baseline_work, 1) / max(result.final_work, 1)
        overall_speedups.append(ratio)
        had_win = any(
            query.verified and query.final_work < query.baseline_work
            for query in result.queries
        )
        if had_win:
            verified += 1
            verified_speedups.append(ratio)
            if any(
                query.verified and query.baseline_status == "unknown"
                for query in result.queries
            ):
                tractability += 1
    return {
        "benchmarks": len(suite),
        "queries": total_queries,
        "unsat_queries": unsat_queries,
        "verified_cases": verified,
        "tractability_improvements": tractability,
        "verified_speedup": geometric_mean(verified_speedups) if verified_speedups else None,
        "overall_speedup": geometric_mean(overall_speedups) if overall_speedups else None,
        "verdicts": verdicts,
    }


def render(profile="zorro", budget=2_000_000, seed=2024, count=97):
    summary = run_client_experiment(profile=profile, budget=budget, seed=seed, count=count)
    verified_speedup = (
        "-" if summary["verified_speedup"] is None else f"{summary['verified_speedup']:.2f}x"
    )
    overall = (
        "-" if summary["overall_speedup"] is None else f"{summary['overall_speedup']:.3f}x"
    )
    lines = [
        "Figure 8: STAUB applied to the termination-proving client analysis",
        "",
        f"  Benchmarks                       {summary['benchmarks']}",
        f"  Solver queries issued            {summary['queries']} "
        f"({summary['unsat_queries']} unsat)",
        f"  Verified cases                   {summary['verified_cases']}",
        f"  Tractability improvements        {summary['tractability_improvements']}",
        f"  Mean speedup for verified cases  {verified_speedup}",
        f"  Overall mean speedup             {overall}",
        f"  Verdicts                         {summary['verdicts']}",
    ]
    return "\n".join(lines)
