"""Table 1: theoretical properties of the unbounded logics.

Rendered from the registry in :mod:`repro.core.theory_properties`, plus a
numeric demonstration that the one theoretical bound that does exist
(linear integer arithmetic) is practically useless -- the paper's reason
for needing inference rather than theory.
"""

from repro.core.theory_properties import TABLE1, bits_needed, papadimitriou_bound


def table1_rows():
    """The table as a list of dicts."""
    return [
        {
            "logic": entry.name,
            "decidable": "Yes" if entry.decidable else "No",
            "theoretically_bounded": "Yes" if entry.theoretically_bounded else "No",
            "practically_bounded": "Yes" if entry.practically_bounded else "No",
            "note": entry.note,
        }
        for entry in TABLE1
    ]


def lia_bound_demonstration():
    """Bit widths the Papadimitriou bound would demand on small instances."""
    examples = []
    for num_vars, num_inequalities, largest in ((3, 5, 15), (5, 20, 100), (10, 100, 1000)):
        bound = papadimitriou_bound(num_vars, num_inequalities, largest)
        examples.append(
            {
                "n": num_vars,
                "m": num_inequalities,
                "a": largest,
                "bits_needed": bits_needed(bound),
            }
        )
    return examples


def render():
    """Human-readable Table 1."""
    lines = ["Table 1: theoretical results for unbounded SMT theories", ""]
    header = f"{'Logic':34s} {'Decidable?':11s} {'Th.Bounded?':12s} {'Pr.Bounded?':12s}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in table1_rows():
        lines.append(
            f"{row['logic']:34s} {row['decidable']:11s} "
            f"{row['theoretically_bounded']:12s} {row['practically_bounded']:12s}"
        )
    lines.append("")
    lines.append("Papadimitriou bound 2n(ma)^(2m+1) in bits (why 'practically' = No):")
    for example in lia_bound_demonstration():
        lines.append(
            f"  n={example['n']:3d} m={example['m']:4d} a={example['a']:5d} "
            f"-> needs a {example['bits_needed']:,}-bit bitvector"
        )
    return "\n".join(lines)
