"""Experiment harness: regenerates every table and figure of the paper.

The central object is :class:`~repro.evaluation.runner.ExperimentCache`,
which runs (and memoizes) baseline and arbitrage solves over the
generated suites; the per-experiment modules render the paper's tables
and figures from it:

- :mod:`repro.evaluation.table1` -- theory properties summary.
- :mod:`repro.evaluation.fig2` -- fixed-width sweep (performance and
  semantics preservation).
- :mod:`repro.evaluation.table2` -- tractability improvements.
- :mod:`repro.evaluation.table3` -- geomean speedups by logic / solver /
  initial-time interval / width strategy, with the SLOT column.
- :mod:`repro.evaluation.fig7` -- before/after scatter series.
- :mod:`repro.evaluation.fig8` -- termination-prover client (RQ3).
- :mod:`repro.evaluation.ablation` -- width-inference statistics.
- :mod:`repro.evaluation.bounded_gap` -- the intro's bounded-vs-unbounded
  solving-time gap on operation-equivalent constraint pairs.

Run everything with ``python -m repro.evaluation.run_all``.
"""

from repro.evaluation.runner import (
    TIMEOUT_WORK,
    VIRTUAL_UNITS_PER_SECOND,
    ExperimentCache,
    to_virtual_seconds,
)
from repro.evaluation.stats import geometric_mean, speedup

__all__ = [
    "TIMEOUT_WORK",
    "VIRTUAL_UNITS_PER_SECOND",
    "ExperimentCache",
    "to_virtual_seconds",
    "geometric_mean",
    "speedup",
]
