"""Figure 7: before/after solving-time scatter per solver x logic.

Each point is one constraint: x = original solving time, y = final time
under portfolio semantics (both in virtual seconds, timeouts clamped to
300). Points below the diagonal are speedups; points on the x = 300 edge
with y < 300 are tractability improvements; portfolio semantics guarantee
no point lies above the diagonal.
"""

from repro.evaluation.runner import (
    ExperimentCache,
    LOGICS,
    SOLVER_PROFILES,
    to_virtual_seconds,
)


def scatter_series(cache=None, logics=LOGICS, strategy="staub"):
    """Returns {(logic, profile): [(x_seconds, y_seconds, name), ...]}."""
    cache = cache or ExperimentCache()
    series = {}
    for logic in logics:
        for profile in SOLVER_PROFILES:
            points = []
            for row in cache.rows(logic, profile, strategy):
                points.append(
                    (
                        to_virtual_seconds(row["t_pre"]),
                        to_virtual_seconds(row["final"]),
                        row["name"],
                    )
                )
            series[(logic, profile)] = points
    return series


def quadrant_summary(points, timeout_seconds=300.0, epsilon=1e-9):
    """Count points by region: improved / unchanged / tractability."""
    improved = sum(1 for x, y, _ in points if y < x - epsilon and x < timeout_seconds)
    tractability = sum(
        1 for x, y, _ in points if x >= timeout_seconds and y < timeout_seconds
    )
    above = sum(1 for x, y, _ in points if y > x + epsilon)
    unchanged = len(points) - improved - tractability - above
    return {
        "improved": improved,
        "tractability": tractability,
        "unchanged": unchanged,
        "above_diagonal": above,  # must be zero under portfolio semantics
    }


def ascii_scatter(points, size=24, limit=300.0):
    """A terminal-friendly log-log scatter of (initial, final) times."""
    import math

    grid = [[" "] * (size + 1) for _ in range(size + 1)]

    def cell(value):
        value = max(value, limit / 10**4)
        position = (math.log10(value) - math.log10(limit / 10**4)) / 4
        return min(size, max(0, round(position * size)))

    for step in range(size + 1):
        grid[size - step][step] = "."  # the diagonal
    for x, y, _ in points:
        grid[size - cell(y)][cell(x)] = "o"
    lines = ["final ^"]
    for row in grid:
        lines.append("      |" + "".join(row))
    lines.append("      +" + "-" * (size + 1) + "> initial")
    return "\n".join(lines)


def render(cache=None):
    """Human-readable Figure 7 (series summaries + ASCII scatters)."""
    series = scatter_series(cache)
    lines = ["Figure 7: final vs initial solving time (virtual seconds)", ""]
    for (logic, profile), points in series.items():
        summary = quadrant_summary(points)
        lines.append(
            f"{logic} / {profile}: {len(points)} points | "
            f"improved={summary['improved']} "
            f"tractability={summary['tractability']} "
            f"unchanged={summary['unchanged']} "
            f"above-diagonal={summary['above_diagonal']}"
        )
        lines.append(ascii_scatter(points))
        for x, y, name in points:
            if y < x - 1e-9:  # list only the interesting (improved) points
                lines.append(f"    {name:22s} x={x:8.2f}  y={y:8.2f}")
        lines.append("")
    return "\n".join(lines)
