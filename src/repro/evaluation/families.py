"""Per-family breakdown of arbitrage effectiveness.

Not a table from the paper, but the analysis a reader wants next: which
benchmark families drive the wins, and why. Used by EXPERIMENTS.md and by
the test suite to pin the mechanism behind each headline number (e.g.
"the corvus NIA tractability improvements come from large-witness
families, not from the unsat residue").
"""

from repro.evaluation.runner import ExperimentCache
from repro.evaluation.stats import geometric_mean, speedup


def family_breakdown(cache, logic, profile, strategy="staub"):
    """Returns {family: {count, verified, tractability, overall_speedup}}."""
    by_family = {}
    for benchmark in cache.suite(logic):
        row = cache.row(logic, benchmark.name, profile, strategy)
        bucket = by_family.setdefault(
            benchmark.family,
            {"count": 0, "verified": 0, "tractability": 0, "speedups": []},
        )
        bucket["count"] += 1
        bucket["verified"] += row["verified"]
        bucket["tractability"] += row["tractability"]
        bucket["speedups"].append(speedup(row["t_pre"], row["final"]))
    result = {}
    for family, bucket in by_family.items():
        result[family] = {
            "count": bucket["count"],
            "verified": bucket["verified"],
            "tractability": bucket["tractability"],
            "overall_speedup": geometric_mean(bucket["speedups"]),
        }
    return result


def render(cache=None, logics=("QF_NIA", "QF_LIA", "QF_NRA", "QF_LRA")):
    cache = cache or ExperimentCache()
    lines = ["Per-family breakdown (STAUB strategy)", ""]
    for logic in logics:
        for profile in ("zorro", "corvus"):
            lines.append(f"{logic} / {profile}")
            breakdown = family_breakdown(cache, logic, profile)
            for family, data in sorted(breakdown.items()):
                lines.append(
                    f"  {family:16s} n={data['count']:3d} "
                    f"verified={data['verified']:3d} "
                    f"tract={data['tractability']:3d} "
                    f"overall={data['overall_speedup']:7.2f}x"
                )
        lines.append("")
    return "\n".join(lines)
