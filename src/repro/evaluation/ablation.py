"""Section 5.2's width-inference ablation.

Reports the distribution of widths STAUB's abstract interpretation picks
(the paper reports an average of 13.1 bits) and compares verified-case
counts and tractability improvements against the fixed 8- and 16-bit
strategies -- the argument that inference beats both a smaller and a
larger constant choice.
"""

from repro.core.refinement import RefinementStaub
from repro.evaluation.runner import ExperimentCache, LOGICS, SOLVER_PROFILES
from repro.evaluation.stats import geometric_mean

#: Loop parameters for the refinement ablation. The deliberately narrow
#: starting width forces multi-round runs on most of the NIA suite, which
#: is the regime the incremental engine exists for.
REFINEMENT_CONFIG = dict(
    initial_width=4, growth_factor=2, max_width=16, max_rounds=6
)
REFINEMENT_LOGIC = "QF_NIA"


def width_statistics(cache=None, logics=LOGICS):
    """Distribution of inferred widths across all suites."""
    cache = cache or ExperimentCache()
    widths = []
    for logic in logics:
        for benchmark in cache.suite(logic):
            arb = cache.arbitrage(logic, benchmark.name, "staub")
            if arb.width is not None:
                widths.append(arb.width)
    widths.sort()
    return {
        "count": len(widths),
        "mean": sum(widths) / len(widths) if widths else 0.0,
        "min": widths[0] if widths else None,
        "max": widths[-1] if widths else None,
        "median": widths[len(widths) // 2] if widths else None,
    }


def strategy_comparison(cache=None, logics=LOGICS):
    """Verified cases and tractability improvements per strategy."""
    cache = cache or ExperimentCache()
    comparison = {}
    for strategy in ("fixed8", "fixed16", "staub"):
        verified = 0
        tractability = 0
        speedups = []
        for logic in logics:
            for profile in SOLVER_PROFILES:
                for row in cache.rows(logic, profile, strategy):
                    if row["verified"]:
                        verified += 1
                        speedups.append(max(row["t_pre"], 1) / max(row["final"], 1))
                    if row["tractability"]:
                        tractability += 1
        comparison[strategy] = {
            "verified": verified,
            "tractability": tractability,
            "verified_speedup": geometric_mean(speedups) if speedups else None,
        }
    return comparison


def refinement_comparison(cache=None, logic=REFINEMENT_LOGIC):
    """Incremental vs scratch width refinement over one suite.

    Both engines run the identical widening schedule
    (:data:`REFINEMENT_CONFIG`); core-guided widening inside the
    incremental engine is deterministic (the CDCL core and its
    final-conflict extraction are), so the row set is reproducible
    byte-for-byte across machines. Per-round results land in
    ``cache.solve_cache`` when one is attached, so a warm rerun replays
    without touching a solver.
    """
    cache = cache or ExperimentCache()
    rows = []
    for benchmark in cache.suite(logic):
        row = {"name": benchmark.name}
        for mode, incremental in (("scratch", False), ("incremental", True)):
            loop = RefinementStaub(
                incremental=incremental,
                cache=cache.solve_cache,
                **REFINEMENT_CONFIG,
            )
            report = loop.run(benchmark.script, budget=cache.timeout)
            row[mode] = {
                "case": report.case,
                "rounds": [[width, case] for width, case in report.rounds],
                "total_work": report.total_work,
                "cache_hits": report.cache_hits,
                "clauses_reused": report.clauses_reused,
                "core_widened": report.core_widened,
                "subrounds": report.subrounds,
            }
        rows.append(row)
    return rows


def _verdict(row, mode):
    """The mode's verdict string: the final case plus every round's
    (width, case) pair. Two modes agree exactly when these match."""
    data = row[mode]
    rounds = ",".join(f"{width}:{case}" for width, case in data["rounds"])
    return f"{data['case']} rounds={rounds}"


def render_refinement(cache=None, logic=REFINEMENT_LOGIC):
    """Render the refinement ablation.

    ``verdict`` lines carry only verdict-relevant fields (they must be
    stable across cache warmth and chaos injection -- CI diffs exactly
    these); ``work`` lines carry the cost comparison.
    """
    rows = refinement_comparison(cache, logic)
    config = " ".join(f"{k}={v}" for k, v in sorted(REFINEMENT_CONFIG.items()))
    lines = [
        f"Refinement ablation: incremental vs scratch ({logic})",
        f"config: {config}",
        "",
    ]
    multi = reduced = reuse_hits = 0
    for row in rows:
        for mode in ("scratch", "incremental"):
            lines.append(f"verdict {row['name']} {mode} {_verdict(row, mode)}")
        scratch, incremental = row["scratch"], row["incremental"]
        lines.append(
            f"work {row['name']} scratch={scratch['total_work']} "
            f"incremental={incremental['total_work']} "
            f"reused={incremental['clauses_reused']} "
            f"widened={incremental['core_widened']} "
            f"subrounds={incremental['subrounds']}"
        )
        if len(scratch["rounds"]) >= 2:
            multi += 1
            if incremental["total_work"] < scratch["total_work"]:
                reduced += 1
            if incremental["clauses_reused"]:
                reuse_hits += 1
    lines.append("")
    lines.append(
        f"summary instances={len(rows)} multi_round={multi} "
        f"reduced_on_multi_round={reduced} reuse_on_multi_round={reuse_hits}"
    )
    return "\n".join(lines)


def render(cache=None):
    cache = cache or ExperimentCache()
    stats = width_statistics(cache)
    comparison = strategy_comparison(cache)
    lines = [
        "Width inference ablation (Section 5.2)",
        "",
        f"inferred widths: count={stats['count']} mean={stats['mean']:.1f} "
        f"median={stats['median']} min={stats['min']} max={stats['max']}",
        "",
        f"{'strategy':9s} {'verified':>9s} {'tractability':>13s} {'verified speedup':>17s}",
    ]
    for strategy, data in comparison.items():
        verified_speedup = (
            "-" if data["verified_speedup"] is None else f"{data['verified_speedup']:.3f}"
        )
        lines.append(
            f"{strategy:9s} {data['verified']:9d} {data['tractability']:13d} "
            f"{verified_speedup:>17s}"
        )
    return "\n".join(lines)
