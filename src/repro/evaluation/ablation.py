"""Section 5.2's width-inference ablation.

Reports the distribution of widths STAUB's abstract interpretation picks
(the paper reports an average of 13.1 bits) and compares verified-case
counts and tractability improvements against the fixed 8- and 16-bit
strategies -- the argument that inference beats both a smaller and a
larger constant choice.
"""

from repro.evaluation.runner import ExperimentCache, LOGICS, SOLVER_PROFILES
from repro.evaluation.stats import geometric_mean


def width_statistics(cache=None, logics=LOGICS):
    """Distribution of inferred widths across all suites."""
    cache = cache or ExperimentCache()
    widths = []
    for logic in logics:
        for benchmark in cache.suite(logic):
            arb = cache.arbitrage(logic, benchmark.name, "staub")
            if arb.width is not None:
                widths.append(arb.width)
    widths.sort()
    return {
        "count": len(widths),
        "mean": sum(widths) / len(widths) if widths else 0.0,
        "min": widths[0] if widths else None,
        "max": widths[-1] if widths else None,
        "median": widths[len(widths) // 2] if widths else None,
    }


def strategy_comparison(cache=None, logics=LOGICS):
    """Verified cases and tractability improvements per strategy."""
    cache = cache or ExperimentCache()
    comparison = {}
    for strategy in ("fixed8", "fixed16", "staub"):
        verified = 0
        tractability = 0
        speedups = []
        for logic in logics:
            for profile in SOLVER_PROFILES:
                for row in cache.rows(logic, profile, strategy):
                    if row["verified"]:
                        verified += 1
                        speedups.append(max(row["t_pre"], 1) / max(row["final"], 1))
                    if row["tractability"]:
                        tractability += 1
        comparison[strategy] = {
            "verified": verified,
            "tractability": tractability,
            "verified_speedup": geometric_mean(speedups) if speedups else None,
        }
    return comparison


def render(cache=None):
    cache = cache or ExperimentCache()
    stats = width_statistics(cache)
    comparison = strategy_comparison(cache)
    lines = [
        "Width inference ablation (Section 5.2)",
        "",
        f"inferred widths: count={stats['count']} mean={stats['mean']:.1f} "
        f"median={stats['median']} min={stats['min']} max={stats['max']}",
        "",
        f"{'strategy':9s} {'verified':>9s} {'tractability':>13s} {'verified speedup':>17s}",
    ]
    for strategy, data in comparison.items():
        verified_speedup = (
            "-" if data["verified_speedup"] is None else f"{data['verified_speedup']:.3f}"
        )
        lines.append(
            f"{strategy:9s} {data['verified']:9d} {data['tractability']:13d} "
            f"{verified_speedup:>17s}"
        )
    return "\n".join(lines)
