"""CLI entry point: regenerate every table and figure.

Usage::

    python -m repro.evaluation.run_all                    # everything
    python -m repro.evaluation.run_all --experiment table3
    python -m repro.evaluation.run_all --scale 0.25       # quick pass
"""

import argparse
import sys
import time

from repro.evaluation import (
    ablation,
    bounded_gap,
    families,
    fig2,
    fig7,
    fig8,
    motivating,
    table1,
    table2,
    table3,
)
from repro.evaluation.runner import ExperimentCache

EXPERIMENTS = (
    "table1",
    "motivating",
    "fig2",
    "table2",
    "table3",
    "fig7",
    "ablation",
    "bounded_gap",
    "families",
    "fig8",
)


def run(experiment, cache, args):
    if experiment == "table1":
        return table1.render()
    if experiment == "fig2":
        return fig2.render(cache)
    if experiment == "table2":
        return table2.render(cache)
    if experiment == "table3":
        return table3.render(cache)
    if experiment == "fig7":
        return fig7.render(cache)
    if experiment == "ablation":
        return ablation.render(cache)
    if experiment == "bounded_gap":
        return bounded_gap.render(cache)
    if experiment == "families":
        return families.render(cache)
    if experiment == "motivating":
        return motivating.render()
    if experiment == "fig8":
        return fig8.render(seed=args.seed, count=args.client_programs)
    raise ValueError(f"unknown experiment {experiment!r}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="all", help="one of: all, " + ", ".join(EXPERIMENTS))
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--scale", type=float, default=1.0, help="suite size multiplier")
    parser.add_argument(
        "--client-programs", type=int, default=97, help="program count for fig8"
    )
    parser.add_argument("--json", default=None, help="also dump raw rows as JSON")
    parser.add_argument("--csv", default=None, help="also dump raw rows as CSV")
    args = parser.parse_args(argv)

    cache = ExperimentCache(seed=args.seed, scale=args.scale)
    wanted = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for experiment in wanted:
        start = time.time()
        print("=" * 78)
        print(run(experiment, cache, args))
        print(f"[{experiment} took {time.time() - start:.1f}s wall]")
        print()
    if args.json or args.csv:
        from repro.evaluation.export import write_results

        written = write_results(cache, json_path=args.json, csv_path=args.csv)
        for path in written:
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
