"""CLI entry point: regenerate every table and figure.

Usage::

    python -m repro.evaluation.run_all                    # everything
    python -m repro.evaluation.run_all --experiment table3
    python -m repro.evaluation.run_all --scale 0.25       # quick pass
"""

import argparse
import json
import sys

from repro import telemetry
from repro.evaluation import (
    ablation,
    bounded_gap,
    families,
    fig2,
    fig7,
    fig8,
    motivating,
    table1,
    table2,
    table3,
)
from repro.evaluation.runner import ExperimentCache

EXPERIMENTS = (
    "table1",
    "motivating",
    "fig2",
    "table2",
    "table3",
    "fig7",
    "ablation",
    "bounded_gap",
    "families",
    "fig8",
)


def run(experiment, cache, args):
    if experiment == "table1":
        return table1.render()
    if experiment == "fig2":
        return fig2.render(cache)
    if experiment == "table2":
        return table2.render(cache)
    if experiment == "table3":
        return table3.render(cache)
    if experiment == "fig7":
        return fig7.render(cache)
    if experiment == "ablation":
        return ablation.render(cache)
    if experiment == "bounded_gap":
        return bounded_gap.render(cache)
    if experiment == "families":
        return families.render(cache)
    if experiment == "motivating":
        return motivating.render()
    if experiment == "fig8":
        return fig8.render(seed=args.seed, count=args.client_programs)
    raise ValueError(f"unknown experiment {experiment!r}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="all", help="one of: all, " + ", ".join(EXPERIMENTS))
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--scale", type=float, default=1.0, help="suite size multiplier")
    parser.add_argument(
        "--client-programs", type=int, default=97, help="program count for fig8"
    )
    parser.add_argument("--json", default=None, help="also dump raw rows as JSON")
    parser.add_argument("--csv", default=None, help="also dump raw rows as CSV")
    parser.add_argument(
        "--telemetry",
        default="results_telemetry.json",
        help="path for the aggregated telemetry artifact ('' to disable)",
    )
    parser.add_argument(
        "--trace", default=None, help="also write a JSONL span trace"
    )
    args = parser.parse_args(argv)

    # The harness runs with telemetry on: per-experiment spans time the
    # runs (wall-clock on stderr for humans, virtual work in the
    # artifact), and the engines' counters land in the default registry.
    telemetry.enable(trace_path=args.trace, wall_clock=True)
    cache = ExperimentCache(seed=args.seed, scale=args.scale)
    wanted = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    experiment_spans = []
    try:
        for experiment in wanted:
            with telemetry.span(f"experiment:{experiment}") as span:
                output = run(experiment, cache, args)
            print("=" * 78)
            print(output)
            # Progress goes to stderr so stdout stays machine-parseable.
            print(
                f"[{experiment} took {span.wall_seconds:.1f}s wall]",
                file=sys.stderr,
            )
            print()
            experiment_spans.append({"experiment": experiment, "work": span.work})
        if args.json or args.csv:
            from repro.evaluation.export import write_results

            written = write_results(cache, json_path=args.json, csv_path=args.csv)
            for path in written:
                print(f"wrote {path}")
        if args.telemetry:
            artifact = {
                "experiments": experiment_spans,
                "cells": cache.telemetry_summary(),
                "metrics": telemetry.snapshot(),
            }
            with open(args.telemetry, "w", encoding="utf-8") as handle:
                json.dump(artifact, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.telemetry}")
    finally:
        telemetry.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
