"""CLI entry point: regenerate every table and figure.

Usage::

    python -m repro.evaluation.run_all                    # everything
    python -m repro.evaluation.run_all --experiment table3
    python -m repro.evaluation.run_all --scale 0.25       # quick pass
    python -m repro.evaluation.run_all --jobs 4           # parallel solves
    python -m repro.evaluation.run_all --cache runs.json  # persistent memo

``--jobs N`` precomputes the standard (logic x profile) baseline cells
and (logic x strategy) arbitrage cells in N worker processes before the
(serial, deterministic) rendering pass; results are identical in status,
but worker scheduling is wall-clock-dependent. ``--cache PATH`` persists
every solve, so a second invocation performs zero fresh solves (watch
``eval.cache_hit`` vs ``eval.baseline_runs`` in the telemetry artifact).
"""

import argparse
import json
import os
import sys

from repro import telemetry
from repro.guard import chaos
from repro.guard.chaos import ChaosCrash
from repro.cache import SolveCache
from repro.cache.keys import cache_key
from repro.cache.store import entry_from_result
from repro.evaluation import (
    ablation,
    bounded_gap,
    families,
    fig2,
    fig7,
    fig8,
    motivating,
    table1,
    table2,
    table3,
)
from repro.evaluation.runner import (
    LOGICS,
    SOLVER_PROFILES,
    STRATEGIES,
    TIMEOUT_WORK,
    ArbitrageRecord,
    BaselineRecord,
    ExperimentCache,
    make_staub,
)
from repro.solver import solve_script
from repro.telemetry.metrics import MetricsRegistry

EXPERIMENTS = (
    "table1",
    "motivating",
    "fig2",
    "table2",
    "table3",
    "fig7",
    "ablation",
    "refinement",
    "bounded_gap",
    "families",
    "fig8",
)


def run(experiment, cache, args):
    if experiment == "table1":
        return table1.render()
    if experiment == "fig2":
        return fig2.render(cache)
    if experiment == "table2":
        return table2.render(cache)
    if experiment == "table3":
        return table3.render(cache)
    if experiment == "fig7":
        return fig7.render(cache)
    if experiment == "ablation":
        return ablation.render(cache)
    if experiment == "refinement":
        return ablation.render_refinement(cache)
    if experiment == "bounded_gap":
        return bounded_gap.render(cache)
    if experiment == "families":
        return families.render(cache)
    if experiment == "motivating":
        return motivating.render()
    if experiment == "fig8":
        return fig8.render(seed=args.seed, count=args.client_programs)
    raise ValueError(f"unknown experiment {experiment!r}")


# -- parallel cell precompute (--jobs N) ------------------------------------


def _solve_cell(payload):
    """Worker: solve one (kind, logic, config) cell from scratch.

    Runs in a separate process; rebuilds the (deterministic) suite from
    the seed and returns plain JSON-safe tuples so nothing exotic needs
    pickling. Persistent-cache entries ride along so the parent can warm
    its store without re-solving.
    """
    kind, logic, config, slot, seed, scale, timeout = payload
    plan = chaos.active()
    chaos_baseline = dict(plan.injected) if plan is not None else {}
    # A crash here propagates through the pool; the parent drops the cell
    # (it is recomputed serially on demand) and counts the fault.
    chaos.inject("portfolio.worker_spawn", salt=f"{kind}/{logic}/{config}")
    cache = ExperimentCache(seed=seed, scale=scale, timeout=timeout)
    records = {}
    entries = {}
    if kind == "baseline":
        for benchmark in cache.suite(logic):
            result = solve_script(benchmark.script, budget=timeout, profile=config)
            timed_out = result.is_unknown
            work = timeout if timed_out else min(result.work, timeout)
            records[benchmark.name] = (result.status, work, timed_out)
            key = cache_key(benchmark.script, profile=config, budget=timeout)
            try:
                entries[key] = entry_from_result(result)
            except TypeError:
                pass
    else:
        for benchmark in cache.suite(logic):
            staub = make_staub(config, slot=slot)
            report = staub.run(benchmark.script, budget=timeout)
            record = ArbitrageRecord(report, timeout=timeout)
            records[benchmark.name] = record.to_entry()
            key = cache_key(
                benchmark.script,
                budget=timeout,
                kind="arbitrage",
                extra={"strategy": config, "slot": slot},
            )
            entries[key] = record.to_entry()
    deltas = plan.injected_deltas(chaos_baseline) if plan is not None else {}
    return (kind, logic, config, slot, records, entries, deltas)


def _cell_is_warm(cache, store, kind, logic, config, slot):
    """True when the persistent store already holds every key of a cell."""
    if store is None:
        return False
    for benchmark in cache.suite(logic):
        if kind == "baseline":
            key = cache_key(benchmark.script, profile=config, budget=cache.timeout)
        else:
            key = cache_key(
                benchmark.script,
                budget=cache.timeout,
                kind="arbitrage",
                extra={"strategy": config, "slot": slot},
            )
        if key not in store:
            return False
    return True


def _precompute_parallel(cache, jobs, store=None):
    """Fill the experiment cache's standard grid using worker processes.

    Cells fully covered by the persistent store are skipped here; the
    runner serves them lazily from the cache (counted as
    ``eval.cache_hit``, never as fresh runs).
    """
    import multiprocessing

    payloads = []
    for logic in LOGICS:
        for profile in SOLVER_PROFILES:
            if not _cell_is_warm(cache, store, "baseline", logic, profile, False):
                payloads.append(
                    ("baseline", logic, profile, False, cache.seed, cache.scale, cache.timeout)
                )
        for strategy in STRATEGIES:
            if not _cell_is_warm(cache, store, "arbitrage", logic, strategy, False):
                payloads.append(
                    ("arbitrage", logic, strategy, False, cache.seed, cache.scale, cache.timeout)
                )
    if not payloads:
        return
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    results = []
    with context.Pool(processes=jobs) as pool:
        handles = [
            (payload, pool.apply_async(_solve_cell, (payload,)))
            for payload in payloads
        ]
        for payload, handle in handles:
            try:
                results.append(handle.get())
            except ChaosCrash:
                # The worker died mid-cell: drop it (the serial rendering
                # pass recomputes it on demand, so verdicts are unchanged)
                # and make the fault visible in the artifact.
                kind, logic, config = payload[0], payload[1], payload[2]
                telemetry.counter_add(
                    "eval.cell_crashed", kind=kind, logic=logic, config=config
                )
                telemetry.counter_add(
                    "chaos.injected", point="portfolio.worker_spawn", kind="crash"
                )
    for kind, logic, config, slot, records, entries, chaos_deltas in results:
        if kind == "baseline":
            for name in sorted(records):
                status, work, timed_out = records[name]
                cache._baselines[(logic, name, config)] = BaselineRecord(
                    status, work, timed_out
                )
                telemetry.counter_add("eval.baseline_runs", logic=logic, profile=config)
                telemetry.counter_add(
                    "eval.baseline_work", work, logic=logic, profile=config
                )
                if timed_out:
                    telemetry.counter_add(
                        "eval.baseline_timeouts", logic=logic, profile=config
                    )
        else:
            for name in sorted(records):
                record = ArbitrageRecord.from_entry(records[name])
                cache._arbitrage[(logic, name, config, slot)] = record
                labels = dict(logic=logic, strategy=config)
                telemetry.counter_add("eval.arbitrage_runs", **labels)
                telemetry.counter_add("eval.arbitrage_work", record.total_work, **labels)
                telemetry.counter_add("eval.arbitrage_case", case=record.case, **labels)
                if record.usable:
                    telemetry.counter_add("eval.arbitrage_verified", **labels)
        for delta_key, count in chaos_deltas.items():
            point, _, fault_kind = delta_key.partition("|")
            telemetry.counter_add("chaos.injected", count, point=point, kind=fault_kind)
        if store is not None:
            for key in sorted(entries):
                if key not in store:
                    store.put(key, entries[key], kind=kind)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="all", help="one of: all, " + ", ".join(EXPERIMENTS))
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--scale", type=float, default=1.0, help="suite size multiplier")
    parser.add_argument(
        "--timeout",
        type=int,
        default=TIMEOUT_WORK,
        help="unified-work budget per solve (the virtual 300 s)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for precomputing the standard cells "
        "(1 = fully deterministic serial run)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="FILE.json",
        help="persistent solve cache; a warm cache skips every redundant solve",
    )
    parser.add_argument(
        "--client-programs", type=int, default=97, help="program count for fig8"
    )
    parser.add_argument("--json", default=None, help="also dump raw rows as JSON")
    parser.add_argument("--csv", default=None, help="also dump raw rows as CSV")
    parser.add_argument(
        "--telemetry",
        default="results_telemetry.json",
        help="path for the aggregated telemetry artifact ('' to disable)",
    )
    parser.add_argument(
        "--trace", default=None, help="also write a JSONL span trace"
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SEED:RATE",
        help="deterministic fault injection (e.g. 1234:0.1); verdicts are "
        "unchanged, only timings / lane winners / cache warmth may differ",
    )
    args = parser.parse_args(argv)

    if args.chaos:
        try:
            chaos.install(chaos.parse_spec(args.chaos))
        except ValueError as error:
            parser.error(str(error))
        # Spawned workers pick the plan up from the environment.
        os.environ[chaos.ENV_VAR] = args.chaos

    # The harness runs with telemetry on: per-experiment spans time the
    # runs (wall-clock on stderr for humans, virtual work in the
    # artifact). A fresh registry per invocation keeps the artifact
    # byte-identical across repeated in-process runs.
    telemetry.enable(trace_path=args.trace, wall_clock=True, registry=MetricsRegistry())
    store = SolveCache(path=args.cache) if args.cache else None
    cache = ExperimentCache(
        seed=args.seed, scale=args.scale, timeout=args.timeout, solve_cache=store
    )
    wanted = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    experiment_spans = []
    try:
        if args.jobs > 1:
            with telemetry.span("precompute", jobs=args.jobs):
                _precompute_parallel(cache, args.jobs, store=store)
            print(f"[precomputed standard cells with {args.jobs} jobs]", file=sys.stderr)
        for experiment in wanted:
            with telemetry.span(f"experiment:{experiment}") as span:
                output = run(experiment, cache, args)
            print("=" * 78)
            print(output)
            # Progress goes to stderr so stdout stays machine-parseable.
            print(
                f"[{experiment} took {span.wall_seconds:.1f}s wall]",
                file=sys.stderr,
            )
            print()
            experiment_spans.append({"experiment": experiment, "work": span.work})
        if args.json or args.csv:
            from repro.evaluation.export import write_results

            written = write_results(cache, json_path=args.json, csv_path=args.csv)
            for path in written:
                print(f"wrote {path}")
        if args.telemetry:
            artifact = {
                "experiments": experiment_spans,
                "cells": cache.telemetry_summary(),
                "metrics": telemetry.snapshot(),
            }
            with open(args.telemetry, "w", encoding="utf-8") as handle:
                json.dump(artifact, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.telemetry}")
        if store is not None:
            store.save()
            stats = store.stats()
            print(
                f"cache: {stats['entries']} entries, "
                f"{stats['hits']} hits / {stats['misses']} misses this run "
                f"-> {args.cache}",
                file=sys.stderr,
            )
    finally:
        telemetry.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
