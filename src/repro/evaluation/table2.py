"""Table 2: tractability improvements.

A tractability improvement is a constraint the baseline could not solve
within the timeout that theory arbitrage renders solvable (a verified
model). Counted per logic x solver x width strategy, plus the paper's
intersection column: constraints *neither* solver could solve originally
that *at least one* solves after arbitrage.
"""

from repro.evaluation.runner import ExperimentCache, LOGICS, SOLVER_PROFILES, STRATEGIES


def tractability_counts(cache=None, logics=LOGICS):
    """Returns {logic: {profile: {strategy: count}, 'intersection': {...}}}."""
    cache = cache or ExperimentCache()
    table = {}
    for logic in logics:
        per_logic = {profile: {} for profile in SOLVER_PROFILES}
        intersection = {}
        for strategy in STRATEGIES:
            for profile in SOLVER_PROFILES:
                count = sum(
                    1
                    for row in cache.rows(logic, profile, strategy)
                    if row["tractability"]
                )
                per_logic[profile][strategy] = count
            both_timeout_solved = 0
            for benchmark in cache.suite(logic):
                bases = [
                    cache.baseline(logic, benchmark.name, profile)
                    for profile in SOLVER_PROFILES
                ]
                if not all(base.timed_out for base in bases):
                    continue
                arb = cache.arbitrage(logic, benchmark.name, strategy)
                if arb.usable:
                    both_timeout_solved += 1
            intersection[strategy] = both_timeout_solved
        per_logic["intersection"] = intersection
        table[logic] = per_logic
    return table


def render(cache=None):
    """Human-readable Table 2."""
    table = tractability_counts(cache)
    lines = ["Table 2: tractability improvements (timeout -> verified answer)", ""]
    header = (
        f"{'logic':8s} "
        + "".join(f"{p + ':' + s:>16s}" for p in SOLVER_PROFILES for s in STRATEGIES)
        + "".join(f"{'both:' + s:>16s}" for s in STRATEGIES)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for logic, per_logic in table.items():
        cells = []
        for profile in SOLVER_PROFILES:
            for strategy in STRATEGIES:
                cells.append(f"{per_logic[profile][strategy]:16d}")
        for strategy in STRATEGIES:
            cells.append(f"{per_logic['intersection'][strategy]:16d}")
        lines.append(f"{logic:8s} " + "".join(cells))
    return "\n".join(lines)
