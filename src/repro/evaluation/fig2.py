"""Figure 2: the naive fixed-width transformation sweep.

For each logic and each fixed width, transform every suite constraint at
that width and solve the bounded result, recording:

- (a) geometric-mean bounded solving time, normalized to the 16-bit
  column per logic (Fig. 2a);
- (b) the percentage of constraints whose satisfiability result differs
  from the unbounded original (Fig. 2b) -- either the bounded constraint
  went unsat on a satisfiable original (insufficient width), or its model
  failed verification (semantic difference).

Ground truth for (b) is the generator's expected status where known,
falling back to the zorro baseline answer.
"""

from repro.evaluation.runner import ExperimentCache, LOGICS
from repro.evaluation.stats import geometric_mean

#: The width sweep; the paper plots 4..64, but beyond 16 bits every
#: nonlinear bounded solve is a timeout for the native CDCL core, so the
#: sweep stops there (the monotone slowdown is already unambiguous).
WIDTHS = (4, 8, 12, 16)


def _ground_truth(cache, logic, benchmark):
    if benchmark.expected is not None:
        return benchmark.expected
    return cache.baseline(logic, benchmark.name, "zorro").status


def sweep(cache=None, logics=LOGICS, widths=WIDTHS):
    """Run the sweep; returns {logic: {width: {...}}}.

    Accounting follows the paper's *naive transformation* framing:

    - ``geomean_work`` covers constraints that actually produced a
      bounded constraint to solve (a width too small for the constants
      has no solving time to report);
    - ``changed_fraction`` compares the bounded solver's raw
      sat/unsat verdict against the unbounded ground truth. Failed
      translations count as changed; timeouts are excluded (neither
      verdict) and reported separately.
    """
    cache = cache or ExperimentCache()
    results = {}
    for logic in logics:
        per_width = {}
        for width in widths:
            times = []
            changed = 0
            conclusive = 0
            timeouts = 0
            for benchmark in cache.suite(logic):
                arb = cache.arbitrage(logic, benchmark.name, width)
                truth = _ground_truth(cache, logic, benchmark)
                if arb.case == "transform-failed":
                    if truth in ("sat", "unsat"):
                        conclusive += 1
                        changed += 1
                    continue
                times.append(max(arb.total_work, 1))
                status = arb.bounded_status
                if status == "unknown" or truth not in ("sat", "unsat"):
                    timeouts += status == "unknown"
                    continue
                conclusive += 1
                if status != truth:
                    changed += 1
            per_width[width] = {
                "geomean_work": geometric_mean(times) if times else 1.0,
                "changed_fraction": changed / max(conclusive, 1),
                "timeouts": timeouts,
            }
        results[logic] = per_width
    return results


def normalized_times(sweep_results, reference_width=16):
    """Fig. 2a: per-logic times relative to the 16-bit column."""
    normalized = {}
    for logic, per_width in sweep_results.items():
        reference = per_width[reference_width]["geomean_work"]
        normalized[logic] = {
            width: data["geomean_work"] / reference
            for width, data in per_width.items()
        }
    return normalized


def render(cache=None):
    """Human-readable Figure 2 (both panels)."""
    results = sweep(cache)
    lines = ["Figure 2a: geomean bounded solve time, relative to 16 bits", ""]
    header = "logic    " + "".join(f"{w:>9d}" for w in WIDTHS)
    lines.append(header)
    for logic, row in normalized_times(results).items():
        lines.append(
            f"{logic:8s} " + "".join(f"{row[w]:9.2f}" for w in WIDTHS)
        )
    lines.append("")
    lines.append("Figure 2b: % constraints with a different satisfiability result")
    lines.append(header)
    for logic, per_width in results.items():
        lines.append(
            f"{logic:8s} "
            + "".join(f"{100 * per_width[w]['changed_fraction']:8.0f}%" for w in WIDTHS)
        )
    return "\n".join(lines)
