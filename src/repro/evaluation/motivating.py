"""The Section 2 motivating comparison as a harness experiment.

Three variants of one satisfiable QF_NIA constraint (the paper's Fig. 1):

  (a) the unbounded original;
  (b) the bitvector translation with overflow guards (theory arbitrage);
  (c) the original theory with integer bounds *imposed* as assertions.

The paper's point: (b) is orders of magnitude faster than (a), while (c)
barely moves -- the win comes from switching theories, not from the mere
existence of bounds.

Instance choice (a documented substitution, see DESIGN.md): the paper's
sum-of-three-cubes instance exploits Z3's NIA weakness, which bites even
at small witness magnitudes. Our native baselines are interval- and
enumeration-based engines whose weakness is *witness magnitude*, so the
reproduction demonstrates the same arbitrage effect on coupled quadratic
instances with moderate-magnitude witnesses (the ``eigen`` family) --
plus the literal cube instance for fidelity.
"""

from repro.benchgen import suite_for
from repro.core.pipeline import Staub
from repro.evaluation.runner import TIMEOUT_WORK, to_virtual_seconds
from repro.smtlib import build, parse_script, print_script
from repro.smtlib.script import Script
from repro.solver import solve_script


def _cubes_instance():
    return parse_script(
        "(set-logic QF_NIA)"
        "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
        "(assert (= (+ (* x x x) (* y y y) (* z z z)) 378))"
        "(check-sat)"
    )


def _eigen_instance():
    suite = suite_for("QF_NIA")
    for benchmark in suite:
        if benchmark.family == "eigen":
            return benchmark.script
    raise AssertionError("eigen family missing from the QF_NIA suite")


def _bounds_imposed(script, width):
    """Variant (c): same assertions, plus [-2^(w-1), 2^(w-1)-1] bounds."""
    low = 1 << (width - 1)
    high = (1 << (width - 1)) - 1
    bounded = Script(logic="QF_NIA")
    for assertion in script.assertions:
        bounded.add_assertion(assertion)
    for name, sort in script.declarations.items():
        if sort.is_int:
            variable = build.Var(name, sort)
            bounded.add_assertion(build.Le(variable, build.IntConst(high)))
            bounded.add_assertion(build.Ge(variable, build.IntConst(-low)))
    return bounded


def run_motivating(profile="corvus", budget=TIMEOUT_WORK):
    """Returns one record per instance with the three costs."""
    records = []
    staub = Staub()
    for name, script in (
        ("cubes-378", _cubes_instance()),
        ("eigen", _eigen_instance()),
    ):
        original = solve_script(script, budget=budget, profile=profile)
        original_work = budget if original.is_unknown else original.work

        report = staub.run(script, budget=budget)
        arbitrage_work = min(report.total_work, budget)

        bounded_int = _bounds_imposed(script, report.width or 12)
        imposed = solve_script(bounded_int, budget=budget, profile=profile)
        imposed_work = budget if imposed.is_unknown else imposed.work

        records.append(
            {
                "instance": name,
                "original_status": original.status,
                "original_work": original_work,
                "arbitrage_case": report.case,
                "arbitrage_work": arbitrage_work,
                "width": report.width,
                "bounds_imposed_status": imposed.status,
                "bounds_imposed_work": imposed_work,
            }
        )
    return records


def render(budget=TIMEOUT_WORK):
    lines = [
        "Section 2 motivating comparison (virtual seconds; timeout 300)",
        "",
    ]
    for profile in ("zorro", "corvus"):
        records = run_motivating(profile=profile, budget=budget)
        lines.append(
            f"profile {profile}: "
            f"{'instance':>12s} {'(a) original':>14s} {'(b) arbitrage':>14s} "
            f"{'(c) bounds-imposed':>19s}  width"
        )
        for record in records:
            lines.append(
                f"{'':17s}{record['instance']:>12s} "
                f"{to_virtual_seconds(record['original_work']):14.2f} "
                f"{to_virtual_seconds(record['arbitrage_work']):14.2f} "
                f"{to_virtual_seconds(record['bounds_imposed_work']):19.2f}  "
                f"{record['width']}"
            )
        lines.append("")
    lines.append(
        "(b) switches theories and wins on the magnitude-hard instance; "
        "(c) keeps the unbounded theory, and bounds alone do not help."
    )
    return "\n".join(lines)
