"""Table 3: geometric-mean speedups.

For each logic x solver x initial-solving-time interval, and for each
width strategy (fixed 8-bit, fixed 16-bit, STAUB's inference), report:

- the number of verified cases (constraints whose arbitrage model passed
  verification),
- the geomean speedup over verified cases,
- the geomean speedup over the whole interval (portfolio semantics:
  unverified cases contribute exactly 1.0),
- and, for the STAUB strategy, the overall speedup with SLOT chained
  after the transformation (the paper's "SLOT" column / RQ2).
"""

from repro.evaluation.runner import (
    ExperimentCache,
    LOGICS,
    SOLVER_PROFILES,
    STRATEGIES,
    VIRTUAL_UNITS_PER_SECOND,
)
from repro.evaluation.stats import geometric_mean, speedup

#: The paper's T_pre interval buckets, in virtual seconds.
INTERVALS = ((0, 300), (1, 300), (60, 300), (180, 300))


def _in_interval(row, interval):
    low, high = interval
    t_pre_seconds = row["t_pre"] / VIRTUAL_UNITS_PER_SECOND
    return low <= t_pre_seconds <= high


def cell(cache, logic, profile, strategy, interval, slot=False):
    """One (strategy x interval) cell: counts and geomean speedups."""
    rows = [
        row
        for row in cache.rows(logic, profile, strategy, slot=slot)
        if _in_interval(row, interval)
    ]
    verified = [row for row in rows if row["verified"]]
    verified_speedups = [speedup(row["t_pre"], row["final"]) for row in verified]
    overall_speedups = [speedup(row["t_pre"], row["final"]) for row in rows]
    return {
        "count": len(rows),
        "verified_cases": len(verified),
        "verified_speedup": geometric_mean(verified_speedups) if verified else None,
        "overall_speedup": geometric_mean(overall_speedups) if rows else None,
    }


def table3(cache=None, logics=LOGICS):
    """The full table: {logic: {profile: {interval: {strategy: cell}}}}."""
    cache = cache or ExperimentCache()
    table = {}
    for logic in logics:
        per_logic = {}
        for profile in SOLVER_PROFILES:
            per_profile = {}
            for interval in INTERVALS:
                per_interval = {}
                for strategy in STRATEGIES:
                    per_interval[strategy] = cell(cache, logic, profile, strategy, interval)
                per_interval["slot"] = cell(
                    cache, logic, profile, "staub", interval, slot=True
                )
                per_profile[interval] = per_interval
            per_logic[profile] = per_profile
        table[logic] = per_logic
    return table


def _format_speedup(value):
    return "   -  " if value is None else f"{value:6.3f}"


def render(cache=None):
    """Human-readable Table 3."""
    table = table3(cache)
    lines = [
        "Table 3: geometric mean speedups "
        "(verified cases / verified speedup / overall speedup)",
        "",
    ]
    for logic, per_logic in table.items():
        for profile, per_profile in per_logic.items():
            lines.append(f"{logic} / {profile}")
            lines.append(
                f"  {'T_pre':9s} {'count':>6s} "
                + "".join(
                    f"| {s:>7s}: {'cases':>5s} {'verif':>6s} {'over':>6s} "
                    for s in ("fixed8", "fixed16", "staub")
                )
                + "| slot-overall"
            )
            for interval, per_interval in per_profile.items():
                label = f"{interval[0]}-{interval[1]}"
                parts = [f"  {label:9s} {per_interval['staub']['count']:6d} "]
                for strategy in STRATEGIES:
                    data = per_interval[strategy]
                    parts.append(
                        f"| {strategy:>7s}: {data['verified_cases']:5d} "
                        f"{_format_speedup(data['verified_speedup'])} "
                        f"{_format_speedup(data['overall_speedup'])} "
                    )
                parts.append(
                    f"| {_format_speedup(per_interval['slot']['overall_speedup'])}"
                )
                lines.append("".join(parts))
            lines.append("")
    return "\n".join(lines)
