"""Benchmark execution and memoization for all experiments.

Methodology (Section 5.1 of the paper, adapted to the virtual clock):

- Times are deterministic unified work units; :data:`TIMEOUT_WORK` plays
  the role of the paper's 300-second timeout, and
  :func:`to_virtual_seconds` converts for human-readable reports.
- ``T_pre`` is the baseline solver's cost on the original constraint,
  clamped to the timeout (timeouts "count as 300-second contributions").
- The arbitrage side records T_trans + T_post + T_check; under portfolio
  semantics the user-observed final time is ``min`` of the two when
  STAUB's answer is usable, ``T_pre`` otherwise.
- A *tractability improvement* is a constraint where the baseline timed
  out but STAUB produced a verified answer.

Every (suite, profile, strategy) cell is computed once and memoized, so
the table/figure modules can share runs. Passing a
:class:`~repro.cache.SolveCache` additionally persists every baseline
solve and arbitrage record across invocations: a second ``run_all`` with
a warm cache performs zero fresh solves (``eval.cache_hit`` counts them
instead of ``eval.baseline_runs`` / ``eval.arbitrage_runs``).
"""

from repro import telemetry
from repro.benchgen import suite_for
from repro.cache.keys import cache_key
from repro.core.pipeline import Staub, portfolio_time
from repro.slot import optimize_script
from repro.solver import solve_script

#: The virtual timeout: plays the role of the paper's 300 s budget.
TIMEOUT_WORK = 1_200_000

#: Conversion used when printing work as "virtual seconds".
VIRTUAL_UNITS_PER_SECOND = TIMEOUT_WORK // 300

#: Both solver profiles, in the paper's presentation order.
SOLVER_PROFILES = ("zorro", "corvus")

#: Width strategies compared in Tables 2-3.
STRATEGIES = ("fixed8", "fixed16", "staub")

#: The four evaluated logics.
LOGICS = ("QF_NIA", "QF_LIA", "QF_NRA", "QF_LRA")


def to_virtual_seconds(work):
    """Unified work -> virtual seconds (the paper's time axis)."""
    return work / VIRTUAL_UNITS_PER_SECOND


def _slot_optimizer(script):
    optimized, _stats = optimize_script(script)
    return optimized


def make_staub(strategy, slot=False):
    """Build the Staub configuration for a named width strategy."""
    optimizer = _slot_optimizer if slot else None
    if strategy == "staub":
        return Staub(optimizer=optimizer)
    if strategy == "fixed8":
        return Staub(width_strategy=8, optimizer=optimizer)
    if strategy == "fixed16":
        return Staub(width_strategy=16, optimizer=optimizer)
    if isinstance(strategy, int):
        return Staub(width_strategy=strategy, optimizer=optimizer)
    raise ValueError(f"unknown width strategy {strategy!r}")


class BaselineRecord:
    """Baseline solve of one benchmark under one profile."""

    __slots__ = ("status", "work", "timed_out")

    def __init__(self, status, work, timed_out):
        self.status = status
        self.work = work  # clamped to TIMEOUT_WORK
        self.timed_out = timed_out


class ArbitrageRecord:
    """One STAUB run (profile-independent: the bounded side is shared)."""

    __slots__ = (
        "case",
        "total_work",
        "t_trans",
        "t_post",
        "t_check",
        "width",
        "usable",
        "bounded_status",
    )

    def __init__(self, report, timeout=TIMEOUT_WORK):
        self.case = report.case
        self.total_work = min(report.total_work, timeout)
        self.t_trans = report.t_trans
        self.t_post = report.t_post
        self.t_check = report.t_check
        self.width = report.width
        self.usable = report.usable
        self.bounded_status = report.bounded_status  # raw solver status

    def to_entry(self):
        """JSON-safe dict for the persistent solve cache."""
        return {
            "kind": "arbitrage",
            "case": self.case,
            "total_work": self.total_work,
            "t_trans": self.t_trans,
            "t_post": self.t_post,
            "t_check": self.t_check,
            "width": None if self.width is None else int(self.width),
            "usable": self.usable,
            "bounded_status": self.bounded_status,
        }

    @classmethod
    def from_entry(cls, entry):
        record = cls.__new__(cls)
        record.case = entry["case"]
        record.total_work = entry["total_work"]
        record.t_trans = entry["t_trans"]
        record.t_post = entry["t_post"]
        record.t_check = entry["t_check"]
        record.width = entry["width"]
        record.usable = entry["usable"]
        record.bounded_status = entry["bounded_status"]
        return record


class ExperimentCache:
    """Runs and memoizes every solve the experiments need.

    Args:
        seed: suite generation seed.
        scale: suite size multiplier (use < 1 for quick runs).
        timeout: unified-work timeout (default :data:`TIMEOUT_WORK`).
        solve_cache: optional :class:`~repro.cache.SolveCache`; baseline
            solves and arbitrage records are read from and written to it,
            persisting results across runner invocations.
    """

    def __init__(self, seed=2024, scale=1.0, timeout=TIMEOUT_WORK, solve_cache=None):
        self.seed = seed
        self.scale = scale
        self.timeout = timeout
        self.solve_cache = solve_cache
        self._suites = {}
        self._baselines = {}
        self._arbitrage = {}

    # -- suites ------------------------------------------------------------

    def suite(self, logic):
        cached = self._suites.get(logic)
        if cached is None:
            cached = suite_for(logic, seed=self.seed, scale=self.scale)
            self._suites[logic] = cached
        return cached

    # -- baseline runs ---------------------------------------------------------

    def baseline(self, logic, name, profile):
        """Baseline (original-constraint) solve, memoized."""
        key = (logic, name, profile)
        cached = self._baselines.get(key)
        if cached is not None:
            return cached
        benchmark = self._find(logic, name)
        with telemetry.span("baseline", logic=logic, profile=profile):
            result = solve_script(
                benchmark.script,
                budget=self.timeout,
                profile=profile,
                cache=self.solve_cache,
            )
        timed_out = result.is_unknown
        work = self.timeout if timed_out else min(result.work, self.timeout)
        record = BaselineRecord(result.status, work, timed_out)
        self._baselines[key] = record
        if telemetry.enabled:
            if result.cached:
                telemetry.counter_add(
                    "eval.cache_hit", kind="baseline", logic=logic, profile=profile
                )
            else:
                telemetry.counter_add("eval.baseline_runs", logic=logic, profile=profile)
            telemetry.counter_add("eval.baseline_work", work, logic=logic, profile=profile)
            if timed_out:
                telemetry.counter_add("eval.baseline_timeouts", logic=logic, profile=profile)
        return record

    # -- arbitrage runs -----------------------------------------------------------

    def arbitrage(self, logic, name, strategy, slot=False):
        """STAUB run under a width strategy, memoized (profile-free)."""
        if isinstance(strategy, int):
            # Fixed widths share cache entries with their string aliases
            # ("fixed8" == 8), so Fig. 2's sweep reuses Table 2/3 runs.
            canonical = f"fixed{strategy}"
        else:
            canonical = strategy
        key = (logic, name, canonical, slot)
        cached = self._arbitrage.get(key)
        if cached is not None:
            return cached
        benchmark = self._find(logic, name)
        persistent_key = None
        if self.solve_cache is not None:
            persistent_key = cache_key(
                benchmark.script,
                budget=self.timeout,
                kind="arbitrage",
                extra={"strategy": canonical, "slot": slot},
            )
            entry = self.solve_cache.get(persistent_key, kind="arbitrage")
            if entry is not None:
                record = ArbitrageRecord.from_entry(entry)
                self._arbitrage[key] = record
                telemetry.counter_add(
                    "eval.cache_hit", kind="arbitrage", logic=logic, strategy=canonical
                )
                return record
        staub = make_staub(strategy, slot=slot)
        with telemetry.span("arbitrage", logic=logic, strategy=canonical):
            report = staub.run(benchmark.script, budget=self.timeout)
        record = ArbitrageRecord(report, timeout=self.timeout)
        self._arbitrage[key] = record
        if persistent_key is not None:
            self.solve_cache.put(persistent_key, record.to_entry(), kind="arbitrage")
        if telemetry.enabled:
            labels = dict(logic=logic, strategy=canonical)
            telemetry.counter_add("eval.arbitrage_runs", **labels)
            telemetry.counter_add("eval.arbitrage_work", record.total_work, **labels)
            telemetry.counter_add("eval.arbitrage_case", case=record.case, **labels)
            if record.usable:
                telemetry.counter_add("eval.arbitrage_verified", **labels)
        return record

    # -- combined rows ------------------------------------------------------------

    def row(self, logic, name, profile, strategy, slot=False):
        """The full per-constraint row used by Tables 2/3 and Fig 7.

        Returns a dict with t_pre, final (portfolio) time, flags.
        """
        base = self.baseline(logic, name, profile)
        arb = self.arbitrage(logic, name, strategy, slot=slot)
        final = base.work
        if arb.usable:
            final = min(base.work, arb.total_work)
        return {
            "name": name,
            "t_pre": base.work,
            "pre_status": base.status,
            "timed_out": base.timed_out,
            "case": arb.case,
            "verified": arb.usable,
            "t_staub": arb.total_work,
            "final": final,
            "tractability": base.timed_out and arb.usable,
            "width": arb.width,
        }

    def rows(self, logic, profile, strategy, slot=False):
        """All rows for one (logic, profile, strategy) cell."""
        return [
            self.row(logic, benchmark.name, profile, strategy, slot=slot)
            for benchmark in self.suite(logic)
        ]

    # -- telemetry ---------------------------------------------------------

    def telemetry_summary(self):
        """Deterministic per-cell aggregates over every memoized run.

        Baseline cells are keyed ``logic/profile``; arbitrage cells
        ``logic/strategy`` (with a ``+slot`` suffix when the optimizer
        ran). Only runs that actually happened appear, so the summary is
        cheap to build and reflects exactly what an invocation computed.
        """
        baselines = {}
        for (logic, _name, profile) in sorted(self._baselines):
            record = self._baselines[(logic, _name, profile)]
            cell = baselines.setdefault(
                f"{logic}/{profile}",
                {"benchmarks": 0, "timeouts": 0, "total_work": 0, "status": {}},
            )
            cell["benchmarks"] += 1
            cell["total_work"] += record.work
            cell["timeouts"] += 1 if record.timed_out else 0
            cell["status"][record.status] = cell["status"].get(record.status, 0) + 1

        arbitrage = {}
        for (logic, _name, strategy, slot) in sorted(self._arbitrage):
            record = self._arbitrage[(logic, _name, strategy, slot)]
            key = f"{logic}/{strategy}" + ("+slot" if slot else "")
            cell = arbitrage.setdefault(
                key,
                {
                    "benchmarks": 0,
                    "verified": 0,
                    "total_work": 0,
                    "t_trans": 0,
                    "t_post": 0,
                    "t_check": 0,
                    "cases": {},
                },
            )
            cell["benchmarks"] += 1
            cell["verified"] += 1 if record.usable else 0
            cell["total_work"] += record.total_work
            cell["t_trans"] += record.t_trans
            cell["t_post"] += record.t_post
            cell["t_check"] += record.t_check
            cell["cases"][record.case] = cell["cases"].get(record.case, 0) + 1

        return {
            "seed": self.seed,
            "scale": self.scale,
            "timeout": self.timeout,
            "baselines": baselines,
            "arbitrage": arbitrage,
        }

    # -- helpers -----------------------------------------------------------

    def _find(self, logic, name):
        for benchmark in self.suite(logic):
            if benchmark.name == name:
                return benchmark
        raise KeyError(f"no benchmark {name!r} in {logic}")
