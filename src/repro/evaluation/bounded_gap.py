"""The introduction's bounded-vs-unbounded gap.

The paper motivates theory arbitrage with the observation that Z3 takes
1.8x-5.5x longer on average to solve a nonlinear integer constraint than
a bitvector constraint with equivalent operations. This experiment
reproduces the measurement natively: for each satisfiable QF_NIA
benchmark, solve the original with the unbounded engine and solve a
hand-width (sufficient, verified) bitvector twin, then report the
geomean work ratio.
"""

from repro.core.pipeline import Staub
from repro.evaluation.runner import ExperimentCache, TIMEOUT_WORK
from repro.evaluation.stats import geometric_mean
from repro.solver import solve_script


#: Ignore constraints the baseline solves in under one virtual second:
#: there the fixed bit-blasting overhead dominates and the ratio says
#: nothing about solving (the paper's Section 6.1 makes the same point
#: about proportional speedups on small constraints).
TRIVIALITY_FLOOR = 4_000


def measure_gap(cache=None, profile="zorro", logic="QF_NIA"):
    """Returns per-benchmark ratios and their geomean.

    Only benchmarks where both sides produced an answer, and where the
    unbounded solve was non-trivial (>= 1 virtual second), are compared:
    a timeout on either side says nothing about the ratio, and trivially
    small constraints measure only constant overheads.
    """
    cache = cache or ExperimentCache()
    ratios = []
    details = []
    staub = Staub()
    for benchmark in cache.suite(logic):
        base = cache.baseline(logic, benchmark.name, profile)
        if base.timed_out or base.work < TRIVIALITY_FLOOR:
            continue
        arb = cache.arbitrage(logic, benchmark.name, "staub")
        if not arb.usable and arb.case != "bounded-unsat":
            continue
        bounded_work = max(arb.t_post, 1)
        unbounded_work = max(base.work, 1)
        ratios.append(unbounded_work / bounded_work)
        details.append(
            {
                "name": benchmark.name,
                "unbounded": unbounded_work,
                "bounded": bounded_work,
                "ratio": unbounded_work / bounded_work,
            }
        )
    return {
        "geomean_ratio": geometric_mean(ratios) if ratios else None,
        "count": len(ratios),
        "details": details,
    }


def render(cache=None):
    cache = cache or ExperimentCache()
    lines = ["Bounded vs unbounded solving gap (intro's 1.8x-5.5x claim)", ""]
    for profile in ("zorro", "corvus"):
        result = measure_gap(cache, profile=profile)
        ratio = result["geomean_ratio"]
        formatted = "-" if ratio is None else f"{ratio:.2f}x"
        lines.append(
            f"{profile}: geomean unbounded/bounded work ratio = {formatted} "
            f"over {result['count']} comparable QF_NIA constraints"
        )
    return "\n".join(lines)
