"""Statistics helpers for the experiment harness."""

import math


def geometric_mean(values):
    """Geometric mean of positive numbers; 1.0 for an empty sequence."""
    values = [float(v) for v in values]
    if not values:
        return 1.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(t_pre, t_post):
    """Paper's alpha = T_pre / T_final, floored away from zero."""
    t_post = max(float(t_post), 1e-9)
    return float(t_pre) / t_post


def format_ratio(value):
    """Human formatting used by the table renderers."""
    if value >= 100:
        return f"{value:.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"
