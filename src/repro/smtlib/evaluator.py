"""Exact evaluation of terms under a variable assignment.

This is the semantic ground truth of the whole reproduction: STAUB's
verification step (Section 4.4 of the paper) re-checks every candidate
model produced by the bounded solver against the *original* constraint
using this evaluator's exact integer/rational arithmetic.

Division is made total so that solver and evaluator agree on a single
interpretation: ``(div x 0) = 0``, ``(mod x 0) = x``, ``(/ x 0) = 0``.
SMT-LIB leaves these applications unspecified, so any fixed interpretation
is standard-compliant; all components of this package use this one.

Bitvector operations follow SMT-LIB semantics exactly, including the
division-by-zero conventions (``bvudiv x 0`` is all-ones, ``bvurem x 0``
is ``x``) and the overflow predicates used by the paper's transformation.
"""

from fractions import Fraction

from repro.errors import EvaluationError
from repro.fp import softfloat
from repro.smtlib.sorts import BOOL, INT, REAL
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue, FPValue


def euclidean_divmod(numerator, denominator):
    """SMT-LIB integer division: remainder is always in ``[0, |b|)``."""
    if denominator == 0:
        return 0, numerator
    remainder = numerator % abs(denominator)
    quotient = (numerator - remainder) // denominator
    return quotient, remainder


def _bv_sdiv(left, right, width):
    """Signed bitvector division, truncating toward zero."""
    if right.unsigned == 0:
        # SMT-LIB: bvsdiv by zero is bvneg for negative, all-ones otherwise.
        return BVValue(1, width) if left.signed < 0 else BVValue(-1, width)
    quotient = abs(left.signed) // abs(right.signed)
    if (left.signed < 0) != (right.signed < 0):
        quotient = -quotient
    return BVValue(quotient, width)


def _bv_srem(left, right, width):
    """Signed remainder; sign follows the dividend."""
    if right.unsigned == 0:
        return left
    remainder = abs(left.signed) % abs(right.signed)
    if left.signed < 0:
        remainder = -remainder
    return BVValue(remainder, width)


def _bv_smod(left, right, width):
    """Signed modulo; sign follows the divisor."""
    if right.unsigned == 0:
        return left
    remainder = left.signed % right.signed  # Python % follows divisor sign
    return BVValue(remainder, width)


def _bv_shift_amount(value, width):
    """Clamp a shift amount; shifting by >= width zeroes (or sign-fills)."""
    return min(value.unsigned, width)


def _eval_bv(op, args, payload):
    left = args[0]
    width = left.width
    if op is Op.BVNOT:
        return BVValue(~left.unsigned, width)
    if op is Op.BVNEG:
        return BVValue(-left.signed, width)
    if op is Op.BVABS:
        return BVValue(abs(left.signed), width)
    if op is Op.BVNEGO:
        return left.signed == -(1 << (width - 1))
    if op is Op.EXTRACT:
        hi, lo = payload
        return BVValue(left.unsigned >> lo, hi - lo + 1)
    if op is Op.ZERO_EXTEND:
        return BVValue(left.unsigned, width + payload)
    if op is Op.SIGN_EXTEND:
        return BVValue(left.signed, width + payload)

    right = args[1]
    if op is Op.BVAND:
        return BVValue(left.unsigned & right.unsigned, width)
    if op is Op.BVOR:
        return BVValue(left.unsigned | right.unsigned, width)
    if op is Op.BVXOR:
        return BVValue(left.unsigned ^ right.unsigned, width)
    if op is Op.BVADD:
        return BVValue(left.unsigned + right.unsigned, width)
    if op is Op.BVSUB:
        return BVValue(left.unsigned - right.unsigned, width)
    if op is Op.BVMUL:
        return BVValue(left.unsigned * right.unsigned, width)
    if op is Op.BVUDIV:
        if right.unsigned == 0:
            return BVValue(-1, width)
        return BVValue(left.unsigned // right.unsigned, width)
    if op is Op.BVUREM:
        if right.unsigned == 0:
            return left
        return BVValue(left.unsigned % right.unsigned, width)
    if op is Op.BVSDIV:
        return _bv_sdiv(left, right, width)
    if op is Op.BVSREM:
        return _bv_srem(left, right, width)
    if op is Op.BVSMOD:
        return _bv_smod(left, right, width)
    if op is Op.BVSHL:
        return BVValue(left.unsigned << _bv_shift_amount(right, width), width)
    if op is Op.BVLSHR:
        return BVValue(left.unsigned >> _bv_shift_amount(right, width), width)
    if op is Op.BVASHR:
        return BVValue(left.signed >> _bv_shift_amount(right, width), width)
    if op is Op.CONCAT:
        return BVValue((left.unsigned << right.width) | right.unsigned, width + right.width)
    if op is Op.BVULT:
        return left.unsigned < right.unsigned
    if op is Op.BVULE:
        return left.unsigned <= right.unsigned
    if op is Op.BVUGT:
        return left.unsigned > right.unsigned
    if op is Op.BVUGE:
        return left.unsigned >= right.unsigned
    if op is Op.BVSLT:
        return left.signed < right.signed
    if op is Op.BVSLE:
        return left.signed <= right.signed
    if op is Op.BVSGT:
        return left.signed > right.signed
    if op is Op.BVSGE:
        return left.signed >= right.signed

    half = 1 << (width - 1)
    if op is Op.BVSADDO:
        total = left.signed + right.signed
        return not (-half <= total < half)
    if op is Op.BVUADDO:
        return left.unsigned + right.unsigned >= (1 << width)
    if op is Op.BVSSUBO:
        total = left.signed - right.signed
        return not (-half <= total < half)
    if op is Op.BVUSUBO:
        return left.unsigned < right.unsigned
    if op is Op.BVSMULO:
        total = left.signed * right.signed
        return not (-half <= total < half)
    if op is Op.BVUMULO:
        return left.unsigned * right.unsigned >= (1 << width)
    if op is Op.BVSDIVO:
        return left.signed == -half and right.signed == -1
    raise EvaluationError(f"unhandled bitvector operator {op}")


# Function *names* rather than function objects: repro.fp.softfloat also
# imports this package (for FPValue), so at import time the softfloat
# module may only be partially initialized. Resolving lazily breaks the
# cycle; FP operations are rare enough that the getattr is immaterial.
_FP_BINARY_EVAL = {
    Op.FP_ADD: "fp_add",
    Op.FP_SUB: "fp_sub",
    Op.FP_MUL: "fp_mul",
    Op.FP_DIV: "fp_div",
}

_FP_COMPARE_EVAL = {
    Op.FP_LEQ: "fp_leq",
    Op.FP_LT: "fp_lt",
    Op.FP_GEQ: "fp_geq",
    Op.FP_GT: "fp_gt",
    Op.FP_EQ: "fp_eq",
}


def _eval_node(term, args):
    """Evaluate one node given already evaluated argument values."""
    op = term.op
    if op is Op.CONST:
        return term.value
    if op is Op.NOT:
        return not args[0]
    if op is Op.AND:
        return all(args)
    if op is Op.OR:
        return any(args)
    if op is Op.XOR:
        result = False
        for value in args:
            result ^= value
        return result
    if op is Op.IMPLIES:
        return (not args[0]) or args[1]
    if op is Op.ITE:
        return args[1] if args[0] else args[2]
    if op is Op.EQ:
        # SMT-LIB `=` is identity of the datatype: for FP, NaN = NaN holds
        # and +0 /= -0, which is exactly FPValue's structural equality.
        # IEEE `fp.eq` (where NaN != NaN, +0 == -0) is a separate operator.
        return args[0] == args[1]
    if op is Op.DISTINCT:
        return len(set(_hashable(v) for v in args)) == len(args)
    if op is Op.ADD:
        return sum(args[1:], args[0])
    if op is Op.SUB:
        result = args[0]
        for value in args[1:]:
            result = result - value
        return result
    if op is Op.MUL:
        result = args[0]
        for value in args[1:]:
            result = result * value
        return result
    if op is Op.NEG:
        return -args[0]
    if op is Op.ABS:
        return abs(args[0])
    if op is Op.IDIV:
        quotient, _ = euclidean_divmod(args[0], args[1])
        return quotient
    if op is Op.MOD:
        _, remainder = euclidean_divmod(args[0], args[1])
        return remainder
    if op is Op.RDIV:
        if args[1] == 0:
            return Fraction(0)
        return Fraction(args[0]) / Fraction(args[1])
    if op is Op.LE:
        return args[0] <= args[1]
    if op is Op.LT:
        return args[0] < args[1]
    if op is Op.GE:
        return args[0] >= args[1]
    if op is Op.GT:
        return args[0] > args[1]
    if op is Op.TO_REAL:
        return Fraction(args[0])
    if op is Op.TO_INT:
        return args[0].numerator // args[0].denominator  # floor
    if op in _FP_BINARY_EVAL:
        return getattr(softfloat, _FP_BINARY_EVAL[op])(args[0], args[1])
    if op in _FP_COMPARE_EVAL:
        return getattr(softfloat, _FP_COMPARE_EVAL[op])(args[0], args[1])
    if op is Op.FP_NEG:
        return softfloat.fp_neg(args[0])
    if op is Op.FP_ABS:
        return softfloat.fp_abs(args[0])
    if op is Op.FP_IS_NAN:
        return args[0].is_nan
    if op is Op.FP_IS_INF:
        return args[0].is_inf
    if args and isinstance(args[0], BVValue):
        return _eval_bv(op, args, term.payload)
    raise EvaluationError(f"unhandled operator {op}")


def _hashable(value):
    return value


def _check_assignment_value(name, sort, value):
    if sort is BOOL and not isinstance(value, bool):
        raise EvaluationError(f"{name}: expected bool, got {value!r}")
    if sort is INT and (isinstance(value, bool) or not isinstance(value, int)):
        raise EvaluationError(f"{name}: expected int, got {value!r}")
    if sort is REAL and (
        isinstance(value, bool) or not isinstance(value, (int, Fraction))
    ):
        raise EvaluationError(f"{name}: expected Fraction, got {value!r}")
    if sort.is_bv and not (isinstance(value, BVValue) and value.width == sort.width):
        raise EvaluationError(f"{name}: expected width-{sort.width} BVValue, got {value!r}")
    if sort.is_fp and not isinstance(value, FPValue):
        raise EvaluationError(f"{name}: expected FPValue, got {value!r}")


def evaluate(term, assignment):
    """Evaluate a term under ``assignment`` (a name -> value mapping).

    Values must match the variable sorts: Python ``bool``/``int``/
    ``Fraction`` for Bool/Int/Real and :class:`BVValue`/:class:`FPValue`
    for the bounded sorts. Real-sorted variables may also be plain ints.

    Returns:
        The term's value in the same representation.

    Raises:
        EvaluationError: a variable is missing or has a wrong-sort value.
    """
    memo = {}
    for sub in term.subterms():
        if sub.is_var:
            if sub.name not in assignment:
                raise EvaluationError(f"no value for variable {sub.name!r}")
            value = assignment[sub.name]
            _check_assignment_value(sub.name, sub.sort, value)
            if sub.sort is REAL:
                value = Fraction(value)
            memo[sub.tid] = value
        else:
            memo[sub.tid] = _eval_node(sub, [memo[a.tid] for a in sub.args])
    return memo[term.tid]


def evaluate_assertions(assertions, assignment):
    """True iff every assertion evaluates to true under the assignment."""
    return all(evaluate(assertion, assignment) is True for assertion in assertions)
