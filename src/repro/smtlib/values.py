"""Concrete machine values for the bounded sorts.

:class:`BVValue` models a two's-complement bitvector, and :class:`FPValue`
models an IEEE-754 floating-point datum of arbitrary exponent/significand
width. Both are immutable and hashable so they can serve as term payloads.

Arithmetic *semantics* for these values live elsewhere: bitvector
operations in :mod:`repro.smtlib.evaluator` and softfloat arithmetic in
:mod:`repro.fp.softfloat`.
"""

from fractions import Fraction

from repro.errors import SortError


class BVValue:
    """A fixed-width bitvector value.

    The payload is stored as an unsigned integer in ``[0, 2**width)``.
    Signed views use two's complement.
    """

    __slots__ = ("unsigned", "width")

    def __init__(self, value, width):
        if width < 1:
            raise SortError(f"bitvector width must be positive, got {width}")
        self.unsigned = value & ((1 << width) - 1)
        self.width = width

    @classmethod
    def from_signed(cls, value, width):
        """Build from a signed integer, wrapping modulo ``2**width``."""
        return cls(value, width)

    @property
    def signed(self):
        """The two's-complement signed view of the value."""
        if self.unsigned >= 1 << (self.width - 1):
            return self.unsigned - (1 << self.width)
        return self.unsigned

    def bit(self, index):
        """The bit at ``index`` (0 = least significant), as 0 or 1."""
        return (self.unsigned >> index) & 1

    def fits_signed(self, value):
        """Whether a Python integer is representable signed at this width."""
        half = 1 << (self.width - 1)
        return -half <= value < half

    def __eq__(self, other):
        return (
            isinstance(other, BVValue)
            and self.width == other.width
            and self.unsigned == other.unsigned
        )

    def __hash__(self):
        return hash(("bv", self.unsigned, self.width))

    def __repr__(self):
        return f"BVValue({self.unsigned}, width={self.width})"

    def smtlib(self):
        """SMT-LIB spelling, e.g. ``(_ bv855 12)``."""
        return f"(_ bv{self.unsigned} {self.width})"


#: Classification tags for floating-point values.
FP_FINITE = "finite"
FP_INF = "inf"
FP_NAN = "nan"


class FPValue:
    """An IEEE-754 floating-point value of shape ``(eb, sb)``.

    Finite values are stored exactly as ``sign`` (0 or 1) plus a
    non-negative integer ``significand`` scaled by ``2**exponent``, i.e.
    the real value is ``(-1)**sign * significand * 2**exponent``. The
    significand of a normalized non-zero finite value uses exactly ``sb``
    bits; zero has significand 0. Infinities and NaN are tagged with
    ``kind``.
    """

    __slots__ = ("eb", "sb", "kind", "sign", "significand", "exponent")

    def __init__(self, eb, sb, kind, sign, significand=0, exponent=0):
        self.eb = eb
        self.sb = sb
        self.kind = kind
        self.sign = sign
        self.significand = significand
        self.exponent = exponent

    # -- constructors -------------------------------------------------

    @classmethod
    def zero(cls, eb, sb, sign=0):
        return cls(eb, sb, FP_FINITE, sign, 0, 0)

    @classmethod
    def inf(cls, eb, sb, sign=0):
        return cls(eb, sb, FP_INF, sign)

    @classmethod
    def nan(cls, eb, sb):
        return cls(eb, sb, FP_NAN, 0)

    # -- queries -------------------------------------------------------

    @property
    def is_nan(self):
        return self.kind == FP_NAN

    @property
    def is_inf(self):
        return self.kind == FP_INF

    @property
    def is_finite(self):
        return self.kind == FP_FINITE

    @property
    def is_zero(self):
        return self.kind == FP_FINITE and self.significand == 0

    @property
    def is_pathological(self):
        """NaN or an infinity -- a semantic difference per the paper."""
        return self.kind != FP_FINITE

    def to_fraction(self):
        """Exact rational value of a finite datum."""
        if not self.is_finite:
            raise SortError(f"cannot convert {self.kind} to a rational")
        magnitude = Fraction(self.significand) * Fraction(2) ** self.exponent
        return -magnitude if self.sign else magnitude

    def __eq__(self, other):
        """Structural equality (distinguishes +0 from -0; NaN == NaN).

        This is object identity for hashing purposes, *not* IEEE ``fp.eq``;
        use :func:`repro.fp.softfloat.fp_eq` for IEEE comparison semantics.
        """
        if not isinstance(other, FPValue):
            return NotImplemented
        return (
            self.eb == other.eb
            and self.sb == other.sb
            and self.kind == other.kind
            and self.sign == other.sign
            and self.significand == other.significand
            and self.exponent == other.exponent
        )

    def __hash__(self):
        return hash(
            ("fp", self.eb, self.sb, self.kind, self.sign, self.significand, self.exponent)
        )

    def __repr__(self):
        if self.is_nan:
            return f"FPValue(NaN, {self.eb}, {self.sb})"
        if self.is_inf:
            return f"FPValue({'-' if self.sign else '+'}oo, {self.eb}, {self.sb})"
        return (
            f"FPValue({'-' if self.sign else '+'}{self.significand}"
            f"*2^{self.exponent}, {self.eb}, {self.sb})"
        )
