"""Term substitution utilities.

Capture-free substitution is trivial here because the term language has
no binders (let-bindings are expanded by the parser); substitution is a
single sharing-preserving bottom-up rebuild.
"""

from repro.errors import SortError
from repro.smtlib.terms import Term, map_terms


def substitute(term, mapping):
    """Replace variables by terms.

    Args:
        term: the term to rewrite.
        mapping: variable name -> replacement term. Replacements must
            match the variable's sort.

    Returns:
        The rewritten (hash-consed) term.

    Raises:
        SortError: a replacement's sort differs from the variable's.
    """
    return substitute_all([term], mapping)[0]


def substitute_all(terms, mapping):
    """Substitute across several terms, preserving shared structure."""

    def rewrite(node, new_args):
        if node.is_var and node.name in mapping:
            replacement = mapping[node.name]
            if replacement.sort is not node.sort:
                raise SortError(
                    f"substitution for {node.name} has sort "
                    f"{replacement.sort}, expected {node.sort}"
                )
            return replacement
        if not node.args:
            return node
        return Term(node.op, tuple(new_args), node.payload, node.sort)

    return map_terms(terms, rewrite)


def rename_variables(term, renaming):
    """Rename variables (name -> name), keeping sorts."""
    from repro.smtlib import build

    mapping = {}
    for sub in term.subterms():
        if sub.is_var and sub.name in renaming:
            mapping[sub.name] = build.Var(renaming[sub.name], sub.sort)
    return substitute(term, mapping)
