"""SMT-LIB scripts: an ordered list of commands plus a constraint view.

A :class:`Script` is the unit STAUB operates on: a logic, a set of
variable declarations, and a list of assertions. The satisfiability
question is the conjunction of the assertions.
"""

from repro.errors import SmtLibError
from repro.smtlib.builders import And, TRUE
from repro.smtlib.sorts import BOOL, INT, REAL


class Command:
    """A single SMT-LIB command, kept for faithful round-tripping.

    Attributes:
        name: command name, e.g. ``"assert"``.
        args: command-specific payload tuple.
    """

    __slots__ = ("name", "args")

    def __init__(self, name, *args):
        self.name = name
        self.args = args

    def __repr__(self):
        return f"Command({self.name!r}, ...)"


#: Commands that make a script *incremental*: its meaning is a replay of
#: the command list (a session), not one flat conjunction.
SCOPE_COMMANDS = frozenset({"push", "pop", "reset-assertions"})


class Script:
    """A parsed SMT-LIB script.

    Attributes:
        logic: the declared logic string (e.g. ``"QF_NIA"``), or None.
        declarations: ordered mapping from variable name to sort.
        assertions: the asserted boolean terms, in order. For incremental
            scripts (see :attr:`has_scopes`) this is the *flat* view --
            every term ever asserted, including ones later popped; the
            scoped meaning lives in :attr:`commands` and is replayed by
            :func:`repro.solver.session.run_script_session`.
        commands: the raw command list, including metadata commands.
    """

    def __init__(self, logic=None, declarations=None, assertions=None, commands=None):
        self.logic = logic
        self.declarations = dict(declarations or {})
        self.assertions = list(assertions or [])
        self.commands = list(commands or [])

    @classmethod
    def from_assertions(cls, assertions, logic=None):
        """Build a script straight from terms, inferring declarations."""
        script = cls(logic=logic)
        for assertion in assertions:
            script.add_assertion(assertion)
        if logic is None:
            script.logic = script.infer_logic()
        return script

    def add_assertion(self, term):
        """Assert a boolean term, registering its free variables."""
        if term.sort is not BOOL:
            raise SmtLibError(f"asserted term has sort {term.sort}, expected Bool")
        for name, var in term.variables().items():
            declared = self.declarations.get(name)
            if declared is None:
                self.declarations[name] = var.sort
            elif declared is not var.sort:
                raise SmtLibError(
                    f"variable {name} redeclared with sort {var.sort}, was {declared}"
                )
        self.assertions.append(term)

    def conjunction(self):
        """All assertions as one conjunct (``true`` if there are none)."""
        if not self.assertions:
            return TRUE
        if len(self.assertions) == 1:
            return self.assertions[0]
        return And(*self.assertions)

    def variables(self):
        """Mapping from variable name to sort, in declaration order."""
        return dict(self.declarations)

    def infer_logic(self):
        """Guess the quantifier-free SMT-LIB logic from sorts and operators.

        Only the six logics the reproduction works with are produced:
        QF_LIA, QF_NIA, QF_LRA, QF_NRA, QF_BV, and QF_FP (QF_UF-free).
        """
        from repro.smtlib.terms import Op

        has_int = any(s.is_int for s in self.declarations.values())
        has_real = any(s.is_real for s in self.declarations.values())
        has_bv = any(s.is_bv for s in self.declarations.values())
        has_fp = any(s.is_fp for s in self.declarations.values())
        nonlinear = False
        for assertion in self.assertions:
            for sub in assertion.subterms():
                if sub.sort.is_int:
                    has_int = True
                elif sub.sort.is_real:
                    has_real = True
                elif sub.sort.is_bv:
                    has_bv = True
                elif sub.sort.is_fp:
                    has_fp = True
                if sub.op in (Op.MUL, Op.RDIV, Op.IDIV, Op.MOD):
                    non_const = [a for a in sub.args if not a.is_const]
                    if sub.op is Op.MUL and len(non_const) >= 2:
                        nonlinear = True
                    if sub.op in (Op.RDIV, Op.IDIV, Op.MOD) and not sub.args[1].is_const:
                        nonlinear = True
        if has_fp:
            return "QF_FP"
        if has_bv:
            return "QF_BV"
        if has_real:
            return "QF_NRA" if nonlinear else "QF_LRA"
        if has_int:
            return "QF_NIA" if nonlinear else "QF_LIA"
        return "QF_UF"

    @property
    def has_scopes(self):
        """True when the script uses the assertion stack (push/pop/reset)."""
        return any(command.name in SCOPE_COMMANDS for command in self.commands)

    def check_sat_count(self):
        """Number of ``check-sat`` commands (0 for scripts built from terms)."""
        return sum(1 for command in self.commands if command.name == "check-sat")

    @property
    def is_incremental(self):
        """True when the script must be run as a session, not one solve:
        it manipulates the assertion stack or asks more than one
        ``check-sat`` question."""
        return self.has_scopes or self.check_sat_count() > 1

    @property
    def is_bounded(self):
        """True when every declared sort is bounded (Definition 3.3)."""
        return all(sort.is_bounded for sort in self.declarations.values())

    def size(self):
        """Total number of distinct term DAG nodes across assertions."""
        seen = set()
        total = 0
        for assertion in self.assertions:
            for sub in assertion.subterms():
                if sub.tid not in seen:
                    seen.add(sub.tid)
                    total += 1
        return total

    def __repr__(self):
        return (
            f"Script(logic={self.logic!r}, vars={len(self.declarations)}, "
            f"assertions={len(self.assertions)})"
        )


def declare_sort_by_name(name):
    """Resolve a plain sort name used in declarations."""
    if name == "Bool":
        return BOOL
    if name == "Int":
        return INT
    if name == "Real":
        return REAL
    raise SmtLibError(f"unknown sort {name!r}")
