"""Smart constructors for SMT terms.

Every function here sort-checks its operands and returns a hash-consed
:class:`~repro.smtlib.terms.Term`. These constructors are deliberately
structural -- they do *not* simplify (constant folding and algebraic
rewriting are SLOT's job in :mod:`repro.slot`), with the single exception
of flattening directly nested ``and``/``or``, which keeps parser output
compact.
"""

from fractions import Fraction

from repro.errors import SortError
from repro.smtlib.sorts import BOOL, INT, REAL, bv_sort
from repro.smtlib.terms import Op, Term
from repro.smtlib.values import BVValue, FPValue


def _require(condition, message):
    if not condition:
        raise SortError(message)


def _require_same_sort(args, context):
    first = args[0].sort
    for arg in args[1:]:
        _require(
            arg.sort is first,
            f"{context}: mixed operand sorts {first} and {arg.sort}",
        )
    return first


def _require_bool(args, context):
    for arg in args:
        _require(arg.sort is BOOL, f"{context}: expected Bool, got {arg.sort}")


def _require_numeric_arith(args, context):
    sort = _require_same_sort(args, context)
    _require(sort.is_int or sort.is_real, f"{context}: expected Int or Real, got {sort}")
    return sort


def _require_bv(args, context):
    sort = _require_same_sort(args, context)
    _require(sort.is_bv, f"{context}: expected a bitvector, got {sort}")
    return sort


def _require_fp(args, context):
    sort = _require_same_sort(args, context)
    _require(sort.is_fp, f"{context}: expected a floating-point sort, got {sort}")
    return sort


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


def BoolConst(value):
    """The boolean literal ``true`` or ``false``."""
    return Term(Op.CONST, (), bool(value), BOOL)


TRUE = BoolConst(True)
FALSE = BoolConst(False)


def IntConst(value):
    """An integer literal."""
    return Term(Op.CONST, (), int(value), INT)


def RealConst(value):
    """A real literal, stored as an exact :class:`~fractions.Fraction`."""
    return Term(Op.CONST, (), Fraction(value), REAL)


def BitVecConst(value, width):
    """A bitvector literal ``(_ bv<value> <width>)``."""
    bv = value if isinstance(value, BVValue) else BVValue(value, width)
    _require(bv.width == width, f"bitvector literal width mismatch: {bv.width} vs {width}")
    return Term(Op.CONST, (), bv, bv_sort(width))


def FPConst(value):
    """A floating-point literal from an :class:`FPValue`."""
    from repro.smtlib.sorts import fp_sort

    _require(isinstance(value, FPValue), f"expected FPValue, got {type(value).__name__}")
    return Term(Op.CONST, (), value, fp_sort(value.eb, value.sb))


def Var(name, sort):
    """A free variable (an SMT-LIB zero-arity ``declare-fun``)."""
    _require(isinstance(name, str) and name, "variable name must be a non-empty string")
    return Term(Op.VAR, (), name, sort)


def BoolVar(name):
    return Var(name, BOOL)


def IntVar(name):
    return Var(name, INT)


def RealVar(name):
    return Var(name, REAL)


def BitVecVar(name, width):
    return Var(name, bv_sort(width))


def FPVar(name, eb, sb):
    from repro.smtlib.sorts import fp_sort

    return Var(name, fp_sort(eb, sb))


def Const(value, sort):
    """A literal of the given sort from a raw Python value."""
    if sort is BOOL:
        return BoolConst(value)
    if sort is INT:
        return IntConst(value)
    if sort is REAL:
        return RealConst(value)
    if sort.is_bv:
        return BitVecConst(value, sort.width)
    if sort.is_fp:
        return FPConst(value)
    raise SortError(f"cannot build a literal of sort {sort}")


# ---------------------------------------------------------------------------
# Core theory
# ---------------------------------------------------------------------------


def Not(arg):
    _require_bool([arg], "not")
    return Term(Op.NOT, (arg,), None, BOOL)


def _nary_bool(op, args, context):
    flat = []
    for arg in args:
        if arg.op is op:
            flat.extend(arg.args)
        else:
            flat.append(arg)
    _require(len(flat) >= 1, f"{context}: needs at least one operand")
    _require_bool(flat, context)
    if len(flat) == 1:
        return flat[0]
    return Term(op, tuple(flat), None, BOOL)


def And(*args):
    """N-ary conjunction; nested conjunctions are flattened."""
    if not args:
        return TRUE
    return _nary_bool(Op.AND, args, "and")


def Or(*args):
    """N-ary disjunction; nested disjunctions are flattened."""
    if not args:
        return FALSE
    return _nary_bool(Op.OR, args, "or")


def Xor(*args):
    _require(len(args) >= 2, "xor: needs at least two operands")
    _require_bool(args, "xor")
    return Term(Op.XOR, tuple(args), None, BOOL)


def Implies(antecedent, consequent):
    _require_bool([antecedent, consequent], "=>")
    return Term(Op.IMPLIES, (antecedent, consequent), None, BOOL)


def Ite(condition, then_term, else_term):
    _require_bool([condition], "ite")
    sort = _require_same_sort([then_term, else_term], "ite branches")
    return Term(Op.ITE, (condition, then_term, else_term), None, sort)


def Eq(left, right):
    _require_same_sort([left, right], "=")
    return Term(Op.EQ, (left, right), None, BOOL)


def Distinct(*args):
    _require(len(args) >= 2, "distinct: needs at least two operands")
    _require_same_sort(args, "distinct")
    return Term(Op.DISTINCT, tuple(args), None, BOOL)


# ---------------------------------------------------------------------------
# Integer / real arithmetic
# ---------------------------------------------------------------------------


def Add(*args):
    _require(len(args) >= 2, "+: needs at least two operands")
    sort = _require_numeric_arith(args, "+")
    return Term(Op.ADD, tuple(args), None, sort)


def Sub(*args):
    _require(len(args) >= 2, "-: needs at least two operands")
    sort = _require_numeric_arith(args, "-")
    return Term(Op.SUB, tuple(args), None, sort)


def Mul(*args):
    _require(len(args) >= 2, "*: needs at least two operands")
    sort = _require_numeric_arith(args, "*")
    return Term(Op.MUL, tuple(args), None, sort)


def Neg(arg):
    """Unary minus.

    Literal operands fold into negative literals -- this is literal
    normalization (matching how the parser reads ``(- 5)``), not algebraic
    simplification, and it keeps print/parse round-trips identities.
    """
    sort = _require_numeric_arith([arg], "unary -")
    if arg.is_const:
        if sort is INT:
            return IntConst(-arg.value)
        return RealConst(-arg.value)
    return Term(Op.NEG, (arg,), None, sort)


def Abs(arg):
    _require(arg.sort is INT, f"abs: expected Int, got {arg.sort}")
    return Term(Op.ABS, (arg,), None, INT)


def IntDiv(numerator, denominator):
    """Euclidean integer division ``(div a b)``."""
    _require(numerator.sort is INT and denominator.sort is INT, "div: expected Int operands")
    return Term(Op.IDIV, (numerator, denominator), None, INT)


def Mod(numerator, denominator):
    _require(numerator.sort is INT and denominator.sort is INT, "mod: expected Int operands")
    return Term(Op.MOD, (numerator, denominator), None, INT)


def RealDiv(numerator, denominator):
    _require(
        numerator.sort is REAL and denominator.sort is REAL, "/: expected Real operands"
    )
    # Literal normalization, like Neg: the printer spells a non-integer
    # rational constant as (/ n d), so folding constant division keeps
    # parse(print(t)) an identity. Division by the zero literal stays
    # symbolic (SMT-LIB leaves it to the solver's total semantics).
    if numerator.is_const and denominator.is_const and denominator.value != 0:
        return RealConst(Fraction(numerator.value, denominator.value))
    return Term(Op.RDIV, (numerator, denominator), None, REAL)


def _comparison(op, left, right, context):
    sort = _require_same_sort([left, right], context)
    _require(sort.is_int or sort.is_real, f"{context}: expected Int or Real, got {sort}")
    return Term(op, (left, right), None, BOOL)


def Le(left, right):
    return _comparison(Op.LE, left, right, "<=")


def Lt(left, right):
    return _comparison(Op.LT, left, right, "<")


def Ge(left, right):
    return _comparison(Op.GE, left, right, ">=")


def Gt(left, right):
    return _comparison(Op.GT, left, right, ">")


def ToReal(arg):
    _require(arg.sort is INT, f"to_real: expected Int, got {arg.sort}")
    return Term(Op.TO_REAL, (arg,), None, REAL)


def ToInt(arg):
    _require(arg.sort is REAL, f"to_int: expected Real, got {arg.sort}")
    return Term(Op.TO_INT, (arg,), None, INT)


# ---------------------------------------------------------------------------
# Bitvectors
# ---------------------------------------------------------------------------

_BV_BINARY = {
    Op.BVAND,
    Op.BVOR,
    Op.BVXOR,
    Op.BVADD,
    Op.BVSUB,
    Op.BVMUL,
    Op.BVUDIV,
    Op.BVSDIV,
    Op.BVUREM,
    Op.BVSREM,
    Op.BVSMOD,
    Op.BVSHL,
    Op.BVLSHR,
    Op.BVASHR,
}

_BV_COMPARE = {
    Op.BVULT,
    Op.BVULE,
    Op.BVUGT,
    Op.BVUGE,
    Op.BVSLT,
    Op.BVSLE,
    Op.BVSGT,
    Op.BVSGE,
}

_BV_OVERFLOW = {
    Op.BVSADDO,
    Op.BVUADDO,
    Op.BVSSUBO,
    Op.BVUSUBO,
    Op.BVSMULO,
    Op.BVUMULO,
    Op.BVSDIVO,
}


def bv_binary(op, left, right):
    """A binary bitvector operation of the given :class:`Op`."""
    _require(op in _BV_BINARY, f"{op} is not a binary bitvector operator")
    sort = _require_bv([left, right], op.value)
    return Term(op, (left, right), None, sort)


def bv_compare(op, left, right):
    """A bitvector comparison predicate of the given :class:`Op`."""
    _require(op in _BV_COMPARE, f"{op} is not a bitvector comparison")
    _require_bv([left, right], op.value)
    return Term(op, (left, right), None, BOOL)


def bv_overflow(op, left, right):
    """A binary overflow predicate such as ``bvsmulo``."""
    _require(op in _BV_OVERFLOW, f"{op} is not an overflow predicate")
    _require_bv([left, right], op.value)
    return Term(op, (left, right), None, BOOL)


def BVNot(arg):
    sort = _require_bv([arg], "bvnot")
    return Term(Op.BVNOT, (arg,), None, sort)


def BVNeg(arg):
    sort = _require_bv([arg], "bvneg")
    return Term(Op.BVNEG, (arg,), None, sort)


def BVAbs(arg):
    sort = _require_bv([arg], "bvabs")
    return Term(Op.BVABS, (arg,), None, sort)


def BVNegO(arg):
    _require_bv([arg], "bvnego")
    return Term(Op.BVNEGO, (arg,), None, BOOL)


def BVAdd(left, right):
    return bv_binary(Op.BVADD, left, right)


def BVSub(left, right):
    return bv_binary(Op.BVSUB, left, right)


def BVMul(left, right):
    return bv_binary(Op.BVMUL, left, right)


def BVSDiv(left, right):
    return bv_binary(Op.BVSDIV, left, right)


def Concat(high, low):
    _require(high.sort.is_bv and low.sort.is_bv, "concat: expected bitvectors")
    return Term(Op.CONCAT, (high, low), None, bv_sort(high.sort.width + low.sort.width))


def Extract(hi, lo, arg):
    _require(arg.sort.is_bv, f"extract: expected a bitvector, got {arg.sort}")
    _require(
        0 <= lo <= hi < arg.sort.width,
        f"extract: bad indices [{hi}:{lo}] for width {arg.sort.width}",
    )
    return Term(Op.EXTRACT, (arg,), (hi, lo), bv_sort(hi - lo + 1))


def ZeroExtend(extra, arg):
    _require(arg.sort.is_bv, "zero_extend: expected a bitvector")
    _require(extra >= 0, "zero_extend: negative extension")
    if extra == 0:
        return arg
    return Term(Op.ZERO_EXTEND, (arg,), extra, bv_sort(arg.sort.width + extra))


def SignExtend(extra, arg):
    _require(arg.sort.is_bv, "sign_extend: expected a bitvector")
    _require(extra >= 0, "sign_extend: negative extension")
    if extra == 0:
        return arg
    return Term(Op.SIGN_EXTEND, (arg,), extra, bv_sort(arg.sort.width + extra))


# ---------------------------------------------------------------------------
# Floating point
# ---------------------------------------------------------------------------

_FP_BINARY = {Op.FP_ADD, Op.FP_SUB, Op.FP_MUL, Op.FP_DIV}
_FP_COMPARE = {Op.FP_LEQ, Op.FP_LT, Op.FP_GEQ, Op.FP_GT, Op.FP_EQ}


def fp_binary(op, left, right):
    """A binary floating-point arithmetic operation (RNE rounding)."""
    _require(op in _FP_BINARY, f"{op} is not a binary floating-point operator")
    sort = _require_fp([left, right], op.value)
    return Term(op, (left, right), None, sort)


def fp_compare(op, left, right):
    """A floating-point comparison predicate."""
    _require(op in _FP_COMPARE, f"{op} is not a floating-point comparison")
    _require_fp([left, right], op.value)
    return Term(op, (left, right), None, BOOL)


def FPNeg(arg):
    sort = _require_fp([arg], "fp.neg")
    return Term(Op.FP_NEG, (arg,), None, sort)


def FPAbs(arg):
    sort = _require_fp([arg], "fp.abs")
    return Term(Op.FP_ABS, (arg,), None, sort)


def FPIsNaN(arg):
    _require_fp([arg], "fp.isNaN")
    return Term(Op.FP_IS_NAN, (arg,), None, BOOL)


def FPIsInf(arg):
    _require_fp([arg], "fp.isInfinite")
    return Term(Op.FP_IS_INF, (arg,), None, BOOL)
