"""Printing terms and scripts back to SMT-LIB 2 concrete syntax.

The printer emits standard SMT-LIB so that output round-trips through
:mod:`repro.smtlib.parser` (property-tested in the test suite) and could be
fed to any external SMT-LIB-compliant solver, mirroring STAUB's
``--output`` flag.
"""

from fractions import Fraction

from repro.smtlib.sorts import BOOL
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue, FPValue


def _format_int(value):
    if value < 0:
        return f"(- {-value})"
    return str(value)


def _format_real(value):
    fraction = Fraction(value)
    if fraction < 0:
        return f"(- {_format_real(-fraction)})"
    if fraction.denominator == 1:
        return f"{fraction.numerator}.0"
    return f"(/ {fraction.numerator}.0 {fraction.denominator}.0)"


def _format_fp(value):
    if value.is_nan:
        return f"(_ NaN {value.eb} {value.sb})"
    if value.is_inf:
        sign = "-" if value.sign else "+"
        return f"(_ {sign}oo {value.eb} {value.sb})"
    if value.is_zero:
        sign = "-" if value.sign else "+"
        return f"(_ {sign}zero {value.eb} {value.sb})"
    # Finite non-zero values print via the real-to-fp conversion form,
    # which every SMT-LIB solver accepts.
    rational = value.to_fraction()
    return f"((_ to_fp {value.eb} {value.sb}) RNE {_format_real(rational)})"


def _format_const(term):
    value = term.value
    if term.sort is BOOL:
        return "true" if value else "false"
    if isinstance(value, BVValue):
        return value.smtlib()
    if isinstance(value, FPValue):
        return _format_fp(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return _format_int(value)
    return _format_real(value)


def _head(term):
    """The operator spelling that opens this application."""
    op = term.op
    if op is Op.NEG:
        return "-"
    if op is Op.EXTRACT:
        hi, lo = term.payload
        return f"(_ extract {hi} {lo})"
    if op is Op.ZERO_EXTEND:
        return f"(_ zero_extend {term.payload})"
    if op is Op.SIGN_EXTEND:
        return f"(_ sign_extend {term.payload})"
    return op.value


#: Arithmetic FP operators take an explicit rounding mode in SMT-LIB.
_FP_ROUNDED = {Op.FP_ADD, Op.FP_SUB, Op.FP_MUL, Op.FP_DIV}


def print_term(term):
    """Render a term as an SMT-LIB 2 s-expression string."""
    parts = []
    # Iterative rendering: the stack holds either terms to render or
    # literal strings already rendered.
    stack = [term]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            parts.append(item)
            continue
        if item.op is Op.CONST:
            parts.append(_format_const(item))
            continue
        if item.op is Op.VAR:
            parts.append(item.name)
            continue
        parts.append("(" + _head(item))
        if item.op in _FP_ROUNDED:
            parts.append("RNE")
        stack.append(")")
        for arg in reversed(item.args):
            stack.append(arg)
    # Join with spaces, then tidy the parenthesis spacing.
    text = " ".join(parts)
    return text.replace("( ", "(").replace(" )", ")")


def print_sort(sort):
    """Render a sort in SMT-LIB spelling."""
    return sort.name


def print_command(command):
    """Render one :class:`~repro.smtlib.script.Command`."""
    name = command.name
    if name == "set-logic":
        return f"(set-logic {command.args[0]})"
    if name == "set-info":
        keyword, value = command.args
        return f"(set-info {keyword} {value})"
    if name == "declare-fun":
        symbol, sort = command.args
        return f"(declare-fun {symbol} () {print_sort(sort)})"
    if name == "declare-const":
        symbol, sort = command.args
        return f"(declare-const {symbol} {print_sort(sort)})"
    if name == "assert":
        return f"(assert {print_term(command.args[0])})"
    if name == "push" or name == "pop":
        return f"({name} {command.args[0]})"
    if name in ("check-sat", "get-model", "exit", "reset-assertions"):
        return f"({name})"
    raise ValueError(f"cannot print command {name!r}")


def print_script(script):
    """Render a full :class:`~repro.smtlib.script.Script`.

    Non-incremental scripts render as the canonical flat form
    (declarations, assertions, one ``check-sat``). Incremental scripts --
    ones using push/pop/reset-assertions or several ``check-sat``
    commands -- render their command list faithfully so the scoped
    structure round-trips through the parser.
    """
    if script.is_incremental:
        return print_session_script(script)
    lines = []
    if script.logic:
        lines.append(f"(set-logic {script.logic})")
    for name, sort in script.declarations.items():
        lines.append(f"(declare-fun {name} () {print_sort(sort)})")
    for assertion in script.assertions:
        lines.append(f"(assert {print_term(assertion)})")
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"


def print_session_script(script):
    """Render an incremental script as its faithful command stream.

    ``set-info``/``set-option`` commands are elided (the parser keeps
    only a blank placeholder for them) and ``set-logic`` prints once, in
    front, whether or not it appeared as a command.
    """
    lines = []
    if script.logic:
        lines.append(f"(set-logic {script.logic})")
    for command in script.commands:
        if command.name in ("set-logic", "set-info", "set-option"):
            continue
        lines.append(print_command(command))
    return "\n".join(lines) + "\n"
