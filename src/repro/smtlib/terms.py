"""Hash-consed SMT terms.

Terms form an immutable DAG. Construction goes through the smart
constructors in :mod:`repro.smtlib.builders`, which sort-check operands;
this module only defines the representation.

Hash-consing guarantees that structurally identical terms are the same
object, so equality tests, set membership, and memoized traversals are
O(1) per node. All traversal utilities here are iterative, because SMT-LIB
benchmarks routinely exceed Python's recursion limit.
"""

import enum

from repro.smtlib.sorts import BOOL


class Op(enum.Enum):
    """Every operator in the supported SMT-LIB fragment."""

    # Leaves.
    CONST = "const"
    VAR = "var"

    # Core theory.
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    IMPLIES = "=>"
    ITE = "ite"
    EQ = "="
    DISTINCT = "distinct"

    # Integer / real arithmetic (shared spellings in SMT-LIB).
    ADD = "+"
    SUB = "-"
    MUL = "*"
    NEG = "neg"  # unary minus; printed as (- x)
    ABS = "abs"
    IDIV = "div"
    MOD = "mod"
    RDIV = "/"
    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"
    TO_REAL = "to_real"
    TO_INT = "to_int"

    # Bitvectors.
    BVNOT = "bvnot"
    BVAND = "bvand"
    BVOR = "bvor"
    BVXOR = "bvxor"
    BVNEG = "bvneg"
    BVADD = "bvadd"
    BVSUB = "bvsub"
    BVMUL = "bvmul"
    BVUDIV = "bvudiv"
    BVSDIV = "bvsdiv"
    BVUREM = "bvurem"
    BVSREM = "bvsrem"
    BVSMOD = "bvsmod"
    BVSHL = "bvshl"
    BVLSHR = "bvlshr"
    BVASHR = "bvashr"
    BVULT = "bvult"
    BVULE = "bvule"
    BVUGT = "bvugt"
    BVUGE = "bvuge"
    BVSLT = "bvslt"
    BVSLE = "bvsle"
    BVSGT = "bvsgt"
    BVSGE = "bvsge"
    BVABS = "bvabs"  # not core SMT-LIB; used by the Int->BV map for abs
    CONCAT = "concat"
    EXTRACT = "extract"  # payload: (hi, lo)
    ZERO_EXTEND = "zero_extend"  # payload: extra bits
    SIGN_EXTEND = "sign_extend"  # payload: extra bits

    # Overflow predicates (SMT-LIB proposal; implemented by Z3/CVC5 and
    # used by the paper's transformation to forbid wraparound).
    BVSADDO = "bvsaddo"
    BVUADDO = "bvuaddo"
    BVSSUBO = "bvssubo"
    BVUSUBO = "bvusubo"
    BVSMULO = "bvsmulo"
    BVUMULO = "bvumulo"
    BVSDIVO = "bvsdivo"
    BVNEGO = "bvnego"

    # Floating point (RNE rounding is implicit for the arithmetic ops).
    FP_ABS = "fp.abs"
    FP_NEG = "fp.neg"
    FP_ADD = "fp.add"
    FP_SUB = "fp.sub"
    FP_MUL = "fp.mul"
    FP_DIV = "fp.div"
    FP_LEQ = "fp.leq"
    FP_LT = "fp.lt"
    FP_GEQ = "fp.geq"
    FP_GT = "fp.gt"
    FP_EQ = "fp.eq"
    FP_IS_NAN = "fp.isNaN"
    FP_IS_INF = "fp.isInfinite"


#: Operators whose result is Bool regardless of operand sorts.
PREDICATE_OPS = frozenset(
    {
        Op.NOT,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.IMPLIES,
        Op.EQ,
        Op.DISTINCT,
        Op.LE,
        Op.LT,
        Op.GE,
        Op.GT,
        Op.BVULT,
        Op.BVULE,
        Op.BVUGT,
        Op.BVUGE,
        Op.BVSLT,
        Op.BVSLE,
        Op.BVSGT,
        Op.BVSGE,
        Op.BVSADDO,
        Op.BVUADDO,
        Op.BVSSUBO,
        Op.BVUSUBO,
        Op.BVSMULO,
        Op.BVUMULO,
        Op.BVSDIVO,
        Op.BVNEGO,
        Op.FP_LEQ,
        Op.FP_LT,
        Op.FP_GEQ,
        Op.FP_GT,
        Op.FP_EQ,
        Op.FP_IS_NAN,
        Op.FP_IS_INF,
    }
)

#: Integer/real comparison operators, in SMT-LIB spelling order.
ARITH_COMPARISONS = (Op.LE, Op.LT, Op.GE, Op.GT)

#: Chainable boolean connectives that accept two or more operands.
NARY_BOOLEAN_OPS = frozenset({Op.AND, Op.OR, Op.XOR})


class Term:
    """A node of the hash-consed term DAG.

    Attributes:
        op: the :class:`Op` of this node.
        args: operand terms, as a tuple.
        payload: operator-specific data -- the literal value for ``CONST``,
            the name string for ``VAR``, ``(hi, lo)`` for ``EXTRACT``, and
            the extension amount for the extend operators.
        sort: the term's :class:`~repro.smtlib.sorts.Sort`.
        tid: a process-unique integer identity, usable as a dict key and
            stable within a run (useful for deterministic ordering).
    """

    __slots__ = ("op", "args", "payload", "sort", "tid", "__weakref__")

    _table = {}
    _next_id = 0

    def __new__(cls, op, args, payload, sort):
        key = (op, tuple(t.tid for t in args), payload, sort)
        cached = cls._table.get(key)
        if cached is not None:
            return cached
        term = object.__new__(cls)
        term.op = op
        term.args = tuple(args)
        term.payload = payload
        term.sort = sort
        term.tid = cls._next_id
        cls._next_id += 1
        cls._table[key] = term
        return term

    # Hash-consing makes identity equality correct; inherit object's
    # __eq__/__hash__ (identity-based) for speed.

    def __repr__(self):
        from repro.smtlib.printer import print_term

        text = print_term(self)
        if len(text) > 120:
            text = text[:117] + "..."
        return text

    @property
    def is_const(self):
        return self.op is Op.CONST

    @property
    def is_var(self):
        return self.op is Op.VAR

    @property
    def name(self):
        """Variable name; only meaningful when ``is_var``."""
        return self.payload

    @property
    def value(self):
        """Literal value; only meaningful when ``is_const``."""
        return self.payload

    @property
    def is_bool(self):
        return self.sort is BOOL

    def subterms(self):
        """Iterate every distinct subterm (including self), post-order.

        Each DAG node is yielded exactly once.
        """
        seen = set()
        stack = [(self, False)]
        while stack:
            term, expanded = stack.pop()
            if term.tid in seen:
                continue
            if expanded:
                seen.add(term.tid)
                yield term
            else:
                stack.append((term, True))
                for arg in term.args:
                    if arg.tid not in seen:
                        stack.append((arg, False))

    def variables(self):
        """All variables occurring in the term, as a name->Term dict."""
        result = {}
        for sub in self.subterms():
            if sub.is_var:
                result[sub.payload] = sub
        return result

    def constants(self):
        """All literal constants occurring in the term."""
        return [sub for sub in self.subterms() if sub.is_const]

    def size(self):
        """Number of distinct DAG nodes."""
        return sum(1 for _ in self.subterms())

    def tree_size(self):
        """Number of nodes counting shared subterms once per occurrence."""
        memo = {}
        for sub in self.subterms():
            memo[sub.tid] = 1 + sum(memo[a.tid] for a in sub.args)
        return memo[self.tid]

    def depth(self):
        """Height of the term DAG (a leaf has depth 1)."""
        memo = {}
        for sub in self.subterms():
            memo[sub.tid] = 1 + max((memo[a.tid] for a in sub.args), default=0)
        return memo[self.tid]

    @staticmethod
    def interning_table_size():
        """Number of live interned terms (diagnostic)."""
        return len(Term._table)


def map_terms(roots, transform):
    """Rebuild a term DAG bottom-up through ``transform``.

    ``transform(term, new_args)`` receives each node along with its already
    transformed arguments and returns the replacement term. Sharing is
    preserved: each distinct node is transformed exactly once.

    Args:
        roots: an iterable of root terms.
        transform: the per-node rewrite callback.

    Returns:
        The list of transformed roots, in input order.
    """
    roots = list(roots)
    memo = {}
    for root in roots:
        for sub in root.subterms():
            if sub.tid in memo:
                continue
            new_args = [memo[a.tid] for a in sub.args]
            memo[sub.tid] = transform(sub, new_args)
    return [memo[root.tid] for root in roots]
