"""SMT-LIB 2 front end: sorts, terms, parsing, printing, evaluation.

The most commonly used names are re-exported here so client code can write
``from repro.smtlib import Int, BitVec, parse_script``.
"""

from repro.smtlib.sorts import (
    BOOL,
    INT,
    REAL,
    BVSort,
    FPSort,
    Sort,
    bv_sort,
    fp_sort,
)
from repro.smtlib.terms import Op, Term
from repro.smtlib import builders as build
from repro.smtlib.builders import (
    And,
    BitVecConst,
    BitVecVar,
    BoolConst,
    BoolVar,
    Distinct,
    Eq,
    FALSE,
    Implies,
    IntConst,
    IntVar,
    Ite,
    Not,
    Or,
    RealConst,
    RealVar,
    TRUE,
    Xor,
)
from repro.smtlib.script import Command, Script
from repro.smtlib.parser import parse_script, parse_term
from repro.smtlib.printer import print_script, print_term
from repro.smtlib.evaluator import BVValue, evaluate, evaluate_assertions
from repro.smtlib.substitution import rename_variables, substitute, substitute_all

__all__ = [
    "BOOL",
    "INT",
    "REAL",
    "BVSort",
    "FPSort",
    "Sort",
    "bv_sort",
    "fp_sort",
    "Op",
    "Term",
    "build",
    "And",
    "BitVecConst",
    "BitVecVar",
    "BoolConst",
    "BoolVar",
    "Distinct",
    "Eq",
    "FALSE",
    "Implies",
    "IntConst",
    "IntVar",
    "Ite",
    "Not",
    "Or",
    "RealConst",
    "RealVar",
    "TRUE",
    "Xor",
    "Command",
    "Script",
    "parse_script",
    "parse_term",
    "print_script",
    "print_term",
    "BVValue",
    "evaluate",
    "evaluate_assertions",
    "rename_variables",
    "substitute",
    "substitute_all",
]
