"""Tokenizer for SMT-LIB 2 concrete syntax.

Produces a flat token stream; grouping into s-expressions happens in the
parser. Comments (``;`` to end of line) are skipped. Quoted symbols
(``|...|``) and string literals (``"..."``) are supported because SMT-LIB
benchmark headers routinely contain them.
"""

from repro.errors import ParseError

#: Token kinds.
LPAREN = "lparen"
RPAREN = "rparen"
SYMBOL = "symbol"
KEYWORD = "keyword"
NUMERAL = "numeral"
DECIMAL = "decimal"
STRING = "string"

_SYMBOL_EXTRA = set("~!@$%^&*_-+=<>.?/")


class Token:
    """A single lexical token with source position for error reporting."""

    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind, text, line, column):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r})"


def tokenize(text):
    """Tokenize SMT-LIB source text into a list of :class:`Token`."""
    tokens = []
    index = 0
    line = 1
    column = 1
    length = len(text)

    def advance(count):
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if char == ";":
            while index < length and text[index] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if char == "(":
            tokens.append(Token(LPAREN, "(", start_line, start_column))
            advance(1)
            continue
        if char == ")":
            tokens.append(Token(RPAREN, ")", start_line, start_column))
            advance(1)
            continue
        if char == "|":
            end = text.find("|", index + 1)
            if end < 0:
                raise ParseError("unterminated quoted symbol", start_line, start_column)
            tokens.append(Token(SYMBOL, text[index + 1 : end], start_line, start_column))
            advance(end + 1 - index)
            continue
        if char == '"':
            # SMT-LIB strings escape '"' by doubling it.
            pieces = []
            cursor = index + 1
            while True:
                end = text.find('"', cursor)
                if end < 0:
                    raise ParseError("unterminated string literal", start_line, start_column)
                pieces.append(text[cursor:end])
                if end + 1 < length and text[end + 1] == '"':
                    pieces.append('"')
                    cursor = end + 2
                else:
                    cursor = end + 1
                    break
            tokens.append(Token(STRING, "".join(pieces), start_line, start_column))
            advance(cursor - index)
            continue
        if char == ":":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] in _SYMBOL_EXTRA):
                end += 1
            tokens.append(Token(KEYWORD, text[index:end], start_line, start_column))
            advance(end - index)
            continue
        if char.isdigit():
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            word = text[index:end]
            kind = DECIMAL if seen_dot else NUMERAL
            tokens.append(Token(kind, word, start_line, start_column))
            advance(end - index)
            continue
        if char.isalpha() or char in _SYMBOL_EXTRA or char == "#":
            end = index
            if char == "#":
                # Binary (#b1010) or hexadecimal (#xff) bitvector literal.
                end = index + 2
                while end < length and (text[end].isalnum()):
                    end += 1
                tokens.append(Token(SYMBOL, text[index:end], start_line, start_column))
                advance(end - index)
                continue
            while end < length and (text[end].isalnum() or text[end] in _SYMBOL_EXTRA):
                end += 1
            tokens.append(Token(SYMBOL, text[index:end], start_line, start_column))
            advance(end - index)
            continue
        raise ParseError(f"unexpected character {char!r}", start_line, start_column)
    return tokens
