"""Parser for the supported SMT-LIB 2 fragment.

Two layers: an s-expression reader over the token stream, then an
interpreter that turns s-expressions into :class:`~repro.smtlib.script.Script`
commands and :class:`~repro.smtlib.terms.Term` objects.

Supported commands: ``set-logic``, ``set-info``, ``set-option`` (ignored),
``declare-fun`` (zero arity), ``declare-const``, ``define-fun`` (expanded
as a macro), ``assert``, ``check-sat``, ``get-model``, ``exit``, and the
incremental assertion-stack commands ``push``, ``pop``, and
``reset-assertions``. Scope balance is validated statically: a ``(pop n)``
that would drop below the root scope is a :class:`ParseError`, not a
crash at solve time. Declarations are global in this fragment -- they
survive ``pop`` and ``reset-assertions`` (the common solver behaviour
under ``:global-declarations``).

Supported term syntax covers the quantifier-free Core, Int, Real, BV, and
FP fragments the paper uses, including indexed identifiers such as
``(_ bv855 12)`` and ``((_ extract 11 0) x)``, plus ``let`` bindings.
"""

from fractions import Fraction

from repro.errors import ParseError, SmtLibError
from repro.smtlib import builders as build
from repro.smtlib.lexer import (
    DECIMAL,
    KEYWORD,
    LPAREN,
    NUMERAL,
    RPAREN,
    STRING,
    SYMBOL,
    tokenize,
)
from repro.smtlib.script import Command, Script
from repro.smtlib.sorts import BOOL, INT, REAL, bv_sort, fp_sort
from repro.smtlib.terms import Op
from repro.smtlib.values import FPValue


class SExpr:
    """A parenthesized group of tokens and sub-groups."""

    __slots__ = ("items", "line", "column")

    def __init__(self, items, line, column):
        self.items = items
        self.line = line
        self.column = column


def _read_sexprs(tokens):
    """Group a token list into a list of top-level s-expressions."""
    result = []
    stack = []
    for token in tokens:
        if token.kind == LPAREN:
            stack.append(SExpr([], token.line, token.column))
        elif token.kind == RPAREN:
            if not stack:
                raise ParseError("unbalanced ')'", token.line, token.column)
            done = stack.pop()
            if stack:
                stack[-1].items.append(done)
            else:
                result.append(done)
        else:
            if stack:
                stack[-1].items.append(token)
            else:
                result.append(token)
    if stack:
        raise ParseError("unbalanced '('", stack[-1].line, stack[-1].column)
    return result


def _is_symbol(node, text=None):
    return (
        not isinstance(node, SExpr)
        and node.kind == SYMBOL
        and (text is None or node.text == text)
    )


class _TermParser:
    """Turns term s-expressions into hash-consed terms."""

    def __init__(self, declarations, macros):
        self._declarations = declarations
        self._macros = macros

    # -- entry point ---------------------------------------------------

    def parse(self, node, env=None):
        env = env or {}
        return self._term(node, env)

    # -- helpers -------------------------------------------------------

    def _error(self, message, node):
        line = getattr(node, "line", None)
        column = getattr(node, "column", None)
        raise ParseError(message, line, column)

    def _term(self, node, env):
        if isinstance(node, SExpr):
            return self._application(node, env)
        return self._atom(node, env)

    def _atom(self, token, env):
        if token.kind == NUMERAL:
            return build.IntConst(int(token.text))
        if token.kind == DECIMAL:
            whole, _, frac = token.text.partition(".")
            denominator = 10 ** len(frac)
            return build.RealConst(Fraction(int(whole) * denominator + int(frac or 0), denominator))
        if token.kind == SYMBOL:
            text = token.text
            if text == "true":
                return build.TRUE
            if text == "false":
                return build.FALSE
            if len(text) > 1 and text[0] == "-" and text[1:].isdigit():
                # Strict SMT-LIB writes (- 5); accept the common -5 too.
                return build.IntConst(int(text))
            if text.startswith("#b"):
                bits = text[2:]
                return build.BitVecConst(int(bits, 2), len(bits))
            if text.startswith("#x"):
                digits = text[2:]
                return build.BitVecConst(int(digits, 16), 4 * len(digits))
            if text in env:
                return env[text]
            if text in self._macros:
                params, body = self._macros[text]
                if params:
                    self._error(f"macro {text} expects {len(params)} arguments", token)
                return body
            sort = self._declarations.get(text)
            if sort is None:
                self._error(f"undeclared symbol {text!r}", token)
            return build.Var(text, sort)
        self._error(f"unexpected token {token.text!r} in term", token)

    # -- indexed identifiers -------------------------------------------

    def _indexed_literal(self, node):
        """Handle ``(_ bvN w)``, ``(_ +oo eb sb)`` and friends.

        Returns a term, or None if the indexed form is an operator head
        (like ``(_ extract h l)``) rather than a literal.
        """
        items = node.items
        head = items[1].text
        if head.startswith("bv") and head[2:].isdigit():
            width = int(items[2].text)
            return build.BitVecConst(int(head[2:]), width)
        if head in ("+oo", "-oo", "+zero", "-zero", "NaN"):
            eb = int(items[2].text)
            sb = int(items[3].text)
            sign = 1 if head.startswith("-") else 0
            if head == "NaN":
                return build.FPConst(FPValue.nan(eb, sb))
            if head.endswith("oo"):
                return build.FPConst(FPValue.inf(eb, sb, sign))
            return build.FPConst(FPValue.zero(eb, sb, sign))
        return None

    def _application(self, node, env):
        items = node.items
        if not items:
            self._error("empty application", node)
        head = items[0]

        # Indexed literal or indexed operator in head position.
        if _is_symbol(head, "_"):
            literal = self._indexed_literal(node)
            if literal is not None:
                return literal
            self._error(f"unsupported indexed identifier {items[1].text!r}", node)

        if isinstance(head, SExpr):
            return self._indexed_application(node, env)

        name = head.text
        if name == "let":
            return self._let(node, env)
        if name in self._macros:
            return self._macro_call(name, items[1:], env, node)
        args = [self._term(item, env) for item in items[1:]]
        return self._dispatch(name, args, node)

    def _indexed_application(self, node, env):
        inner = node.items[0]
        if not (inner.items and _is_symbol(inner.items[0], "_")):
            self._error("expected an indexed operator", node)
        op_name = inner.items[1].text
        args = [self._term(item, env) for item in node.items[1:]]
        if op_name == "extract":
            hi = int(inner.items[2].text)
            lo = int(inner.items[3].text)
            return build.Extract(hi, lo, args[0])
        if op_name == "zero_extend":
            return build.ZeroExtend(int(inner.items[2].text), args[0])
        if op_name == "sign_extend":
            return build.SignExtend(int(inner.items[2].text), args[0])
        if op_name == "to_fp":
            # ((_ to_fp eb sb) RNE <real literal>) -- only literal args,
            # which is what our own printer emits.
            eb = int(inner.items[2].text)
            sb = int(inner.items[3].text)
            value_term = args[-1]
            if not value_term.is_const:
                self._error("to_fp is only supported on literals", node)
            from repro.fp.softfloat import fp_from_fraction

            return build.FPConst(fp_from_fraction(Fraction(value_term.value), eb, sb))
        self._error(f"unsupported indexed operator {op_name!r}", node)

    def _let(self, node, env):
        if len(node.items) != 3 or not isinstance(node.items[1], SExpr):
            self._error("malformed let", node)
        new_env = dict(env)
        for binding in node.items[1].items:
            if not isinstance(binding, SExpr) or len(binding.items) != 2:
                self._error("malformed let binding", node)
            name = binding.items[0].text
            # Parallel let: bindings see the outer environment.
            new_env[name] = self._term(binding.items[1], env)
        return self._term(node.items[2], new_env)

    def _macro_call(self, name, arg_nodes, env, node):
        params, body = self._macros[name]
        if len(arg_nodes) != len(params):
            self._error(
                f"macro {name} expects {len(params)} arguments, got {len(arg_nodes)}", node
            )
        values = {
            param: self._term(arg, env) for param, arg in zip(params, arg_nodes)
        }
        from repro.smtlib.terms import map_terms

        def substitute(term, new_args):
            if term.is_var and term.name in values:
                return values[term.name]
            if not term.args:
                return term
            from repro.smtlib.terms import Term

            return Term(term.op, tuple(new_args), term.payload, term.sort)

        return map_terms([body], substitute)[0]

    # -- operator dispatch ----------------------------------------------

    def _dispatch(self, name, args, node):
        try:
            return self._dispatch_checked(name, args, node)
        except SmtLibError:
            raise
        except (ValueError, TypeError) as exc:
            self._error(f"bad application of {name}: {exc}", node)

    def _dispatch_checked(self, name, args, node):
        if name == "not":
            return build.Not(args[0])
        if name == "and":
            return build.And(*args)
        if name == "or":
            return build.Or(*args)
        if name == "xor":
            return build.Xor(*args)
        if name == "=>":
            result = args[-1]
            for antecedent in reversed(args[:-1]):
                result = build.Implies(antecedent, result)
            return result
        if name == "ite":
            return build.Ite(args[0], args[1], args[2])
        if name == "=":
            if len(args) == 2:
                return build.Eq(args[0], args[1])
            return build.And(*[build.Eq(a, b) for a, b in zip(args, args[1:])])
        if name == "distinct":
            return build.Distinct(*args)
        if name == "+":
            return build.Add(*args)
        if name == "-":
            if len(args) == 1:
                return self._negate(args[0])
            return build.Sub(*args)
        if name == "*":
            return build.Mul(*args)
        if name == "abs":
            return build.Abs(args[0])
        if name == "div":
            return build.IntDiv(args[0], args[1])
        if name == "mod":
            return build.Mod(args[0], args[1])
        if name == "/":
            left, right = args
            # SMT-LIB allows integer numerals inside real division.
            if left.sort is INT and left.is_const:
                left = build.RealConst(left.value)
            if right.sort is INT and right.is_const:
                right = build.RealConst(right.value)
            return build.RealDiv(left, right)
        if name in ("<=", "<", ">=", ">"):
            builder = {
                "<=": build.Le,
                "<": build.Lt,
                ">=": build.Ge,
                ">": build.Gt,
            }[name]
            args = self._coerce_mixed(args)
            if len(args) == 2:
                return builder(args[0], args[1])
            return build.And(*[builder(a, b) for a, b in zip(args, args[1:])])
        if name == "to_real":
            return build.ToReal(args[0])
        if name == "to_int":
            return build.ToInt(args[0])
        bv_result = self._dispatch_bv(name, args)
        if bv_result is not None:
            return bv_result
        fp_result = self._dispatch_fp(name, args)
        if fp_result is not None:
            return fp_result
        self._error(f"unknown operator {name!r}", node)

    def _negate(self, arg):
        """Unary minus; folds literals so printing round-trips exactly."""
        if arg.is_const and arg.sort is INT:
            return build.IntConst(-arg.value)
        if arg.is_const and arg.sort is REAL:
            return build.RealConst(-arg.value)
        return build.Neg(arg)

    def _coerce_mixed(self, args):
        """Promote integer literals in real comparisons, per SMT-LIB."""
        if any(a.sort is REAL for a in args) and any(a.sort is INT for a in args):
            promoted = []
            for arg in args:
                if arg.sort is INT and arg.is_const:
                    promoted.append(build.RealConst(arg.value))
                elif arg.sort is INT:
                    promoted.append(build.ToReal(arg))
                else:
                    promoted.append(arg)
            return promoted
        return args

    _BV_BINARY_NAMES = {
        "bvand": Op.BVAND,
        "bvor": Op.BVOR,
        "bvxor": Op.BVXOR,
        "bvadd": Op.BVADD,
        "bvsub": Op.BVSUB,
        "bvmul": Op.BVMUL,
        "bvudiv": Op.BVUDIV,
        "bvsdiv": Op.BVSDIV,
        "bvurem": Op.BVUREM,
        "bvsrem": Op.BVSREM,
        "bvsmod": Op.BVSMOD,
        "bvshl": Op.BVSHL,
        "bvlshr": Op.BVLSHR,
        "bvashr": Op.BVASHR,
    }

    _BV_COMPARE_NAMES = {
        "bvult": Op.BVULT,
        "bvule": Op.BVULE,
        "bvugt": Op.BVUGT,
        "bvuge": Op.BVUGE,
        "bvslt": Op.BVSLT,
        "bvsle": Op.BVSLE,
        "bvsgt": Op.BVSGT,
        "bvsge": Op.BVSGE,
    }

    _BV_OVERFLOW_NAMES = {
        "bvsaddo": Op.BVSADDO,
        "bvuaddo": Op.BVUADDO,
        "bvssubo": Op.BVSSUBO,
        "bvusubo": Op.BVUSUBO,
        "bvsmulo": Op.BVSMULO,
        "bvumulo": Op.BVUMULO,
        "bvsdivo": Op.BVSDIVO,
    }

    def _dispatch_bv(self, name, args):
        if name in self._BV_BINARY_NAMES:
            op = self._BV_BINARY_NAMES[name]
            result = args[0]
            for arg in args[1:]:
                result = build.bv_binary(op, result, arg)
            return result
        if name in self._BV_COMPARE_NAMES:
            return build.bv_compare(self._BV_COMPARE_NAMES[name], args[0], args[1])
        if name in self._BV_OVERFLOW_NAMES:
            return build.bv_overflow(self._BV_OVERFLOW_NAMES[name], args[0], args[1])
        if name == "bvnot":
            return build.BVNot(args[0])
        if name == "bvneg":
            return build.BVNeg(args[0])
        if name == "bvabs":
            return build.BVAbs(args[0])
        if name == "bvnego":
            return build.BVNegO(args[0])
        if name == "concat":
            result = args[0]
            for arg in args[1:]:
                result = build.Concat(result, arg)
            return result
        return None

    _FP_BINARY_NAMES = {
        "fp.add": Op.FP_ADD,
        "fp.sub": Op.FP_SUB,
        "fp.mul": Op.FP_MUL,
        "fp.div": Op.FP_DIV,
    }

    _FP_COMPARE_NAMES = {
        "fp.leq": Op.FP_LEQ,
        "fp.lt": Op.FP_LT,
        "fp.geq": Op.FP_GEQ,
        "fp.gt": Op.FP_GT,
        "fp.eq": Op.FP_EQ,
    }

    def _dispatch_fp(self, name, args):
        if name in self._FP_BINARY_NAMES:
            # The first argument is the rounding mode; only RNE is
            # supported and it parses as a variable-free symbol below.
            operands = [a for a in args if a is not _RNE_MARKER]
            return build.fp_binary(self._FP_BINARY_NAMES[name], operands[0], operands[1])
        if name in self._FP_COMPARE_NAMES:
            return build.fp_compare(self._FP_COMPARE_NAMES[name], args[0], args[1])
        if name == "fp.neg":
            return build.FPNeg(args[0])
        if name == "fp.abs":
            return build.FPAbs(args[0])
        if name == "fp.isNaN":
            return build.FPIsNaN(args[0])
        if name == "fp.isInfinite":
            return build.FPIsInf(args[0])
        return None


#: Sentinel produced when the RNE rounding-mode symbol is parsed.
_RNE_MARKER = object()


def _parse_sort(node):
    if isinstance(node, SExpr):
        items = node.items
        if len(items) == 3 and _is_symbol(items[0], "_") and _is_symbol(items[1], "BitVec"):
            return bv_sort(int(items[2].text))
        if (
            len(items) == 4
            and _is_symbol(items[0], "_")
            and _is_symbol(items[1], "FloatingPoint")
        ):
            return fp_sort(int(items[2].text), int(items[3].text))
        raise ParseError("unsupported sort", node.line, node.column)
    if node.text == "Bool":
        return BOOL
    if node.text == "Int":
        return INT
    if node.text == "Real":
        return REAL
    if node.text in ("Float16", "Float32", "Float64", "Float128"):
        widths = {"Float16": (5, 11), "Float32": (8, 24), "Float64": (11, 53), "Float128": (15, 113)}
        return fp_sort(*widths[node.text])
    raise ParseError(f"unknown sort {node.text!r}", node.line, node.column)


class _RneAwareTermParser(_TermParser):
    """Extends the term parser to accept the RNE rounding-mode symbol."""

    def _atom(self, token, env):
        if token.kind == SYMBOL and token.text in ("RNE", "roundNearestTiesToEven"):
            return _RNE_MARKER
        return super()._atom(token, env)


def _scope_count(sexpr, name):
    """The numeral argument of ``(push n)`` / ``(pop n)`` (default 1)."""
    if len(sexpr.items) == 1:
        return 1
    arg = sexpr.items[1]
    if isinstance(arg, SExpr) or arg.kind != NUMERAL:
        raise ParseError(f"{name} takes a numeral", sexpr.line, sexpr.column)
    return int(arg.text)


def parse_script(text):
    """Parse SMT-LIB source text into a :class:`Script`."""
    sexprs = _read_sexprs(tokenize(text))
    script = Script()
    macros = {}
    depth = 0
    parser = _RneAwareTermParser(script.declarations, macros)
    for sexpr in sexprs:
        if not isinstance(sexpr, SExpr) or not sexpr.items:
            raise ParseError("expected a command", getattr(sexpr, "line", None))
        head = sexpr.items[0]
        if not _is_symbol(head):
            raise ParseError("expected a command name", sexpr.line, sexpr.column)
        name = head.text
        if name == "set-logic":
            script.logic = sexpr.items[1].text
            script.commands.append(Command(name, script.logic))
        elif name in ("set-info", "set-option"):
            script.commands.append(Command("set-info", "", ""))
        elif name in ("declare-fun", "declare-const"):
            symbol = sexpr.items[1].text
            if name == "declare-fun":
                arity = sexpr.items[2]
                if not isinstance(arity, SExpr) or arity.items:
                    raise ParseError(
                        "only zero-arity declare-fun is supported", sexpr.line, sexpr.column
                    )
                sort = _parse_sort(sexpr.items[3])
            else:
                sort = _parse_sort(sexpr.items[2])
            script.declarations[symbol] = sort
            script.commands.append(Command(name, symbol, sort))
        elif name == "define-fun":
            symbol = sexpr.items[1].text
            params_node = sexpr.items[2]
            params = []
            param_env = {}
            for param in params_node.items:
                param_name = param.items[0].text
                param_sort = _parse_sort(param.items[1])
                params.append(param_name)
                param_env[param_name] = build.Var(param_name, param_sort)
            body = parser.parse(sexpr.items[4], param_env)
            macros[symbol] = (params, body)
        elif name == "assert":
            term = parser.parse(sexpr.items[1])
            script.add_assertion(term)
            script.commands.append(Command("assert", term))
        elif name == "push":
            count = _scope_count(sexpr, "push")
            depth += count
            script.commands.append(Command("push", count))
        elif name == "pop":
            count = _scope_count(sexpr, "pop")
            if count > depth:
                raise ParseError(
                    f"pop {count} below assertion stack depth {depth}",
                    sexpr.line,
                    sexpr.column,
                )
            depth -= count
            script.commands.append(Command("pop", count))
        elif name == "reset-assertions":
            depth = 0
            script.commands.append(Command("reset-assertions"))
        elif name in ("check-sat", "get-model", "exit", "get-info", "get-value"):
            script.commands.append(Command(name))
        else:
            raise ParseError(f"unsupported command {name!r}", sexpr.line, sexpr.column)
    if script.logic is None:
        script.logic = script.infer_logic()
    return script


def parse_term(text, declarations=None):
    """Parse a single term given a name->sort declaration mapping."""
    sexprs = _read_sexprs(tokenize(text))
    if len(sexprs) != 1:
        raise ParseError("expected exactly one term")
    parser = _RneAwareTermParser(dict(declarations or {}), {})
    return parser.parse(sexprs[0])
