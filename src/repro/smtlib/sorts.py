"""SMT-LIB sorts.

The reproduction supports the sorts the paper works with: ``Bool``,
``Int``, ``Real``, fixed-width bitvectors ``(_ BitVec n)``, and
floating-point sorts ``(_ FloatingPoint eb sb)``.

Sorts are immutable and interned: two sorts are equal iff they are the same
object, which keeps sort comparison cheap in the term layer.
"""

from repro.errors import SortError


class Sort:
    """Base class for all sorts.

    Attributes:
        name: the SMT-LIB spelling of the sort.
    """

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name

    @property
    def is_bool(self):
        return self is BOOL

    @property
    def is_int(self):
        return self is INT

    @property
    def is_real(self):
        return self is REAL

    @property
    def is_bv(self):
        return isinstance(self, BVSort)

    @property
    def is_fp(self):
        return isinstance(self, FPSort)

    @property
    def is_numeric(self):
        """True for the four arithmetic kinds (Int, Real, BV, FP)."""
        return self.is_int or self.is_real or self.is_bv or self.is_fp

    @property
    def is_bounded(self):
        """True if the sort has finitely many values (Definition 3.3)."""
        return self.is_bool or self.is_bv or self.is_fp


class BVSort(Sort):
    """The sort ``(_ BitVec width)`` of fixed-width bitvectors."""

    __slots__ = ("width",)

    def __init__(self, width):
        if width < 1:
            raise SortError(f"bitvector width must be positive, got {width}")
        super().__init__(f"(_ BitVec {width})")
        self.width = width


class FPSort(Sort):
    """The sort ``(_ FloatingPoint eb sb)`` of IEEE-754 values.

    Attributes:
        eb: exponent width in bits.
        sb: significand width in bits, including the hidden bit.
    """

    __slots__ = ("eb", "sb")

    def __init__(self, eb, sb):
        if eb < 2 or sb < 2:
            raise SortError(f"floating-point widths must be >= 2, got eb={eb} sb={sb}")
        super().__init__(f"(_ FloatingPoint {eb} {sb})")
        self.eb = eb
        self.sb = sb

    @property
    def width(self):
        """Total bit width of the packed representation."""
        return 1 + self.eb + self.sb - 1


BOOL = Sort("Bool")
INT = Sort("Int")
REAL = Sort("Real")

_BV_CACHE = {}
_FP_CACHE = {}


def bv_sort(width):
    """Return the interned bitvector sort of the given width."""
    sort = _BV_CACHE.get(width)
    if sort is None:
        sort = BVSort(width)
        _BV_CACHE[width] = sort
    return sort


def fp_sort(eb, sb):
    """Return the interned floating-point sort with the given widths."""
    key = (eb, sb)
    sort = _FP_CACHE.get(key)
    if sort is None:
        sort = FPSort(eb, sb)
        _FP_CACHE[key] = sort
    return sort


#: IEEE-754 binary16 (half precision).
FLOAT16 = fp_sort(5, 11)
#: IEEE-754 binary32 (single precision).
FLOAT32 = fp_sort(8, 24)
#: IEEE-754 binary64 (double precision).
FLOAT64 = fp_sort(11, 53)
#: IEEE-754 binary128 (quad precision).
FLOAT128 = fp_sort(15, 113)

#: The standard widths SLOT supports; real-side widths are rounded up to
#: one of these before SLOT is applied (Section 5.3 of the paper).
STANDARD_FP_SORTS = (FLOAT16, FLOAT32, FLOAT64, FLOAT128)
