"""The ``staub`` command-line tool.

Mirrors the paper's tool surface:

- ``staub transform FILE``: print the bounded SMT-LIB translation (the
  paper's output flag for use with external solvers), with ``--width``
  overriding the abstract-interpretation choice.
- ``staub solve FILE``: solve the constraint directly with the native
  solver stack (``--profile zorro|corvus``). Incremental scripts
  (push/pop/reset-assertions or several ``check-sat``) run as one
  persistent session and print one verdict line per ``check-sat``.
- ``staub arbitrage FILE``: run the full underapproximate-then-verify
  pipeline and report the Fig. 6 case, stage costs, and the model.
  ``--refine`` widens and retries on bounded-unsat;
  ``--refine-incremental`` does so on one persistent SAT session with
  core-guided widening (``--growth``, ``--max-width``, ``--max-rounds``
  shape the schedule, ``--width`` pins the first round).
- ``staub analyze FILE``: bound inference only (widths report).
- ``staub optimize FILE``: apply the SLOT-style passes to a bounded
  constraint and print the result.
- ``staub portfolio FILE``: race the unbounded original (both solver
  profiles) against the STAUB translation; deterministic interleaved
  slices by default, real processes with ``--jobs N``.
- ``staub cache stats/clear PATH``: inspect or reset a persistent
  solve cache (built by ``solve --cache`` / ``run_all --cache``); a
  directory path opens a sharded store.
- ``staub serve``: a long-running multi-tenant solve server speaking
  newline-delimited JSON on stdio (or ``--socket PATH``), with bounded
  admission, per-tenant budgets, worker crash retry, and a sharded
  persistent cache (``--cache DIR --cache-shards N``).
- ``staub profile TRACE.jsonl``: per-stage breakdown of a telemetry
  trace recorded with ``--trace``; ``--top N`` caps the table,
  ``--critical-path`` prints the heaviest span chain, and
  ``--flamegraph OUT.folded`` exports collapsed stacks.
- ``staub bench --suite NAME``: run a deterministic benchmark suite
  and write a two-section ``BENCH_<suite>.json`` artifact;
  ``--compare BASELINE.json`` exits nonzero on any deterministic
  regression.

Observability flags (``solve`` and ``arbitrage``): ``--trace FILE.jsonl``
writes one JSON span per pipeline stage on the deterministic virtual
clock; ``--stats`` prints the uniform solver counters after the result.
"""

import argparse
import os
import sys

from repro import guard, telemetry
from repro.cache import SolveCache
from repro.guard import chaos
from repro.core.inference import infer_bounds
from repro.core.pipeline import Staub
from repro.errors import ReproError
from repro.evaluation.runner import TIMEOUT_WORK, to_virtual_seconds
from repro.slot import optimize_script
from repro.smtlib import parse_script, print_script
from repro.solver import solve_script
from repro.telemetry.profile import load_trace, render_profile
from repro.version import __version__


def _read_script(path):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_script(handle.read())


def _format_model(model):
    if not model:
        return "  (empty model)"
    lines = []
    for name in sorted(model):
        lines.append(f"  {name} = {model[name]}")
    return "\n".join(lines)


def _cmd_transform(args):
    script = _read_script(args.file)
    staub = Staub(width_strategy=args.width if args.width else "absint")
    transformed, inference, _ = staub.transform(script)
    print(f"; theory: {inference.theory}, assumption x = {inference.assumption}, "
          f"[S] = {inference.root}, chosen width = {transformed.width}")
    print(print_script(transformed.script), end="")
    return 0


def _print_stats(stats):
    print("stats:")
    for key in sorted(stats):
        print(f"  {key} = {stats[key]}")


def _run_session_script(script, args, cache):
    """``staub solve`` on an incremental script: one persistent session."""
    from repro.solver.session import run_script_session

    def _replay():
        return run_script_session(
            script, profile=args.profile, budget=args.budget, cache=cache
        )

    if args.deadline is not None:
        governor = guard.ResourceBudget(work=None, deadline=args.deadline)
        with guard.activate(governor):
            results, session = _replay()
    else:
        results, session = _replay()
    for result in results:
        print(result.status)
    counters = session.counters
    print(
        f"; session: {counters['check_sat']} checks "
        f"({counters['backend_checks']} incremental, "
        f"{counters['fallback_checks']} fallback, "
        f"{counters['cache_hits']} cached) "
        f"pushes={counters['push']} pops={counters['pop']} "
        f"work={counters['work']} "
        f"(~{to_virtual_seconds(counters['work']):.2f} virtual seconds)"
    )
    if args.stats and results:
        _print_stats(results[-1].stats)
    if cache is not None:
        cache.save()
    return 0


def _cmd_solve(args):
    script = _read_script(args.file)
    cache = SolveCache(path=args.cache) if args.cache else None
    if script.is_incremental:
        return _run_session_script(script, args, cache)
    governor = None
    if args.deadline is not None:
        governor = guard.ResourceBudget(work=args.budget, deadline=args.deadline)
    result = solve_script(
        script, budget=args.budget, profile=args.profile, cache=cache,
        governor=governor,
    )
    print(result.status)
    print(f"; engine={result.engine} work={result.work} "
          f"(~{to_virtual_seconds(result.work):.2f} virtual seconds)"
          + (" [cached]" if result.cached else ""))
    if result.is_sat:
        print(_format_model(result.model))
    if args.stats:
        _print_stats(result.stats)
    if cache is not None:
        cache.save()
    return 0


def _cmd_portfolio(args):
    from repro.portfolio.scheduler import InterleavingScheduler, parallel_race
    from repro.portfolio.tasks import default_tasks

    script = _read_script(args.file)
    tasks = default_tasks()
    if args.jobs > 1:
        outcome = parallel_race(tasks, script, budget=args.budget, jobs=args.jobs)
        mode = f"parallel x{args.jobs}"
    else:
        scheduler = InterleavingScheduler(
            tasks, budget=args.budget, initial_slice=args.slice_work
        )
        outcome = scheduler.run(script)
        mode = "deterministic interleaving"
    winner = outcome.winner.lane if outcome.winner is not None else "(none)"
    print(outcome.status)
    print(f"; winner={winner} mode={mode} rounds={outcome.rounds}")
    print(f"; observed work={outcome.observed_work} "
          f"(~{to_virtual_seconds(outcome.observed_work):.2f} virtual seconds), "
          f"total across lanes={outcome.total_work}")
    if outcome.status == "sat" and outcome.model is not None:
        print(_format_model(outcome.model))
    return 0


def _cmd_cache_stats(args):
    from repro.cache import open_cache

    cache = open_cache(args.path)
    stats = cache.stats()
    print(f"cache: {args.path}")
    print(f"  entries = {stats['entries']}")
    print(f"  cores = {stats['cores']}")
    if "shards" in stats:
        per_shard = ", ".join(str(count) for count in stats["per_shard_entries"])
        print(f"  shards = {stats['shards']} (entries per shard: {per_shard})")
    for field in ("hits", "misses", "evictions", "core_hits"):
        label = field.replace("_", " ")
        print(f"  lifetime {label} = {stats[f'lifetime_{field}']}")
    misses = stats["lifetime_misses"]
    if misses:
        rate = stats["lifetime_core_hits"] / misses
        print(f"  core-hit rate = {rate:.1%} of misses")
    return 0


def _cmd_cache_clear(args):
    from repro.cache import open_cache

    cache = open_cache(args.path)
    entries = len(cache)
    cores = cache.stats()["cores"]
    # clear() rolls session counters into lifetime and persists the
    # emptied store atomically itself (the store has a path).
    cache.clear()
    print(f"cleared {entries} entries and {cores} cores from {args.path}")
    return 0


def _cmd_serve(args):
    from repro.cache import open_cache
    from repro.service import SolveService, serve_socket, serve_stream

    cache = None
    if args.cache:
        cache = open_cache(args.cache, shards=args.cache_shards)
    service = SolveService(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        profile=args.profile,
        budget=args.budget,
        timeout=args.timeout,
        global_work=args.global_work,
        global_deadline=args.global_deadline,
        tenant_work=args.tenant_work,
        cache=cache,
        flush_every=args.flush_every,
    )
    mode = f"{args.workers} workers" if args.workers else "inline (deterministic)"
    if args.socket:
        print(f"staub serve: listening on {args.socket} [{mode}]", file=sys.stderr)
        abandoned = serve_socket(service, args.socket)
    else:
        print(f"staub serve: reading NDJSON from stdin [{mode}]", file=sys.stderr)
        abandoned = serve_stream(service, sys.stdin, sys.stdout)
    if abandoned:
        print(f"staub serve: abandoned {abandoned} in-flight requests",
              file=sys.stderr)
        return 1
    return 0


def _cmd_arbitrage(args):
    script = _read_script(args.file)
    if args.refine or args.refine_incremental:
        return _run_refinement(script, args)
    staub = Staub(width_strategy=args.width if args.width else "absint")
    report = staub.run(script, budget=args.budget)
    print(f"case: {report.case}")
    print(
        f"width: {report.width}  t_trans={report.t_trans} "
        f"t_post={report.t_post} t_check={report.t_check} "
        f"total={report.total_work}"
    )
    if report.model is not None:
        print("verified model:")
        print(_format_model(report.model))
    elif report.case != "verified-sat":
        print("reverting to the original constraint (no speedup)")
    if args.stats:
        _print_stats(report.stats)
    return 0


def _run_refinement(script, args):
    from repro.solver import refine_script

    cache = SolveCache(path=args.cache) if args.cache else None
    report = refine_script(
        script,
        budget=args.budget,
        incremental=args.refine_incremental,
        growth_factor=args.growth,
        max_rounds=args.max_rounds,
        max_width=args.max_width,
        initial_width=args.width if args.width else None,
        headroom=args.headroom,
        cache=cache,
    )
    print(f"case: {report.case}")
    schedule = ", ".join(f"{width}:{case}" for width, case in report.rounds)
    print(f"mode: {report.mode}  rounds: [{schedule}]")
    print(
        f"total work: {report.total_work}  cache hits: {report.cache_hits}  "
        f"clauses reused: {report.clauses_reused}  "
        f"core vars widened: {report.core_widened}"
    )
    if report.budget_exhausted:
        print("budget exhausted: refinement stopped with rounds pending")
    if report.model is not None:
        print("verified model:")
        print(_format_model(report.model))
    elif report.case != "verified-sat":
        print("reverting to the original constraint (no speedup)")
    if args.stats:
        _print_stats(report.final.stats)
    if cache is not None:
        cache.save()
    return 0


def _cmd_profile(args):
    from repro.telemetry.analyze import render_critical_path, render_flamegraph

    try:
        spans = load_trace(args.file)
    except ValueError as error:
        print(f"error: {args.file} is not a JSONL trace ({error})", file=sys.stderr)
        return 1
    if not spans:
        print(f"error: no spans in {args.file}", file=sys.stderr)
        return 1
    print(render_profile(spans, top=args.top))
    if args.critical_path:
        print()
        print(render_critical_path(spans))
    if args.flamegraph:
        folded = render_flamegraph(spans)
        if args.flamegraph == "-":
            print()
            print(folded)
        else:
            with open(args.flamegraph, "w", encoding="utf-8") as handle:
                handle.write(folded + "\n")
            print(f"wrote {args.flamegraph} (collapsed stacks)")
    return 0


def _cmd_bench(args):
    from repro.bench import (
        available_suites,
        compare_payloads,
        default_artifact_name,
        render_comparison,
        run_suite,
        write_artifact,
    )
    from repro.bench.harness import load_artifact

    if args.list:
        for name in available_suites():
            print(name)
        return 0
    if args.replay:
        payload = load_artifact(args.replay)
    else:
        if not args.suite:
            print("staub: error: bench needs --suite, --replay, or --list",
                  file=sys.stderr)
            return 2
        try:
            payload = run_suite(
                args.suite,
                repeats=args.repeats,
                timing=not args.no_wall,
                progress=lambda line: print(line, file=sys.stderr),
            )
        except KeyError as error:
            print(f"staub: error: {error.args[0]}", file=sys.stderr)
            return 2
        out = args.out or default_artifact_name(args.suite)
        write_artifact(payload, out)
        print(f"wrote {out}", file=sys.stderr)

    deterministic = payload["deterministic"]
    print(f"suite: {payload['suite']}  cases: {deterministic['totals']['cases']}  "
          f"work: {deterministic['totals']['work']}")
    wall = payload.get("wall_clock", {})
    if wall.get("cases"):
        print(f"wall: {wall['seconds_total']:.3f}s median-of-{wall['repeats']} "
              "(informational)")

    if args.compare:
        baseline = load_artifact(args.compare)
        regressions, warnings = compare_payloads(
            payload, baseline, wall_tolerance=args.wall_tolerance
        )
        print(render_comparison(regressions, warnings))
        if regressions:
            return 1
    return 0


def _cmd_analyze(args):
    script = _read_script(args.file)
    inference = infer_bounds(script)
    print(f"theory: {inference.theory}")
    print(f"largest constant: {inference.largest_constant}")
    print(f"variable assumption x: {inference.assumption}")
    print(f"inferred [S]: {inference.root}")
    return 0


def _cmd_optimize(args):
    script = _read_script(args.file)
    optimized, statistics = optimize_script(script)
    print(f"; pass statistics: {statistics}")
    print(print_script(optimized), end="")
    return 0


def _cmd_reduce(args):
    from repro.core.width_reduction import reduce_and_solve

    script = _read_script(args.file)
    result = reduce_and_solve(script, args.width, budget=args.budget)
    print(f"case: {result.case} "
          f"({result.original_width} -> {result.reduced_width} bits, "
          f"work {result.work})")
    if result.usable:
        print("verified model (original width):")
        print(_format_model(result.model))
    return 0


def _add_chaos_flag(subparser):
    subparser.add_argument(
        "--chaos",
        default=None,
        metavar="SEED:RATE",
        help="deterministic fault injection (e.g. 1234:0.1); verdicts are "
        "unchanged, only timings and lane winners may differ",
    )


def _add_telemetry_flags(subparser):
    subparser.add_argument(
        "--trace",
        default=None,
        metavar="FILE.jsonl",
        help="write a JSONL span trace (deterministic virtual clock)",
    )
    subparser.add_argument(
        "--stats",
        action="store_true",
        help="print the uniform solver counters after the result",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="staub",
        description="SMT theory arbitrage: unbounded -> bounded constraint transformation",
    )
    parser.add_argument(
        "--version", action="version", version=f"staub {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    transform = sub.add_parser("transform", help="print the bounded translation")
    transform.add_argument("file")
    transform.add_argument("--width", type=int, default=None)
    transform.set_defaults(func=_cmd_transform)

    solve = sub.add_parser("solve", help="solve with the native solver")
    solve.add_argument("file")
    solve.add_argument("--profile", default="zorro", choices=("zorro", "corvus"))
    solve.add_argument("--budget", type=int, default=TIMEOUT_WORK)
    solve.add_argument(
        "--cache",
        default=None,
        metavar="FILE.json",
        help="persistent solve cache; repeated solves of equivalent "
        "scripts are answered without running an engine",
    )
    solve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline; exhaustion degrades to a structured "
        "unknown (deadline runs trade determinism for punctuality)",
    )
    _add_chaos_flag(solve)
    _add_telemetry_flags(solve)
    solve.set_defaults(func=_cmd_solve)

    portfolio = sub.add_parser(
        "portfolio",
        help="race original + STAUB-translated configurations, first answer wins",
    )
    portfolio.add_argument("file")
    portfolio.add_argument("--budget", type=int, default=TIMEOUT_WORK)
    portfolio.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="1 = deterministic interleaved slices; N>1 = real processes",
    )
    portfolio.add_argument(
        "--slice",
        dest="slice_work",
        type=int,
        default=4096,
        help="first-round work slice for the deterministic scheduler",
    )
    _add_chaos_flag(portfolio)
    _add_telemetry_flags(portfolio)
    portfolio.set_defaults(func=_cmd_portfolio)

    cache = sub.add_parser("cache", help="inspect or reset a persistent solve cache")
    cache_sub = cache.add_subparsers(dest="cache_command")
    cache_stats = cache_sub.add_parser("stats", help="entry and hit/miss totals")
    cache_stats.add_argument("path")
    cache_stats.set_defaults(func=_cmd_cache_stats)
    cache_clear = cache_sub.add_parser("clear", help="drop every entry")
    cache_clear.add_argument("path")
    cache_clear.set_defaults(func=_cmd_cache_clear)

    from repro.service.server import DEFAULT_FLUSH_EVERY, DEFAULT_QUEUE_CAPACITY

    serve = sub.add_parser(
        "serve",
        help="long-running multi-tenant solve server (NDJSON on stdio or a socket)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes; 0 runs requests inline (deterministic)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=DEFAULT_QUEUE_CAPACITY,
        metavar="N",
        help="admission bound; excess requests answer unknown "
        f"(reason=saturated) immediately (default {DEFAULT_QUEUE_CAPACITY})",
    )
    serve.add_argument("--profile", default="zorro", choices=("zorro", "corvus"))
    serve.add_argument(
        "--budget",
        type=int,
        default=TIMEOUT_WORK,
        help="default per-request work budget (requests may narrow it)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request wall deadline: cooperative cancellation "
        "first, hard worker termination after a grace window",
    )
    serve.add_argument(
        "--global-work",
        type=int,
        default=None,
        metavar="UNITS",
        help="work ceiling across all tenants (the root governor)",
    )
    serve.add_argument(
        "--global-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock lifetime for the whole server",
    )
    serve.add_argument(
        "--tenant-work",
        type=int,
        default=None,
        metavar="UNITS",
        help="per-tenant work ceiling; exhausted tenants are rejected at "
        "admission with reason=tenant_budget",
    )
    serve.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persistent solve cache shared by all tenants; a directory "
        "opens a sharded store",
    )
    serve.add_argument(
        "--cache-shards",
        type=int,
        default=None,
        metavar="N",
        help="shard a new --cache directory N ways (an existing store's "
        "recorded count wins)",
    )
    serve.add_argument(
        "--flush-every",
        type=int,
        default=DEFAULT_FLUSH_EVERY,
        metavar="N",
        help=f"completions between batched cache flushes (default {DEFAULT_FLUSH_EVERY})",
    )
    serve.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="serve a Unix domain socket instead of stdio",
    )
    _add_chaos_flag(serve)
    serve.set_defaults(func=_cmd_serve)

    arbitrage = sub.add_parser("arbitrage", help="run the full STAUB pipeline")
    arbitrage.add_argument("file")
    arbitrage.add_argument("--width", type=int, default=None)
    arbitrage.add_argument("--budget", type=int, default=TIMEOUT_WORK)
    arbitrage.add_argument(
        "--refine",
        action="store_true",
        help="widen and retry on bounded-unsat (scratch re-encoding)",
    )
    arbitrage.add_argument(
        "--refine-incremental",
        action="store_true",
        help="width refinement on one persistent SAT session: learned "
        "clauses survive widening and unsat cores pick which variables "
        "grow",
    )
    arbitrage.add_argument(
        "--growth",
        type=int,
        default=2,
        metavar="FACTOR",
        help="width multiplier between refinement rounds (default 2)",
    )
    arbitrage.add_argument(
        "--max-width",
        type=int,
        default=24,
        metavar="BITS",
        help="refinement stops widening past this width (default 24)",
    )
    arbitrage.add_argument(
        "--max-rounds",
        type=int,
        default=3,
        metavar="N",
        help="maximum refinement rounds (default 3)",
    )
    arbitrage.add_argument(
        "--headroom",
        type=int,
        default=0,
        metavar="STEPS",
        help="incremental refinement: encode this many growth steps "
        "wider than each round so consecutive rounds share one encoding "
        "(default 0: encode at exactly the round width)",
    )
    arbitrage.add_argument(
        "--cache",
        default=None,
        metavar="FILE.json",
        help="persistent per-round refinement cache (refine modes only)",
    )
    _add_chaos_flag(arbitrage)
    _add_telemetry_flags(arbitrage)
    arbitrage.set_defaults(func=_cmd_arbitrage)

    profile = sub.add_parser(
        "profile", help="per-stage breakdown of a --trace JSONL file"
    )
    profile.add_argument("file")
    profile.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="show at most N non-pipeline stages (sorted by work desc, "
        "then name; pipeline stages always print)",
    )
    profile.add_argument(
        "--critical-path",
        action="store_true",
        help="print the heaviest root-to-leaf span chain",
    )
    profile.add_argument(
        "--flamegraph",
        default=None,
        metavar="OUT.folded",
        help="write collapsed stacks (flamegraph.pl / speedscope format); "
        "'-' prints to stdout",
    )
    profile.set_defaults(func=_cmd_profile)

    bench = sub.add_parser(
        "bench",
        help="run a deterministic benchmark suite, write BENCH_<suite>.json",
    )
    bench.add_argument(
        "--suite",
        default=None,
        help="suite name (see --list)",
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="FILE.json",
        help="artifact path (default BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="wall-clock repeats per case, median reported (default 3)",
    )
    bench.add_argument(
        "--no-wall",
        action="store_true",
        help="skip wall-clock timing entirely (deterministic section only)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help="diff against a baseline artifact; exit 1 on any "
        "deterministic difference",
    )
    bench.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="treat wall-clock slowdowns beyond this fraction as "
        "regressions too (e.g. 0.25); default: informational only",
    )
    bench.add_argument(
        "--replay",
        default=None,
        metavar="FILE.json",
        help="reuse an existing artifact instead of running the suite "
        "(useful with --compare)",
    )
    bench.add_argument(
        "--list",
        action="store_true",
        help="list available suites and exit",
    )
    bench.set_defaults(func=_cmd_bench)

    analyze = sub.add_parser("analyze", help="bound inference report")
    analyze.add_argument("file")
    analyze.set_defaults(func=_cmd_analyze)

    optimize = sub.add_parser("optimize", help="SLOT-style optimization of a bounded constraint")
    optimize.add_argument("file")
    optimize.set_defaults(func=_cmd_optimize)

    reduce = sub.add_parser(
        "reduce", help="width-reduce an already-bounded constraint (Section 6.4)"
    )
    reduce.add_argument("file")
    reduce.add_argument("--width", type=int, required=True)
    reduce.add_argument("--budget", type=int, default=TIMEOUT_WORK)
    reduce.set_defaults(func=_cmd_reduce)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or not hasattr(args, "func"):
        parser.print_usage(sys.stderr)
        print("staub: error: a subcommand is required", file=sys.stderr)
        return 2
    chaos_spec = getattr(args, "chaos", None)
    if not chaos_spec and os.environ.get(chaos.ENV_VAR):
        # Validate the environment spec up front: a typo'd REPRO_CHAOS
        # must fail fast with a structured usage error, not surface as a
        # traceback from the first lazy chaos.active() call mid-solve.
        env_spec = os.environ[chaos.ENV_VAR]
        try:
            chaos.parse_spec(env_spec)
        except ValueError as error:
            print(f"staub: error: {chaos.ENV_VAR}={env_spec!r}: {error}",
                  file=sys.stderr)
            return 2
    if chaos_spec:
        try:
            chaos.install(chaos.parse_spec(chaos_spec))
        except ValueError as error:
            print(f"staub: error: {error}", file=sys.stderr)
            return 2
        # --jobs workers pick the plan up from the environment.
        os.environ[chaos.ENV_VAR] = chaos_spec
    wants_telemetry = getattr(args, "trace", None) or getattr(args, "stats", False)
    try:
        if wants_telemetry:
            telemetry.enable(trace_path=getattr(args, "trace", None))
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if wants_telemetry:
            telemetry.disable()


if __name__ == "__main__":
    sys.exit(main())
