"""STAUB reproduction: SMT theory arbitrage from unbounded to bounded theories.

This package reproduces, from scratch and in pure Python, the system of
"SMT Theory Arbitrage: Approximating Unbounded Constraints using Bounded
Theories" (Mikek & Zhang, PLDI 2024): an SMT-LIB front end, a CDCL SAT
core, a bit-blasting bitvector solver, exact-arithmetic unbounded solvers,
the STAUB abstract-interpretation bound-inference and transformation
pipeline, a SLOT-like bounded-constraint optimizer, and a termination
proving client analysis.

Public entry points:

- :mod:`repro.smtlib` -- sorts, terms, parser, printer, evaluator.
- :mod:`repro.solver` -- the native solver stack and portfolio runner.
- :mod:`repro.core` -- the paper's contribution: bound inference via
  abstract interpretation, sort correspondences, constraint transformation,
  verification, and the end-to-end arbitrage pipeline.
- :mod:`repro.slot` -- compiler-optimization passes for bounded constraints.
- :mod:`repro.termination` -- the Ultimate-Automizer-like client analysis.
- :mod:`repro.benchgen` -- seeded workload generators per SMT-LIB logic.
- :mod:`repro.evaluation` -- experiment harness for every table and figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
