"""Per-tenant fairness for the solve service.

Every tenant gets a child :class:`~repro.guard.ResourceBudget` of one
global governor (the parent-chained design from :mod:`repro.guard`), so:

- a tenant that burns through its work ceiling is *rejected at
  admission* (``reason=tenant_budget``) instead of starving the queue;
- evicting a tenant cancels its child budget, which cooperatively
  interrupts every live in-process solve parented under it (grandchild
  request budgets trip on their next governor check);
- exhausting the global governor degrades every tenant at once -- the
  server answers structured ``unknown`` rather than queueing work it can
  no longer run.

Work is charged twice on purpose: once against the tenant's child and
once against the global root. ``ResourceBudget.charge`` only bills the
budget it is called on, and a request's work must count against both
ceilings regardless of whether the solve ran in-process (under the
grandchild) or in a worker process (whose governor cannot span the
process boundary).
"""

from repro import guard, telemetry

__all__ = ["TenantLedger"]


class TenantLedger:
    """The service's fairness book: one child budget per tenant.

    Args:
        global_work: unified work ceiling across *all* tenants
            (None = unlimited).
        global_deadline: wall-clock lifetime for the whole server
            (None keeps the service deterministic).
        tenant_work: per-tenant work ceiling (None = unlimited).
    """

    def __init__(self, global_work=None, global_deadline=None, tenant_work=None):
        self.root = guard.ResourceBudget(work=global_work, deadline=global_deadline)
        self.tenant_work = tenant_work
        self._tenants = {}
        self._evicted = set()

    def budget_for(self, tenant):
        """The tenant's child budget, created on first sight."""
        budget = self._tenants.get(tenant)
        if budget is None:
            budget = self.root.child(work=self.tenant_work)
            self._tenants[tenant] = budget
        return budget

    def admission_reason(self, tenant):
        """Why this tenant may not submit now, or None if it may.

        Checks are made on throwaway probes of the budget state rather
        than :meth:`~repro.guard.ResourceBudget.interrupted` so that an
        admission *check* never latches a give-up reason onto the
        tenant's budget (a rejected request is not the tenant's solve
        giving up).
        """
        if tenant in self._evicted:
            return "evicted"
        budget = self.budget_for(tenant)
        if budget.cancelled or self.root.cancelled:
            return "evicted"
        if self.root._exhausted_reason() is not None:
            return "global_budget"
        if budget._exhausted_reason() is not None:
            return "tenant_budget"
        return None

    def request_budget(self, tenant, work=None, deadline=None):
        """A grandchild budget governing one request of this tenant."""
        return self.budget_for(tenant).child(work=work, deadline=deadline)

    def clamped_work(self, tenant, work):
        """The request work budget clamped to both remaining ceilings.

        Worker processes cannot share the parent chain, so the clamp is
        how tenant/global ceilings still bound out-of-process solves.
        """
        for remaining in (
            self.budget_for(tenant).remaining_work(),
            self.root.remaining_work(),
        ):
            if remaining is not None:
                work = remaining if work is None else min(work, remaining)
        return work

    def charge(self, tenant, work):
        """Bill completed work against the tenant and the global root."""
        if not work:
            return
        self.budget_for(tenant).spent += work
        self.root.spent += work
        telemetry.observe("service.tenant_work", work, tenant=tenant)

    def evict(self, tenant):
        """Cancel a tenant: live solves trip cooperatively, new ones bounce."""
        self._evicted.add(tenant)
        self.budget_for(tenant).cancel()
        telemetry.counter_add("service.tenant_evicted", tenant=tenant)

    def stats(self):
        """Deterministic per-tenant accounting for ``cache-stats`` / logs."""
        return {
            tenant: {
                "spent": budget.spent,
                "evicted": tenant in self._evicted,
                "gave_up_reason": budget.reason,
            }
            for tenant, budget in sorted(self._tenants.items())
        }
