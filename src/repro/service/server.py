"""``staub serve``: the long-running multi-tenant solve server.

Robustness is the organizing principle:

- **admission control**: a bounded queue fronts the pool; when it is
  full a request is rejected *immediately* with a structured ``unknown
  (reason=saturated)`` instead of queueing unboundedly. Queue depth is
  tracked and its peak reported, so "bounded" is checkable.
- **per-tenant fairness**: every request runs under a grandchild of the
  global governor (:mod:`repro.service.tenancy`); a tenant at its work
  ceiling bounces at admission (``reason=tenant_budget``) and an evicted
  tenant's live in-process solves trip cooperatively.
- **degradation over failure**: worker crashes retry once then answer
  ``unknown (reason=worker_crashed)``; injected accept-faults answer
  ``unknown (reason=dropped)``; malformed lines answer ``{"ok": false,
  "error": ...}``. Every request line terminates with a response.
- **batched, sharded persistence**: completed conclusive solves land in
  the shared cache; every ``flush_every`` completions the dirty shards
  are flushed (a ``service.flush`` chaos drop skips one batch, never
  loses the store -- the next flush or shutdown picks the entries up).

Two transports share the service core: :func:`serve_stream` (NDJSON on
stdio -- one client) and :func:`serve_socket` (a Unix socket
multiplexing concurrent clients). Responses carry the request ``id``, so
pipelined clients may see them out of submission order in pool mode.
"""

import os
from collections import deque

from repro import telemetry
from repro.cache.keys import cache_key, script_digests
from repro.cache.store import result_from_entry
from repro.errors import ReproError
from repro.guard import chaos
from repro.service import protocol
from repro.service.tenancy import TenantLedger
from repro.service.workers import WorkerPool, run_request
from repro.solver.result import UNSAT, SolveResult
from repro.telemetry.stats import unified_stats

__all__ = ["SolveService", "serve_socket", "serve_stream"]

#: Default per-request unified work budget (the evaluation's timeout).
DEFAULT_BUDGET = 1_200_000

#: Default admission-queue capacity.
DEFAULT_QUEUE_CAPACITY = 64

#: Flush the cache's dirty shards every this many completions.
DEFAULT_FLUSH_EVERY = 16


class _Ticket:
    """One admitted request awaiting execution."""

    __slots__ = ("request", "script", "key", "client")

    def __init__(self, request, script, key, client):
        self.request = request
        self.script = script
        self.key = key
        self.client = client


class SolveService:
    """The transport-independent service core.

    Args:
        workers: 0 runs requests inline (deterministic); N > 0 runs a
            crash-tolerant process pool.
        queue_capacity: admission bound; excess requests are rejected
            with ``reason=saturated``.
        profile / budget / timeout: per-request defaults (a request may
            narrow but the budget is always clamped to the tenant's and
            the global governor's remaining work).
        global_work / global_deadline: the root governor's ceilings.
        tenant_work: per-tenant work ceiling.
        cache: a :class:`~repro.cache.SolveCache` or
            :class:`~repro.cache.ShardedSolveCache` shared by all
            tenants (lookups and stores happen in the server process;
            workers never touch it).
        flush_every: completions between batched cache flushes.
    """

    def __init__(
        self,
        workers=0,
        queue_capacity=DEFAULT_QUEUE_CAPACITY,
        profile="zorro",
        budget=DEFAULT_BUDGET,
        timeout=None,
        global_work=None,
        global_deadline=None,
        tenant_work=None,
        cache=None,
        flush_every=DEFAULT_FLUSH_EVERY,
    ):
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.profile = profile
        self.budget = budget
        self.timeout = timeout
        self.cache = cache
        self.flush_every = flush_every
        self.ledger = TenantLedger(
            global_work=global_work,
            global_deadline=global_deadline,
            tenant_work=tenant_work,
        )
        self.pool = WorkerPool(workers) if workers else None
        self._pending = deque()
        self._tickets = {}  # request salt -> _Ticket (pool mode)
        self._sequence = 0
        self._completions_since_flush = 0
        self._shutdown = None  # (request, client) once requested
        self.accepted = 0
        self.completed = 0
        self.queue_peak = 0
        self.rejected = {}  # reason -> count

    # -- admission ---------------------------------------------------------

    @property
    def shutdown_requested(self):
        return self._shutdown is not None

    def _reject(self, request, reason, client):
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        telemetry.counter_add("service.rejected", reason=reason)
        return [(client, protocol.rejection_response(request, reason))]

    def submit_line(self, line, client=None):
        """Admit one request line; returns immediately-ready responses.

        Protocol errors, rejections (saturated / tenant_budget /
        evicted / dropped), cache hits, and ``cache-stats`` answer right
        here; an admitted solve/arbitrage produces its response later
        via :meth:`pump` / :meth:`drain`.
        """
        self._sequence += 1
        try:
            request = protocol.parse_request(line, sequence=self._sequence)
        except protocol.ProtocolError as error:
            telemetry.counter_add("service.protocol_error")
            return [(client, protocol.error_response(error, id=_best_effort_id(line)))]
        telemetry.counter_add("service.requests", op=request.op, tenant=request.tenant)
        if request.op == "shutdown":
            self._shutdown = (request, client)
            return []
        if request.op == "cache-stats":
            return [(client, protocol.stats_response(request, self.stats()))]

        fault = chaos.inject("service.accept", salt=request.salt)
        if fault is not None and fault.kind == "drop":
            return self._reject(request, "dropped", client)
        reason = self.ledger.admission_reason(request.tenant)
        if reason is not None:
            return self._reject(request, reason, client)

        # Resolve defaults before the request crosses a process boundary.
        request.profile = request.profile or self.profile
        if request.timeout is None:
            request.timeout = self.timeout
        request.budget = self.ledger.clamped_work(
            request.tenant, request.budget if request.budget is not None else self.budget
        )

        try:
            from repro.smtlib import parse_script

            script = parse_script(request.script)
        except ReproError as error:
            telemetry.counter_add("service.protocol_error")
            return [
                (client, protocol.error_response(f"parse error: {error}", id=request.id))
            ]

        key = None
        if self.cache is not None and request.op == "solve":
            key = cache_key(script, profile=request.profile, budget=request.budget)
            entry = self.cache.get(key, kind="service")
            if entry is not None:
                return [
                    (client, protocol.result_response(request, result_from_entry(entry)))
                ]
            if self.cache.has_cores() and script.assertions:
                core = self.cache.find_core(script_digests(script), kind="service")
                if core is not None:
                    result = SolveResult(
                        UNSAT,
                        None,
                        0,
                        engine="core-reuse",
                        stats=unified_stats(core_reuse=True),
                        cached=True,
                    )
                    return [(client, protocol.result_response(request, result))]

        if len(self._pending) >= self.queue_capacity:
            return self._reject(request, "saturated", client)
        ticket = _Ticket(request, script, key, client)
        self._pending.append(ticket)
        self._tickets[request.salt] = ticket
        self.accepted += 1
        self.queue_peak = max(self.queue_peak, len(self._pending))
        telemetry.gauge_set("service.queue_depth", len(self._pending))
        return []

    # -- execution ---------------------------------------------------------

    def pump(self, block=False):
        """Advance execution; returns newly completed responses."""
        if self.pool is None:
            return self._pump_inline()
        return self._pump_pool(block)

    def _pump_inline(self):
        if not self._pending:
            return []
        ticket = self._pending.popleft()
        self._tickets.pop(ticket.request.salt, None)
        request = ticket.request
        governor = self.ledger.request_budget(
            request.tenant, work=request.budget, deadline=request.timeout
        )
        with telemetry.span("service.request", op=request.op, tenant=request.tenant):
            payload, entry = run_request(request, governor=governor, script=ticket.script)
        return [self._complete(ticket, payload, entry)]

    def _pump_pool(self, block):
        responses = []
        while self._pending and self.pool.idle_count:
            ticket = self._pending.popleft()
            self.pool.dispatch(ticket.request)
        for kind, request, payload, entry in self.pool.poll(
            timeout=0.05 if block else 0.0
        ):
            ticket = self._tickets.get(request.salt)
            if ticket is None:
                continue  # already answered (e.g. superseded retry)
            if kind == "done":
                self._pending_remove(ticket)
                responses.append(self._complete(ticket, payload, entry))
            elif kind == "retry":
                self._pending.appendleft(ticket)
            else:  # crashed
                self._pending_remove(ticket)
                self._tickets.pop(request.salt, None)
                reason = payload  # the event's reason slot
                self.rejected[reason] = self.rejected.get(reason, 0) + 1
                telemetry.counter_add("service.rejected", reason=reason)
                responses.append(
                    (ticket.client, protocol.rejection_response(request, reason))
                )
                self.completed += 1
        return responses

    def _pending_remove(self, ticket):
        try:
            self._pending.remove(ticket)
        except ValueError:
            pass  # normal: it was dispatched, not pending

    def _complete(self, ticket, payload, entry):
        self._tickets.pop(ticket.request.salt, None)
        self.completed += 1
        work = payload.get("work") or 0
        if isinstance(work, int):
            self.ledger.charge(ticket.request.tenant, work)
        telemetry.counter_add(
            "service.completed",
            status=str(payload.get("status", "error")),
            tenant=ticket.request.tenant,
        )
        if entry is not None and ticket.key is not None and self.cache is not None:
            self.cache.put(ticket.key, entry, kind="service")
            self._completions_since_flush += 1
            self._maybe_flush()
        return (ticket.client, payload)

    def _maybe_flush(self):
        if self.cache is None or self._completions_since_flush < self.flush_every:
            return
        self._completions_since_flush = 0
        fault = chaos.inject("service.flush")
        if fault is not None and fault.kind == "drop":
            # Skipping one batched flush loses nothing: the entries stay
            # dirty in memory and ride the next flush (or shutdown).
            telemetry.counter_add("service.flush_skipped")
            return
        self._flush()

    def _flush(self):
        try:
            self.cache.save()
            telemetry.counter_add("service.flush")
        except (OSError, ValueError):
            # A failed flush degrades persistence, never the service.
            telemetry.counter_add("service.flush_failed")

    def drain(self, max_wait=None):
        """Run everything admitted to completion; returns the responses."""
        import time

        deadline = None if max_wait is None else time.monotonic() + max_wait
        responses = []
        while self._pending or (self.pool is not None and self.pool.in_flight_count):
            responses.extend(self.pump(block=True))
            if deadline is not None and time.monotonic() >= deadline:
                break
        return responses

    # -- teardown ----------------------------------------------------------

    def finish(self):
        """Final flush plus the shutdown acknowledgement, if requested."""
        if self.cache is not None:
            self._flush()
        if self._shutdown is None:
            return []
        request, client = self._shutdown
        return [(client, protocol.shutdown_response(request))]

    def close(self):
        """Stop the pool (zombie-free); returns abandoned in-flight count."""
        if self.pool is None:
            return 0
        abandoned = self.pool.shutdown()
        self.pool = None
        return abandoned

    # -- introspection -----------------------------------------------------

    def stats(self):
        """Deterministic service + cache counters (the cache-stats op)."""
        return {
            "service": {
                "workers": self.workers,
                "queue_capacity": self.queue_capacity,
                "queue_depth": len(self._pending),
                "queue_peak": self.queue_peak,
                "accepted": self.accepted,
                "completed": self.completed,
                "rejected": dict(sorted(self.rejected.items())),
                "tenants": self.ledger.stats(),
            },
            "cache": self.cache.stats() if self.cache is not None else None,
        }


def _best_effort_id(line):
    """Recover the request id from a line that failed validation."""
    import json

    try:
        payload = json.loads(line)
    except ValueError:
        return None
    if isinstance(payload, dict):
        return payload.get("id")
    return None


# -- transports --------------------------------------------------------------


def _emit_stream(outstream, responses):
    for _, payload in responses:
        outstream.write(protocol.encode_response(payload) + "\n")
    if responses:
        outstream.flush()


def serve_stream(service, instream, outstream, drain_wait=None):
    """Serve NDJSON requests from one stream (the stdio transport).

    Returns the number of worker processes abandoned at close (0 in a
    clean shutdown -- the CI drill asserts on it via the exit code).
    """
    try:
        for line in instream:
            if not line.strip():
                continue
            _emit_stream(outstream, service.submit_line(line))
            _emit_stream(outstream, service.pump())
            if service.shutdown_requested:
                break
        _emit_stream(outstream, service.drain(max_wait=drain_wait))
        _emit_stream(outstream, service.finish())
    finally:
        abandoned = service.close()
    return abandoned


def serve_socket(service, path, poll_interval=0.05):
    """Serve concurrent NDJSON clients on a Unix domain socket.

    One selector loop multiplexes every connection; responses go back to
    the connection that submitted the request. A ``shutdown`` request
    from any client drains in-flight work and stops the server.
    """
    import selectors
    import socket

    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if os.path.exists(path):
        os.remove(path)
    server.bind(path)
    server.listen()
    server.setblocking(False)
    selector = selectors.DefaultSelector()
    selector.register(server, selectors.EVENT_READ, data=None)
    buffers = {}

    def send(responses):
        for client, payload in responses:
            if client is None or client.fileno() < 0:
                continue
            try:
                client.setblocking(True)
                client.sendall(
                    (protocol.encode_response(payload) + "\n").encode("utf-8")
                )
                client.setblocking(False)
            except OSError:
                pass  # client went away; its response is undeliverable

    def hangup(connection):
        try:
            selector.unregister(connection)
        except (KeyError, ValueError):
            pass
        buffers.pop(connection, None)
        connection.close()

    try:
        while not service.shutdown_requested:
            for key, _ in selector.select(timeout=poll_interval):
                if key.data is None:
                    connection, _ = server.accept()
                    connection.setblocking(False)
                    selector.register(connection, selectors.EVENT_READ, data="client")
                    buffers[connection] = bytearray()
                    continue
                connection = key.fileobj
                try:
                    chunk = connection.recv(65536)
                except (BlockingIOError, InterruptedError):
                    continue
                except OSError:
                    chunk = b""
                if not chunk:
                    hangup(connection)
                    continue
                buffers[connection] += chunk
                while b"\n" in buffers[connection]:
                    raw, _, rest = bytes(buffers[connection]).partition(b"\n")
                    buffers[connection] = bytearray(rest)
                    if not raw.strip():
                        continue
                    send(service.submit_line(raw.decode("utf-8"), client=connection))
                    if service.shutdown_requested:
                        break
            send(service.pump())
        send(service.drain())
        send(service.finish())
    finally:
        abandoned = service.close()
        for connection in list(buffers):
            hangup(connection)
        selector.close()
        server.close()
        if os.path.exists(path):
            os.remove(path)
    return abandoned
