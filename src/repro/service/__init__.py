"""``staub serve``: a fault-tolerant multi-tenant solve service.

The package splits along failure domains:

- :mod:`repro.service.protocol` -- the NDJSON wire format; every request
  line terminates with a structured response, malformed input included.
- :mod:`repro.service.tenancy` -- per-tenant fairness as child budgets
  of one global :class:`~repro.guard.ResourceBudget`.
- :mod:`repro.service.workers` -- inline or process-pool execution with
  bounded crash retry (the reap/backoff idioms of
  :func:`repro.portfolio.scheduler.parallel_race`).
- :mod:`repro.service.server` -- admission control, the bounded queue,
  batched sharded-cache flushes, and the stdio/socket transports.
"""

from repro.service.protocol import (
    OPS,
    ProtocolError,
    encode_response,
    error_response,
    parse_request,
)
from repro.service.server import (
    DEFAULT_BUDGET,
    DEFAULT_FLUSH_EVERY,
    DEFAULT_QUEUE_CAPACITY,
    SolveService,
    serve_socket,
    serve_stream,
)
from repro.service.tenancy import TenantLedger
from repro.service.workers import WorkerPool, run_request

__all__ = [
    "DEFAULT_BUDGET",
    "DEFAULT_FLUSH_EVERY",
    "DEFAULT_QUEUE_CAPACITY",
    "OPS",
    "ProtocolError",
    "SolveService",
    "TenantLedger",
    "WorkerPool",
    "encode_response",
    "error_response",
    "parse_request",
    "run_request",
    "serve_socket",
    "serve_stream",
]
