"""The solve service's wire protocol: newline-delimited JSON.

One request per line, one JSON object per response line. Requests:

- ``{"op": "solve", "script": "...", ...}`` -- solve an SMT-LIB script;
- ``{"op": "arbitrage", "script": "...", ...}`` -- run the STAUB
  underapproximate-then-verify pipeline;
- ``{"op": "cache-stats"}`` -- the shared cache's counters;
- ``{"op": "shutdown"}`` -- drain in-flight work and stop the server.

Optional request fields: ``id`` (any JSON value, echoed verbatim so
clients can pipeline and match responses out of order), ``tenant``
(fairness bucket, default ``"anonymous"``), ``profile``, ``budget``
(unified work units), ``timeout`` (wall seconds; opt-in, trades
determinism for punctuality).

Responses always terminate: a well-formed solve request is answered with
its verdict (``status`` is byte-identical to what ``staub solve`` would
print) or a *structured* ``unknown`` carrying a ``reason`` --
``saturated`` (admission queue full), ``tenant_budget`` (per-tenant
ceiling hit), ``dropped`` (injected fault), ``worker_crashed`` (crash
retry exhausted), or a governor reason (``deadline`` / ``work`` /
``cancelled``). A malformed line is answered with ``{"ok": false,
"error": ...}`` -- never a traceback, never silence.
"""

import json

from repro.cache.store import encode_model

__all__ = [
    "OPS",
    "ProtocolError",
    "encode_response",
    "error_response",
    "parse_request",
    "rejection_response",
]

#: Operations the service accepts.
OPS = ("solve", "arbitrage", "cache-stats", "shutdown")

#: Tenant bucket used when a request does not name one.
DEFAULT_TENANT = "anonymous"

_SCRIPT_OPS = ("solve", "arbitrage")


class ProtocolError(ValueError):
    """A malformed request line (bad JSON, unknown op, missing field)."""


class Request:
    """One validated request, ready for admission.

    Attributes mirror the wire fields; ``salt`` is a stable per-request
    string used to seed chaos draws deterministically per request.
    """

    __slots__ = ("id", "op", "tenant", "script", "profile", "budget", "timeout", "salt")

    def __init__(self, id, op, tenant, script, profile, budget, timeout, salt):
        self.id = id
        self.op = op
        self.tenant = tenant
        self.script = script
        self.profile = profile
        self.budget = budget
        self.timeout = timeout
        self.salt = salt

    def __repr__(self):
        return f"Request({self.op}, id={self.id!r}, tenant={self.tenant})"


def parse_request(line, sequence=0):
    """Parse and validate one request line into a :class:`Request`.

    Raises:
        ProtocolError: with a one-line message on any malformed input.
    """
    text = line.strip()
    if not text:
        raise ProtocolError("empty request line")
    try:
        payload = json.loads(text)
    except ValueError as error:
        raise ProtocolError(f"bad JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(payload).__name__}")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {', '.join(OPS)})")
    script = payload.get("script")
    if op in _SCRIPT_OPS:
        if not isinstance(script, str) or not script.strip():
            raise ProtocolError(f"op {op!r} needs a non-empty 'script' string")
    tenant = payload.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("'tenant' must be a non-empty string")
    budget = payload.get("budget")
    if budget is not None and (not isinstance(budget, int) or budget <= 0):
        raise ProtocolError("'budget' must be a positive integer")
    timeout = payload.get("timeout")
    if timeout is not None and (
        not isinstance(timeout, (int, float)) or timeout <= 0
    ):
        raise ProtocolError("'timeout' must be a positive number of seconds")
    profile = payload.get("profile")
    if profile is not None and profile not in ("zorro", "corvus"):
        raise ProtocolError(f"unknown profile {profile!r}")
    return Request(
        payload.get("id"),
        op,
        tenant,
        script,
        profile,
        budget,
        timeout,
        salt=f"req-{sequence}",
    )


# -- responses ---------------------------------------------------------------


def _base(request):
    payload = {"ok": True, "op": request.op}
    if request.id is not None:
        payload["id"] = request.id
    if request.op in _SCRIPT_OPS:
        payload["tenant"] = request.tenant
    return payload


def result_response(request, result):
    """Encode a :class:`~repro.solver.result.SolveResult` for the wire."""
    payload = _base(request)
    payload["status"] = result.status
    payload["work"] = result.work
    payload["engine"] = result.engine
    payload["cached"] = bool(result.cached)
    if result.is_sat and result.model is not None:
        try:
            payload["model"] = encode_model(result.model)
        except TypeError:
            payload["model"] = None
    reason = result.stats.get("gave_up_reason") if result.stats else None
    if result.status == "unknown" and reason:
        payload["reason"] = reason
    return payload


def report_response(request, report):
    """Encode an :class:`~repro.core.pipeline.ArbitrageReport`."""
    payload = _base(request)
    payload["case"] = report.case
    payload["status"] = (
        "sat" if report.case == "verified-sat" else (report.bounded_status or "unknown")
    )
    payload["width"] = report.width
    payload["work"] = report.total_work
    if report.model is not None:
        try:
            payload["model"] = encode_model(report.model)
        except TypeError:
            payload["model"] = None
    return payload


def rejection_response(request, reason):
    """A structured ``unknown`` for a request the service will not run."""
    payload = _base(request)
    payload["status"] = "unknown"
    payload["reason"] = reason
    return payload


def stats_response(request, stats):
    payload = _base(request)
    payload["stats"] = stats
    return payload


def shutdown_response(request):
    payload = _base(request)
    payload["shutdown"] = True
    return payload


def error_response(message, id=None):
    """A structured protocol error (never a traceback)."""
    payload = {"ok": False, "error": str(message).splitlines()[0]}
    if id is not None:
        payload["id"] = id
    return payload


def encode_response(payload):
    """One response line (compact separators keep the stream dense)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
