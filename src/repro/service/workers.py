"""The solve service's execution layer: inline or a process worker pool.

Two modes share one request-execution function (:func:`run_request`):

- **inline** (``workers=0``): requests run in the server process under a
  grandchild :class:`~repro.guard.ResourceBudget` of the tenant's
  budget. Fully deterministic -- the mode the differential tests and the
  saturation-semantics tests use.
- **process pool** (``workers=N``): N persistent worker processes, each
  with its own task queue (so the parent always knows which request a
  dead worker was holding) and one shared result queue. Crash recovery
  reuses the reap/backoff idioms of
  :func:`repro.portfolio.scheduler.parallel_race`: a worker that dies
  without reporting is reaped (result queue drained first, so a result
  racing the exit is never misreported as a crash), the replacement is
  spawned after an exponential backoff, and the in-flight request is
  retried once before degrading to a structured ``unknown
  (reason=worker_crashed)``.

A request whose wall ``timeout`` expires is first cancelled
*cooperatively* (the worker's own governor deadline trips in the solve
hot loops); only when a worker overstays the grace window on top of that
is it terminated -- which then takes the ordinary crash path, bounded by
the same single retry.
"""

import os
import time

from repro import guard, telemetry
from repro.errors import ReproError
from repro.guard import chaos
from repro.portfolio.scheduler import (
    CRASH_RETRIES,
    CRASH_RETRY_BACKOFF,
    terminate_processes,
)
from repro.service import protocol

__all__ = ["WorkerPool", "run_request"]

#: Extra wall seconds past a request's cooperative deadline before the
#: parent hard-terminates the worker holding it.
TIMEOUT_GRACE = 5.0


def run_request(request, governor=None, script=None, cache=None):
    """Execute one solve/arbitrage request.

    Args:
        request: a validated :class:`~repro.service.protocol.Request`
            whose ``profile`` / ``budget`` / ``timeout`` defaults were
            already resolved by the server.
        governor: the request's governor (inline mode passes the
            tenant-parented grandchild; workers build their own).
        script: the already-parsed script, when the caller has it.
        cache: a solve cache for the facade to consult (inline mode
            only; worker processes never touch the shared store).

    Returns:
        ``(response_payload, cache_entry)`` -- the JSON-safe response
        and, when the outcome is conclusive, untainted, and within
        budget, a persistable cache entry dict (else None).
    """
    from repro.cache.store import entry_from_result
    from repro.smtlib import parse_script
    from repro.solver import solve_script

    if script is None:
        try:
            script = parse_script(request.script)
        except ReproError as error:
            return protocol.error_response(f"parse error: {error}", id=request.id), None
    if script.is_incremental:
        return (
            protocol.error_response(
                "incremental scripts are not supported over the service protocol",
                id=request.id,
            ),
            None,
        )
    if governor is None:
        governor = guard.ResourceBudget(work=request.budget, deadline=request.timeout)
    plan = chaos.active()
    injected_before = plan.total_injected if plan is not None else 0
    try:
        if request.op == "solve":
            result = solve_script(
                script,
                budget=request.budget,
                profile=request.profile,
                governor=governor,
                cache=cache,
            )
            payload = protocol.result_response(request, result)
        else:  # arbitrage
            from repro.core.pipeline import Staub

            with guard.activate(governor):
                report = Staub().run(script, budget=request.budget)
            result = None
            payload = protocol.report_response(request, report)
    except ReproError as error:
        telemetry.counter_add("solver.internal_error", site="service", op=request.op)
        return protocol.error_response(f"solver error: {error}", id=request.id), None
    entry = None
    if (
        result is not None
        and result.status in ("sat", "unsat")
        and not result.cached
        and governor.reason not in ("deadline", "cancelled")
        and (plan is None or plan.total_injected == injected_before)
    ):
        try:
            entry = entry_from_result(result)
        except TypeError:
            entry = None  # model value with no JSON encoding
    return payload, entry


def _service_worker(worker_id, task_queue, result_queue):
    """One persistent pool worker: loop on requests until the pill.

    An injected :class:`~repro.guard.chaos.ChaosCrash` exits hard
    (``os._exit``) exactly like a real segfault, so the parent's reap
    path is genuinely exercised. Any non-:class:`ReproError` escaping
    :func:`run_request` also kills the worker and takes the crash path.
    """
    while True:
        request = task_queue.get()
        if request is None:
            break
        try:
            chaos.inject("service.worker_crash", salt=request.salt)
        except chaos.ChaosCrash:
            os._exit(70)  # simulated hard crash: no result, nonzero exit
        payload, entry = run_request(request)
        result_queue.put((worker_id, request.salt, payload, entry))


class _Worker:
    __slots__ = ("process", "task_queue")

    def __init__(self, process, task_queue):
        self.process = process
        self.task_queue = task_queue


class WorkerPool:
    """Persistent solve workers with bounded crash retry.

    Events from :meth:`poll` are ``("done", request, payload, entry)``,
    ``("retry", request, None, None)`` (the caller should re-enqueue at
    the front), and ``("crashed", request, reason, None)`` where
    ``reason`` is ``worker_crashed``.
    """

    def __init__(self, workers):
        import multiprocessing

        if workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._result_queue = self._context.Queue()
        self._workers = {}  # worker id -> _Worker
        self._idle = []  # worker ids, kept sorted for determinism
        self._in_flight = {}  # worker id -> (request, dispatched_at)
        self._crashes = {}  # request salt -> crash count
        self._timed_out = set()  # worker ids terminated for overstaying
        self._next_id = 0
        self.size = workers
        for _ in range(workers):
            self._spawn()

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self):
        worker_id = self._next_id
        self._next_id += 1
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_service_worker,
            args=(worker_id, task_queue, self._result_queue),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = _Worker(process, task_queue)
        self._idle.append(worker_id)
        self._idle.sort()
        return worker_id

    def shutdown(self):
        """Stop every worker; returns the number abandoned in-flight.

        Pills first (a healthy worker drains and exits), then the
        :func:`terminate_processes` escalation -- the pool never leaks a
        process, mirroring ``parallel_race``'s exit guarantee.
        """
        for worker in self._workers.values():
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError):
                pass  # queue already broken: terminate below
        for worker in self._workers.values():
            worker.process.join(timeout=2)
        terminate_processes(w.process for w in self._workers.values())
        for worker in self._workers.values():
            worker.task_queue.cancel_join_thread()
        self._result_queue.cancel_join_thread()
        abandoned = len(self._in_flight)
        self._workers.clear()
        self._idle = []
        self._in_flight.clear()
        return abandoned

    # -- dispatch ----------------------------------------------------------

    @property
    def idle_count(self):
        return len(self._idle)

    @property
    def in_flight_count(self):
        return len(self._in_flight)

    def dispatch(self, request):
        """Hand a request to the lowest-numbered idle worker."""
        worker_id = self._idle.pop(0)
        self._in_flight[worker_id] = (request, time.monotonic())
        self._workers[worker_id].task_queue.put(request)
        return worker_id

    # -- completion --------------------------------------------------------

    def poll(self, timeout=0.0):
        """Collect one round of completions, crashes, and retries."""
        import queue as queue_module

        events = []
        try:
            message = self._result_queue.get(timeout=timeout) if timeout else (
                self._result_queue.get_nowait()
            )
        except queue_module.Empty:
            message = None
        if message is not None:
            worker_id, salt, payload, entry = message
            holding = self._in_flight.pop(worker_id, None)
            if holding is not None:
                self._idle.append(worker_id)
                self._idle.sort()
                events.append(("done", holding[0], payload, entry))
        self._kill_overstayers()
        events.extend(self._reap_dead())
        return events

    def _kill_overstayers(self):
        """Terminate workers past cooperative deadline plus grace."""
        now = time.monotonic()
        for worker_id, (request, started) in list(self._in_flight.items()):
            if request.timeout is None:
                continue
            if now - started > request.timeout + TIMEOUT_GRACE:
                worker = self._workers[worker_id]
                if worker.process.is_alive():
                    worker.process.terminate()
                self._timed_out.add(worker_id)
                telemetry.counter_add("service.worker_timeout")

    def _reap_dead(self):
        """Handle workers that died without reporting (crash path)."""
        import queue as queue_module

        events = []
        for worker_id in [
            wid
            for wid, worker in self._workers.items()
            if not worker.process.is_alive()
        ]:
            # Drain first: the worker may have queued its result just
            # before exiting; losing it would misreport a crash.
            try:
                leftover = self._result_queue.get(timeout=0.2)
            except queue_module.Empty:
                leftover = None
            if leftover is not None:
                self._result_queue.put(leftover)
                if leftover[0] == worker_id:
                    continue  # a real result: processed on the next poll
            events.extend(self._reap(worker_id))
        return events

    def _reap(self, worker_id):
        worker = self._workers.pop(worker_id)
        worker.process.join(timeout=5)
        worker.task_queue.cancel_join_thread()
        if worker_id in self._idle:
            self._idle.remove(worker_id)
        holding = self._in_flight.pop(worker_id, None)
        timed_out = worker_id in self._timed_out
        self._timed_out.discard(worker_id)
        telemetry.counter_add("service.worker_crash")
        if holding is None:
            self._spawn()
            return []
        request = holding[0]
        if timed_out:
            # The cooperative deadline already failed; retrying would
            # just overstay again. Degrade like a governor deadline.
            self._spawn()
            return [("crashed", request, "deadline", None)]
        count = self._crashes.get(request.salt, 0) + 1
        self._crashes[request.salt] = count
        if count <= CRASH_RETRIES:
            # Exponential backoff before the replacement takes over the
            # retried request (same shape as parallel_race's relaunch).
            time.sleep(CRASH_RETRY_BACKOFF * (2 ** (count - 1)))
            self._spawn()
            telemetry.counter_add("service.request_retried")
            return [("retry", request, None, None)]
        self._spawn()
        return [("crashed", request, "worker_crashed", None)]
