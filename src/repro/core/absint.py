"""Abstract domains for bound inference (Section 4.2 of the paper).

Two domains, each forming a Galois connection with its concrete power-set
domain:

- :class:`IntWidthDomain` -- abstract values are bit widths ``a`` in
  ``Z+``; ``gamma(a)`` is the set of two's-complement-representable
  integers ``[-2**(a-1), 2**(a-1) - 1]`` (Equations 1-2, Lemma 4.3).
- :class:`RealMagnitudePrecisionDomain` -- abstract values are
  (magnitude, precision) pairs ``(m, p)``; ``gamma((m, p))`` is the set of
  reals within magnitude ``2**(m-1)`` expressible with ``p`` binary
  fractional digits (Equations 3-5, Lemma 4.4). ``p`` may be infinite
  (None).

The abstract transfer functions (Fig. 5) are implemented as methods so
the inference pass (:mod:`repro.core.inference`) stays a plain syntax
tree traversal, matching the paper's implementation notes in 4.2.
"""

from fractions import Fraction


def int_width(value):
    """alpha_i of a single integer: the least two's-complement width.

    The paper's Equation 1 writes this as ceil(log2(max|c|)) + 1; we use
    the *tight* version (which the Galois-connection proof of Lemma 4.3
    implicitly needs): the least ``a`` with
    ``-2**(a-1) <= value <= 2**(a-1) - 1``. The two differ only at the
    asymmetric boundary values like -1 and exact powers of two.
    """
    value = int(value)
    if value >= 0:
        return value.bit_length() + 1
    return (-value - 1).bit_length() + 1


def dig(value):
    """Binary significant digits needed to represent a rational exactly.

    ``dig(c) = min { d : 2**d * c  is an integer }``; returns None
    (infinity) when the denominator has an odd factor, in which case the
    value has no finite binary expansion -- decimal constants like 0.1
    land here and become potential semantic differences.
    """
    denominator = Fraction(value).denominator
    count = 0
    while denominator % 2 == 0:
        denominator //= 2
        count += 1
    if denominator != 1:
        return None
    return count


class IntWidthDomain:
    """Width abstraction for integers (Fig. 5a).

    Abstract values are plain positive ints. The variable assumption
    ``x`` is supplied at construction, following the paper's practical
    choice of "width of the largest constant, plus one bit".
    """

    def __init__(self, variable_assumption):
        self.variable_assumption = max(2, int(variable_assumption))

    # -- Galois connection (for property tests) ------------------------

    @staticmethod
    def alpha(values):
        """Abstraction of a finite set of concrete values."""
        width = 1
        for value in values:
            if isinstance(value, bool):
                width = max(width, 1)
            else:
                width = max(width, int_width(value))
        return width

    @staticmethod
    def gamma_contains(width, value):
        """Membership test for gamma(width) (the set itself is huge)."""
        if isinstance(value, bool):
            return True
        half = 1 << (width - 1)
        return -half <= value < half

    @staticmethod
    def gamma_bounds(width):
        """The interval gamma restricts integers to."""
        half = 1 << (width - 1)
        return -half, half - 1

    # -- transfer functions (Fig. 5a) ------------------------------------

    def const(self, value):
        if isinstance(value, bool):
            return 1
        return int_width(value)

    def var(self):
        return self.variable_assumption

    def add(self, widths):
        """n-ary +/-: folded binary, one extra bit per fold."""
        result = widths[0]
        for width in widths[1:]:
            result = max(result, width) + 1
        return result

    def neg(self, width):
        # -(-2**(w-1)) does not fit in w bits.
        return width + 1

    def abs(self, width):
        return width + 1

    def mul(self, widths):
        return sum(widths)

    def idiv(self, dividend, divisor):
        # Euclidean quotient magnitude can exceed the dividend's by one
        # (|-8| / |-1| = 8 needs an extra signed bit).
        del divisor
        return dividend + 1

    def mod(self, dividend, divisor):
        # 0 <= (a mod b) < |b| always fits the divisor's width.
        del dividend
        return divisor

    def join(self, widths):
        """Comparisons, boolean operators, ite: plain maximum."""
        return max(widths) if widths else 1


class MagPrec:
    """An element of the real domain: (magnitude bits, precision bits).

    ``precision`` is None for infinity. Ordering is the component-wise
    partial order of Equation 3.
    """

    __slots__ = ("magnitude", "precision")

    def __init__(self, magnitude, precision):
        self.magnitude = magnitude
        self.precision = precision

    def leq(self, other):
        precision_ok = other.precision is None or (
            self.precision is not None and self.precision <= other.precision
        )
        return self.magnitude <= other.magnitude and precision_ok

    def __eq__(self, other):
        return (
            isinstance(other, MagPrec)
            and self.magnitude == other.magnitude
            and self.precision == other.precision
        )

    def __hash__(self):
        return hash((self.magnitude, self.precision))

    def __repr__(self):
        precision = "oo" if self.precision is None else self.precision
        return f"MagPrec({self.magnitude}, {precision})"


def _magnitude_width(value):
    """Least m with ``-2**(m-1) <= value <= 2**(m-1) - 1`` (tight)."""
    value = Fraction(value)
    if value >= 0:
        ceiling = -((-value.numerator) // value.denominator)
        return int(ceiling).bit_length() + 1
    ceiling = -((value.numerator) // value.denominator)  # ceil(-value)
    return (int(ceiling) - 1).bit_length() + 1


def _precision_add(left, right):
    if left is None or right is None:
        return None
    return left + right


def _precision_max(left, right):
    if left is None or right is None:
        return None
    return max(left, right)


class RealMagnitudePrecisionDomain:
    """Magnitude x precision abstraction for reals (Fig. 5b)."""

    def __init__(self, variable_assumption):
        self.variable_assumption = variable_assumption  # a MagPrec

    # -- Galois connection -------------------------------------------------

    @staticmethod
    def alpha(values):
        """Abstraction of a finite set of rationals (and booleans)."""
        magnitude = 1
        precision = 0
        for value in values:
            if isinstance(value, bool):
                continue
            value = Fraction(value)
            magnitude = max(magnitude, _magnitude_width(value))
            digits = dig(value)
            precision = None if (precision is None or digits is None) else max(
                precision, digits
            )
        return MagPrec(magnitude, precision)

    @staticmethod
    def gamma_contains(element, value):
        if isinstance(value, bool):
            return True
        value = Fraction(value)
        half = Fraction(1 << (element.magnitude - 1))
        if not (-half <= value <= half - 1):
            return False
        if element.precision is None:
            return True
        return (value * (1 << element.precision)).denominator == 1

    # -- transfer functions (Fig. 5b) ---------------------------------------

    def const(self, value):
        if isinstance(value, bool):
            return MagPrec(1, 0)
        return type(self).alpha([value])

    def var(self):
        return self.variable_assumption

    def add(self, elements):
        result = elements[0]
        for element in elements[1:]:
            result = MagPrec(
                max(result.magnitude, element.magnitude) + 1,
                _precision_max(result.precision, element.precision),
            )
        return result

    def neg(self, element):
        return MagPrec(element.magnitude + 1, element.precision)

    def abs(self, element):
        return MagPrec(element.magnitude + 1, element.precision)

    def mul(self, elements):
        result = elements[0]
        for element in elements[1:]:
            result = MagPrec(
                result.magnitude + element.magnitude,
                _precision_add(result.precision, element.precision),
            )
        return result

    def div(self, left, right):
        """The paper's modified division semantics (end of 4.2): treat
        division like multiplication in both components, avoiding the
        infinite precision a faithful rule would produce."""
        return MagPrec(
            left.magnitude + right.magnitude,
            _precision_add(left.precision, right.precision),
        )

    def join(self, elements):
        if not elements:
            return MagPrec(1, 0)
        result = elements[0]
        for element in elements[1:]:
            result = MagPrec(
                max(result.magnitude, element.magnitude),
                _precision_max(result.precision, element.precision),
            )
        return result
