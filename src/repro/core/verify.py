"""Verification of bounded models against the original constraint (4.4).

The underapproximation contract: a ``sat`` answer from the bounded side is
only trusted after the satisfying assignment -- mapped back through
phi^-1 -- makes every *original* assertion true under exact integer /
rational semantics. Failures are the paper's "semantic difference" cases
(Fig. 6, case 3) and cause a revert to the original constraint.
"""

from repro.errors import EvaluationError
from repro.smtlib.evaluator import evaluate
from repro.solver import costs

#: Verification outcomes.
VERIFIED = "verified"
SEMANTIC_DIFFERENCE = "semantic-difference"


class VerifyOutcome:
    """Result of checking one candidate model.

    Attributes:
        status: :data:`VERIFIED` or :data:`SEMANTIC_DIFFERENCE`.
        assignment: the unbounded candidate that was checked.
        work: unified work units spent evaluating (T_check).
        failing_assertion: index of the first assertion that evaluated to
            false (None when verified).
    """

    __slots__ = ("status", "assignment", "work", "failing_assertion")

    def __init__(self, status, assignment, work, failing_assertion=None):
        self.status = status
        self.assignment = assignment
        self.work = work
        self.failing_assertion = failing_assertion

    @property
    def ok(self):
        return self.status == VERIFIED

    def __repr__(self):
        return f"VerifyOutcome({self.status}, work={self.work})"


def verify_model(script, assignment):
    """Check a candidate assignment against the original script.

    Args:
        script: the original (unbounded) script.
        assignment: name -> exact value mapping from
            :meth:`TransformResult.back_map`.

    Returns:
        A :class:`VerifyOutcome`; never raises on semantic differences.
    """
    work = 0
    for index, assertion in enumerate(script.assertions):
        work += assertion.size()
        try:
            value = evaluate(assertion, assignment)
        except EvaluationError:
            value = False
        if value is not True:
            return VerifyOutcome(
                SEMANTIC_DIFFERENCE,
                assignment,
                costs.from_interval(work),
                failing_assertion=index,
            )
    return VerifyOutcome(VERIFIED, assignment, costs.from_interval(work))
