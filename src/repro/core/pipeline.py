"""The end-to-end STAUB pipeline (Fig. 3) with portfolio semantics (4.4).

:class:`Staub` wires the stages together: bound inference, width
selection, transformation, bounded solving, verification. Its
:meth:`Staub.run` returns an :class:`ArbitrageReport` with the
paper's cost decomposition (T_trans, T_post, T_check) on the unified
virtual clock, plus the Fig. 6 case that applied.

Portfolio accounting against a baseline run (T_pre) lives in
:func:`portfolio_time`: the user-observed cost is
``min(T_pre, T_trans + T_post + T_check)`` when STAUB's answer is usable,
and ``T_pre`` otherwise -- two cores racing, never slower than the
original (Section 5.1).
"""

from repro import guard, telemetry
from repro import cache as solve_cache
from repro.bv.solver import assertion_core_digests, solve_bounded_script
from repro.cache.keys import script_digests
from repro.core.correspondence import FixedPointShape
from repro.portfolio.scheduler import PrecomputedAttempt, race_precomputed
from repro.core.inference import infer_bounds
from repro.core.transform import transform_script
from repro.core.verify import verify_model
from repro.errors import TransformError
from repro.guard import chaos
from repro.solver import costs
from repro.telemetry.stats import unified_stats

#: Fig. 6 cases (plus failure modes before solving).
CASE_VERIFIED_SAT = "verified-sat"  # speedup: return the model
CASE_SEMANTIC_DIFFERENCE = "semantic-difference"  # revert
CASE_BOUNDED_UNSAT = "bounded-unsat"  # revert
CASE_BOUNDED_UNKNOWN = "bounded-unknown"  # bounded side timed out
CASE_TRANSFORM_FAILED = "transform-failed"  # constants too wide, etc.

#: Work units charged per original-term DAG node during analysis+translation.
TRANSLATE_COST_PER_NODE = 2

#: Width caps: the analysis can produce huge widths for deep nonlinear
#: terms; beyond these, bounded solving is hopeless anyway and the
#: underapproximation handles correctness.
MAX_INT_WIDTH = 16
MIN_INT_WIDTH = 4
MAX_MAGNITUDE_BITS = 12
MAX_PRECISION_BITS = 8


class ArbitrageReport:
    """Everything STAUB did for one constraint.

    Attributes:
        case: one of the CASE_* constants.
        model: verified satisfying assignment (only for verified-sat).
        t_trans / t_post / t_check: unified work per stage.
        width: chosen bitvector width (int) or total fixed-point width.
        shape: the fixed-point shape for real constraints.
        inference: the :class:`BoundInference` (None if analysis failed).
        bounded_status: raw status from the bounded solver.
        stats: uniform counter dict (see :mod:`repro.telemetry.stats`)
            with the bounded solver's counters plus ``width`` and
            ``case`` labels.
    """

    def __init__(
        self,
        case,
        model=None,
        t_trans=0,
        t_post=0,
        t_check=0,
        width=None,
        shape=None,
        inference=None,
        bounded_status=None,
        stats=None,
    ):
        self.case = case
        self.model = model
        self.t_trans = t_trans
        self.t_post = t_post
        self.t_check = t_check
        self.width = width
        self.shape = shape
        self.inference = inference
        self.bounded_status = bounded_status
        self.stats = stats if stats is not None else unified_stats(case=case)

    @property
    def total_work(self):
        return self.t_trans + self.t_post + self.t_check

    @property
    def usable(self):
        """True when STAUB produced an answer the user can take."""
        return self.case == CASE_VERIFIED_SAT

    def __repr__(self):
        return f"ArbitrageReport({self.case}, total={self.total_work})"


def choose_int_width(inference, width_strategy="absint", max_int_width=MAX_INT_WIDTH):
    """Width selection for integer constraints (Fig. 4 practicalities).

    Module-level so the scope-aware session lane
    (:mod:`repro.core.session`) applies the exact same rule as
    :meth:`Staub._choose_int_width`: the root inference when it fits the
    practical cap, else the variable assumption ``x`` with overflow
    guards enforcing intermediate soundness.
    """
    if isinstance(width_strategy, int):
        return width_strategy
    if inference.root <= max_int_width:
        return max(MIN_INT_WIDTH, inference.root)
    return max(MIN_INT_WIDTH, min(inference.assumption, max_int_width))


def check_candidate(script, transformed, bounded_model):
    """Stage 5: back-map a bounded model and verify it exactly.

    Shared by :meth:`Staub.run` and the incremental refinement engine
    (:mod:`repro.core.refinement`), so every round's sat answer goes
    through the identical underapproximation contract.

    Returns:
        ``(case, model, t_check)`` -- :data:`CASE_VERIFIED_SAT` with the
        unbounded candidate when it satisfies the original script,
        :data:`CASE_SEMANTIC_DIFFERENCE` with ``None`` otherwise.
    """
    candidate = transformed.back_map(bounded_model)
    with telemetry.span("verify") as span:
        outcome = verify_model(script, candidate)
        span.set_attr("ok", outcome.ok)
        span.settle(outcome.work)
    if outcome.ok:
        return CASE_VERIFIED_SAT, candidate, outcome.work
    return CASE_SEMANTIC_DIFFERENCE, None, outcome.work


class Staub:
    """Configurable theory-arbitrage pre-processor.

    Args:
        width_strategy: ``"absint"`` (the paper's inference), or an int
            for a fixed width (the ablation baselines).
        max_int_width / max_magnitude_bits / max_precision_bits: caps.
    """

    def __init__(
        self,
        width_strategy="absint",
        max_int_width=MAX_INT_WIDTH,
        max_magnitude_bits=MAX_MAGNITUDE_BITS,
        max_precision_bits=MAX_PRECISION_BITS,
        optimizer=None,
    ):
        self.width_strategy = width_strategy
        self.max_int_width = max_int_width
        self.max_magnitude_bits = max_magnitude_bits
        self.max_precision_bits = max_precision_bits
        self.optimizer = optimizer

    # -- width selection ---------------------------------------------------

    def _choose_int_width(self, inference):
        """Width selection for integer constraints.

        When the root inference ``[S]`` is within the practical cap, use
        it directly (Fig. 4 of the paper: the root width covers every
        intermediate). Deeply nonlinear constraints push ``[S]`` far past
        any solvable width; there we fall back to the variable assumption
        ``x`` and let the overflow guards enforce intermediate soundness
        (exactly the shape of the paper's Fig. 1b, where the sum-of-cubes
        constraint is translated at the assumption width 12 rather than
        the 38-bit root width).
        """
        return choose_int_width(inference, self.width_strategy, self.max_int_width)

    def _choose_shape(self, inference):
        if isinstance(self.width_strategy, int):
            magnitude = max(2, self.width_strategy - self.width_strategy // 3)
            precision = max(1, self.width_strategy // 3)
            return FixedPointShape(magnitude, precision)
        root = inference.root
        magnitude = max(3, min(root.magnitude, self.max_magnitude_bits))
        precision = root.precision
        if precision is None:
            precision = self.max_precision_bits
        precision = max(1, min(precision, self.max_precision_bits))
        return FixedPointShape(magnitude, precision)

    # -- pipeline stages ------------------------------------------------------

    def transform(self, script):
        """Stages 1-3: infer bounds and translate.

        Returns:
            ``(TransformResult, BoundInference, t_trans)``.

        Raises:
            TransformError: unsupported constraint or unrepresentable
                constants at the chosen width.
        """
        # t_trans covers analysis + translation; on the trace it splits
        # evenly between the two stages (TRANSLATE_COST_PER_NODE == 2:
        # one unit per node to analyze, one to translate).
        size = script.size()
        with telemetry.span("infer") as span:
            inference = infer_bounds(script)
            span.set_attr("theory", inference.theory)
            span.add_work(size)
        with telemetry.span("transform") as span:
            if inference.theory == "int":
                width = self._choose_int_width(inference)
                result = transform_script(script, "int", width=width)
            else:
                shape = self._choose_shape(inference)
                result = transform_script(script, "real", shape=shape)
            span.set_attr("width", result.width)
            t_trans = TRANSLATE_COST_PER_NODE * size
            span.settle(t_trans - size)
        return result, inference, t_trans

    def run(self, script, budget=None):
        """Run the full pipeline on one unbounded script.

        Args:
            script: the original constraint.
            budget: unified work budget for the bounded solve.

        Returns:
            An :class:`ArbitrageReport`.
        """
        try:
            transformed, inference, t_trans = self.transform(script)
        except TransformError:
            # The failed attempt still analyzed and translated the
            # script; charging zero would undercount every retry loop
            # that probes widths (the telemetry spans already record
            # this work -- the report must agree with them).
            return self._finish(
                ArbitrageReport(
                    CASE_TRANSFORM_FAILED,
                    t_trans=TRANSLATE_COST_PER_NODE * script.size(),
                )
            )

        bounded_script = transformed.script
        if self.optimizer is not None:
            # RQ2: chain a bounded-constraint optimizer (SLOT) after the
            # arbitrage; its cost is part of T_trans.
            with telemetry.span("transform", phase="slot") as span:
                bounded_script = self.optimizer(bounded_script)
                extra = TRANSLATE_COST_PER_NODE * transformed.script.size()
                t_trans += extra
                span.add_work(extra)

        if guard.active().interrupted("pipeline"):
            # The envelope died during transformation: degrade without
            # starting the bounded solve.
            return self._finish(
                ArbitrageReport(
                    CASE_BOUNDED_UNKNOWN,
                    t_trans=t_trans,
                    width=transformed.width,
                    shape=transformed.shape,
                    inference=inference,
                    bounded_status="unknown",
                )
            )

        remaining = None if budget is None else max(1, budget - t_trans)
        store = solve_cache.get_cache()
        if (
            store is not None
            and store.has_cores()
            and bounded_script.assertions
            and store.find_core(
                script_digests(bounded_script), kind="arbitrage"
            )
            is not None
        ):
            # A cached unsat core subsumes the transformed script: the
            # bounded side is unsat with zero solver work, so the
            # bounded-solve span never opens.
            stats = unified_stats(core_reuse=True)
            stats["width"] = transformed.width
            return self._finish(
                ArbitrageReport(
                    CASE_BOUNDED_UNSAT,
                    t_trans=t_trans,
                    t_post=0,
                    width=transformed.width,
                    shape=transformed.shape,
                    inference=inference,
                    bounded_status="unsat",
                    stats=stats,
                )
            )

        plan = chaos.active()
        injected_before = plan.total_injected if plan is not None else 0
        with telemetry.span("bounded-solve", width=transformed.width) as span:
            bounded = solve_bounded_script(bounded_script, max_work=remaining)
            t_post = costs.from_sat(bounded.work)
            span.set_attr("status", bounded.status)
            span.settle(t_post)
        stats = bounded.stats_dict()
        stats["width"] = transformed.width
        common = dict(
            t_trans=t_trans,
            t_post=t_post,
            width=transformed.width,
            shape=transformed.shape,
            inference=inference,
            bounded_status=bounded.status,
            stats=stats,
        )

        if bounded.status == "unknown":
            return self._finish(ArbitrageReport(CASE_BOUNDED_UNKNOWN, **common))
        if bounded.status == "unsat":
            # Original-unsat and bounds-insufficient are indistinguishable
            # (Fig. 6 case 1): revert.
            if (
                store is not None
                and store.core_reuse
                and bounded_script.assertions
                and guard.active().reason not in ("deadline", "cancelled", "parent")
                and (plan is None or plan.total_injected == injected_before)
            ):
                digests = assertion_core_digests(bounded_script, max_work=remaining)
                if digests is not None:
                    store.add_core(digests, kind="arbitrage")
            return self._finish(ArbitrageReport(CASE_BOUNDED_UNSAT, **common))

        case, candidate, t_check = check_candidate(script, transformed, bounded.model)
        common["t_check"] = t_check
        return self._finish(ArbitrageReport(case, model=candidate, **common))

    @staticmethod
    def _finish(report):
        """Telemetry hook: label the report and bump the Fig. 6 counters."""
        report.stats["case"] = report.case
        if telemetry.enabled:
            telemetry.counter_add("arbitrage.case", case=report.case)
            if report.width is not None:
                telemetry.observe("arbitrage.width", int(report.width))
            telemetry.observe("arbitrage.total_work", report.total_work)
        return report


def portfolio_time(t_pre, report):
    """User-observed cost under the two-core portfolio (Section 5.1).

    Args:
        t_pre: unified work of solving the original constraint (with
            timeouts clamped to the budget).
        report: the :class:`ArbitrageReport` for the same constraint.

    Returns:
        ``min(t_pre, report.total_work)`` when STAUB's run produced a
        usable answer, else ``t_pre``.

    Implemented on the portfolio scheduler's accounting
    (:func:`repro.portfolio.scheduler.race_precomputed`): the original
    lane is always conclusive (its timeout *is* the fallback answer the
    user waits for), the STAUB lane only when the model verified.
    """
    lanes = [
        PrecomputedAttempt("original", conclusive=True, work=t_pre),
        PrecomputedAttempt("staub", conclusive=report.usable, work=report.total_work),
    ]
    return race_precomputed(lanes).observed_work
