"""Iterative bound refinement (Section 6.2's proposed extension).

The base pipeline picks one width and gives up (reverts) when the bounded
constraint is unsatisfiable -- insufficient bounds and genuine unsat are
indistinguishable. The refinement loop instead *widens and retries*:

    width_0 = inferred width
    width_{k+1} = growth_factor * width_k      (until a cap or budget)

Every retry costs bounded-solver time, which is exactly the tradeoff the
paper's discussion predicts ("checking whether the bounds are too large
or too small likely requires solving a constraint"); the ablation
benchmark quantifies it on the NIA suite.

Two engines implement the loop:

**Scratch** (the baseline): every round runs the full pipeline again --
re-transform, re-blast, re-solve from nothing.

**Incremental** (``incremental=True``, int theory): bound inference runs
once, and each scheduled round transforms and bit-blasts into a
persistent :class:`~repro.bv.solver.IncrementalBoundedSession` whose
encoding width is exactly the round width -- byte-for-byte the scratch
encoding, so the two engines agree on every round's verdict by
construction. The reuse happens *inside* a round: every variable carries
the effective width the previous rounds proved sufficient for it, and
enters the new round as an *assumption literal* saying "this variable is
the sign-extension of its low ``v`` bits" (a width-``v`` slice of the
round's encoding). A bounded-UNSAT then yields the failing assumptions
as an unsat core:

- core names variables below the round width -> widen *only those*
  (core-guided widening), retract just their assumptions, and re-solve
  on the warm solver -- learned clauses survive, nothing is re-encoded;
- core names no retractable variable -> the round width itself is the
  problem: escalate the global schedule (all carried widths ride along);
- core is empty (a root conflict) -> the encoding is contradictory
  without any assumption, i.e. UNSAT at this width outright.

With ``headroom > 0`` the encoding is built ``headroom`` growth steps
*wider* than the round, each tracked arithmetic result is additionally
assumed to fit the round width (reproducing the scratch overflow-guard
semantics at the narrower slice), and consecutive scheduled rounds
share one encoding with retraction in between. That buys width-
independent UNSAT detection -- a root conflict at a ceiling that already
reaches ``max_width`` proves every remaining round useless, and they
are skipped -- at the price of searching a wider circuit, which on
multiplication-heavy constraints costs more than it saves; hence the
default is ``headroom=0``.

Conclusive rounds are cached per (script, width state) via
:func:`repro.cache.keys.refine_round_key`, so a warm refinement replays
round by round without touching the SAT solver.

A verified model at any round is still checked against the original under
exact semantics, so the refinement loop preserves the pipeline's
correctness contract unchanged.
"""

from repro import cache as solve_cache
from repro import telemetry
from repro.bv.solver import IncrementalBoundedSession
from repro.cache.keys import refine_round_key
from repro.cache.store import (
    entry_from_refine_round,
    entry_from_report,
    refine_round_from_entry,
    report_from_entry,
)
from repro.core.inference import infer_bounds
from repro.core.pipeline import (
    CASE_BOUNDED_UNKNOWN,
    CASE_BOUNDED_UNSAT,
    CASE_TRANSFORM_FAILED,
    ArbitrageReport,
    Staub,
    check_candidate,
)
from repro.core.transform import transform_script
from repro.errors import TransformError
from repro.guard import chaos
from repro.solver import costs
from repro.telemetry.stats import unified_stats

#: Conflict cap for the phase-advancing solves inside an incremental
#: round (the capped full-width attempt and the narrow-slice probes).
#: Deliberately small: a capped attempt exists to harvest cheap verdicts
#: and learned clauses, not to search -- anything hard falls through to
#: the uncapped full-width phase.
PROBE_CONFLICTS = 8


def _bill(work, remaining):
    """Work billed to the loop for one round: never above the remaining
    budget. An exhausted round's raw work overshoots the budget by
    whatever the solver's last check-granule was -- a nondeterministic-
    looking artifact of where the check fell, not a fact about the
    instance. Billing ``min(work, remaining)`` makes a budget-bound loop
    total exactly the budget (the evaluation's timeout convention), in
    both engines identically.
    """
    if remaining is None:
        return work
    return min(work, max(0, remaining))


class RefinementReport:
    """Outcome of the refinement loop.

    Attributes:
        final: the last :class:`ArbitrageReport`.
        rounds: list of (width, case) pairs, in execution order. The
            width is the one the round actually solved at (None when the
            inferred round never chose one, e.g. inference itself failed).
        total_work: cumulative work across every round.
        mode: ``"scratch"`` or ``"incremental"``.
        budget_exhausted: True when the loop stopped because
            ``total_work`` reached the budget with rounds still pending;
            ``final`` is then a structured bounded-unknown whose stats
            carry ``gave_up = "refinement"``.
        cache_hits: rounds answered from the solve cache.
        clauses_reused: learned clauses carried into round starts
            (incremental mode; summed over all solver calls).
        core_widened: variable-widening events driven by unsat cores.
        subrounds: individual solver calls (incremental mode counts the
            core-guided re-solves inside a scheduled round).
    """

    def __init__(
        self,
        final,
        rounds,
        total_work,
        mode="scratch",
        budget_exhausted=False,
        cache_hits=0,
        clauses_reused=0,
        core_widened=0,
        subrounds=0,
    ):
        self.final = final
        self.rounds = rounds
        self.total_work = total_work
        self.mode = mode
        self.budget_exhausted = budget_exhausted
        self.cache_hits = cache_hits
        self.clauses_reused = clauses_reused
        self.core_widened = core_widened
        self.subrounds = subrounds

    @property
    def case(self):
        return self.final.case

    @property
    def model(self):
        return self.final.model

    @property
    def usable(self):
        return self.final.usable

    def __repr__(self):
        return f"RefinementReport({self.case}, mode={self.mode}, rounds={self.rounds})"


class RefinementStaub:
    """STAUB with iterative width refinement on bounded-unsat.

    Args:
        growth_factor: multiplicative width growth per round (> 1).
        max_rounds: retry cap (including the initial round).
        max_width: hard width ceiling; refinement stops there.
        initial_width: pin the first round's width instead of inferring
            it. Must be a positive int: an explicit 0 would silently
            shadow the "inferred" sentinel in every falsy-width check, so
            it is rejected here rather than misbehaving later.
        incremental: reuse one persistent SAT session across rounds with
            core-guided widening (int theory; real constraints fall back
            to the scratch engine).
        headroom: growth steps of *encoding* headroom in incremental
            mode. 0 (default) encodes each round at exactly its width;
            ``k > 0`` encodes ``k`` growth steps wider so consecutive
            rounds share one encoding and a root conflict at the ceiling
            can prove the remaining rounds useless (see the module
            docstring for the tradeoff).
        cache: a :class:`~repro.cache.store.SolveCache` for per-round
            results; defaults to the process-wide cache
            (:func:`repro.cache.get_cache`) at run time.
    """

    def __init__(
        self,
        growth_factor=2,
        max_rounds=3,
        max_width=24,
        initial_width=None,
        incremental=False,
        headroom=0,
        cache=None,
    ):
        if growth_factor <= 1:
            raise ValueError("growth_factor must be greater than 1")
        if not isinstance(max_rounds, int) or max_rounds < 1:
            raise ValueError("max_rounds must be a positive integer")
        if not isinstance(max_width, int) or max_width < 1:
            raise ValueError("max_width must be a positive integer")
        if initial_width is not None and (
            not isinstance(initial_width, int) or initial_width < 1
        ):
            raise ValueError(
                "initial_width must be a positive integer, or None to infer"
            )
        if not isinstance(headroom, int) or headroom < 0:
            raise ValueError("headroom must be a non-negative integer")
        self.growth_factor = growth_factor
        self.max_rounds = max_rounds
        self.max_width = max_width
        self.initial_width = initial_width
        self.incremental = incremental
        self.headroom = headroom
        self.cache = cache

    def run(self, script, budget=None):
        """Run the refinement loop; returns a :class:`RefinementReport`."""
        store = self.cache if self.cache is not None else solve_cache.get_cache()
        if self.incremental:
            return self._run_incremental(script, budget, store)
        return self._run_scratch(script, budget, store)

    # -- shared helpers ----------------------------------------------------

    def _grow(self, width, cap=None):
        cap = self.max_width if cap is None else cap
        return min(cap, max(width + 1, int(width * self.growth_factor)))

    def _ceiling(self, width):
        """Encoding width for a round: ``headroom`` growth steps above."""
        ceiling = width
        for _ in range(self.headroom):
            if ceiling >= self.max_width:
                break
            ceiling = self._grow(ceiling)
        return ceiling

    @staticmethod
    def _exhausted_report(width, inference):
        """The structured bounded-unknown surfaced on budget exhaustion."""
        stats = unified_stats(case=CASE_BOUNDED_UNKNOWN)
        stats["gave_up"] = "refinement"
        return ArbitrageReport(
            CASE_BOUNDED_UNKNOWN,
            width=width,
            inference=inference,
            bounded_status="unknown",
            stats=stats,
        )

    # -- scratch engine ----------------------------------------------------

    def _run_scratch(self, script, budget, store):
        rounds = []
        total_work = 0
        cache_hits = 0
        budget_exhausted = False
        pinned = self.initial_width is not None
        # Round 0 uses the abstract-interpretation width unless the user
        # pinned a starting width (the paper's user-specified-width knob).
        spec = self.initial_width if pinned else "absint"
        report, hit = self._scratch_round(script, spec, budget, store)
        cache_hits += hit
        width = report.width if report.width is not None else self.initial_width
        rounds.append((width, report.case))
        total_work += _bill(report.total_work, budget)

        # transform-failed with a user-pinned width means "constants did
        # not fit" -- widening fixes that too. With the inferred width the
        # failure is structural (unsupported operators) and final.
        while (
            (
                report.case == CASE_BOUNDED_UNSAT
                or (report.case == CASE_TRANSFORM_FAILED and pinned)
            )
            and len(rounds) < self.max_rounds
            and width is not None
            and width < self.max_width
        ):
            if budget is not None and total_work >= budget:
                # Spent out with rounds still pending: stop here instead
                # of spinning further rounds on a floor-clamped budget.
                budget_exhausted = True
                report = self._exhausted_report(width, report.inference)
                break
            width = self._grow(width)
            remaining = None if budget is None else budget - total_work
            report, hit = self._scratch_round(script, width, remaining, store)
            cache_hits += hit
            recorded = report.width if report.width is not None else width
            rounds.append((recorded, report.case))
            total_work += _bill(report.total_work, remaining)
            if report.case == CASE_BOUNDED_UNKNOWN:
                break
        telemetry.counter_add("refine.rounds", amount=len(rounds), mode="scratch")
        return RefinementReport(
            report,
            rounds,
            total_work,
            mode="scratch",
            budget_exhausted=budget_exhausted,
            cache_hits=cache_hits,
        )

    def _scratch_round(self, script, spec, remaining, store):
        """One full-pipeline round, consulted against / stored in the cache.

        ``spec`` is the width to pin, or ``"absint"`` for the inferred
        round. Returns ``(report, hit)``.
        """
        key = None
        if store is not None:
            # Scratch rounds are self-contained solves: the loop's width
            # ceiling does not change their outcome, so it is not keyed.
            key = refine_round_key(script, spec, "scratch", None)
            entry = store.get(key, kind="refine")
            if entry is not None and entry.get("mode") == "scratch":
                telemetry.counter_add("refine.cache_hit", mode="scratch")
                return report_from_entry(entry), 1
        staub = Staub() if spec == "absint" else Staub(width_strategy=spec)
        plan = chaos.active()
        injected_before = plan.total_injected if plan is not None else 0
        with telemetry.span("refinement.round", mode="scratch") as span:
            report = staub.run(script, budget=remaining)
            span.set_attr("width", report.width)
            span.set_attr("case", report.case)
        if (
            key is not None
            and report.case != CASE_BOUNDED_UNKNOWN
            and (plan is None or plan.total_injected == injected_before)
        ):
            # Only conclusive rounds are stored -- an unknown is a budget
            # artifact, not a fact about the script -- and never ones a
            # fault was injected into.
            try:
                store.put(key, entry_from_report(report), kind="refine")
            except TypeError:
                pass  # model value the cache cannot encode
        return report, 0

    # -- incremental engine ------------------------------------------------

    def _run_incremental(self, script, budget, store):
        try:
            inference = infer_bounds(script)
        except TransformError:
            inference = None
        if inference is None or inference.theory != "int":
            # Real constraints keep the scratch loop: the fixed-point
            # encoding re-chooses magnitude/precision per round, so there
            # is no slice-of-a-wider-encoding structure to reuse. A
            # failed inference falls back too, reproducing the scratch
            # loop's transform-failed behavior exactly.
            return self._run_scratch(script, budget, store)

        pinned = self.initial_width is not None
        if pinned:
            width = self.initial_width
        else:
            width = Staub()._choose_int_width(inference)

        # Bound inference runs once for the whole loop (scratch re-infers
        # every round); its half of the per-round analyze+translate cost
        # is therefore charged once, and each stage pays translation only.
        size = script.size()

        rounds = []
        total_work = size
        t_trans = 0
        budget_exhausted = False
        transformed = None
        ceiling = 0
        var_widths = {}
        # Effective widths the earlier rounds settled on per variable; a
        # variable absent from a round's unsat cores keeps its narrow
        # width into the next round (as an assumption slice). Variables
        # without an entry default to the previous scheduled width, so
        # every widened round starts from the slice the last round
        # explored and lets the unsat core decide what actually grows.
        carry = {}
        prev_width = None
        ctx = {
            "session": None,
            "cache_hits": 0,
            "clauses_reused": 0,
            "core_widened": 0,
            "subrounds": 0,
        }
        final = None

        while True:
            with telemetry.span(
                "refinement.round", mode="incremental", width=width
            ) as span:
                if transformed is None or width > ceiling:
                    new_ceiling = self._ceiling(width)
                    fits = True
                    if transformed is None and new_ceiling > width:
                        # Parity probe: a scratch round at this width
                        # fails (and charges nothing) when a constant
                        # does not fit it, even though the wider ceiling
                        # encoding would; fit is monotone in width, so
                        # once a probe passes, wider rounds pass too.
                        fits = self._int_transform_fits(script, width)
                    if fits:
                        try:
                            with telemetry.span(
                                "transform", incremental=True
                            ) as tspan:
                                transformed = transform_script(
                                    script, "int", width=new_ceiling
                                )
                                t_trans = size
                                tspan.set_attr("width", transformed.width)
                                tspan.add_work(t_trans)
                        except TransformError:
                            transformed = None
                            fits = False
                    if not fits:
                        # The probe is a translation attempt; inference
                        # was already paid for once, so only the
                        # translate half of the round cost is charged.
                        total_work += _bill(
                            size, None if budget is None else budget - total_work
                        )
                        span.set_attr("case", CASE_TRANSFORM_FAILED)
                        rounds.append((width, CASE_TRANSFORM_FAILED))
                        final = Staub._finish(
                            ArbitrageReport(
                                CASE_TRANSFORM_FAILED,
                                t_trans=size,
                                inference=inference,
                            )
                        )
                        if (
                            pinned
                            and len(rounds) < self.max_rounds
                            and width < self.max_width
                        ):
                            if budget is not None and total_work >= budget:
                                budget_exhausted = True
                                final = self._exhausted_report(width, inference)
                                break
                            # A failed transform says nothing about which
                            # widths suffice -- carrying slices out of it
                            # would be pure speculation, and a wrong
                            # guess costs whole solver calls against an
                            # accounting margin of one script-size unit.
                            # The next round enters at full width.
                            prev_width = None
                            width = self._grow(width)
                            continue
                        break
                    ceiling = new_ceiling
                    total_work += _bill(
                        t_trans, None if budget is None else budget - total_work
                    )
                    ctx["session"] = None
                    # Variables enter at the carried width when one was
                    # learned, defaulting to the previous scheduled
                    # width, clamped to this round's. The first round
                    # has neither, so it is exactly a scratch solve (no
                    # assumptions to churn on a cold solver).
                    entry = width if prev_width is None else prev_width
                    var_widths = {
                        name: min(width, carry.get(name, entry))
                        for name, sort in transformed.script.declarations.items()
                        if sort.is_bv
                    }

                kind, payload, round_work = self._incremental_round(
                    script, transformed, ctx, width, ceiling, var_widths,
                    budget, total_work, store,
                )
                round_work = _bill(
                    round_work,
                    None if budget is None else budget - total_work,
                )
                total_work += round_work
                span.set_attr("subrounds", ctx["subrounds"])

                if kind == "exhausted":
                    span.set_attr("case", CASE_BOUNDED_UNKNOWN)
                    budget_exhausted = True
                    final = self._exhausted_report(width, inference)
                    break
                if kind == "unknown":
                    span.set_attr("case", CASE_BOUNDED_UNKNOWN)
                    rounds.append((width, CASE_BOUNDED_UNKNOWN))
                    final = Staub._finish(
                        ArbitrageReport(
                            CASE_BOUNDED_UNKNOWN,
                            t_trans=t_trans,
                            t_post=round_work,
                            width=width,
                            inference=inference,
                            bounded_status="unknown",
                        )
                    )
                    break
                if kind == "sat":
                    case, candidate, t_check = payload
                    span.set_attr("case", case)
                    rounds.append((width, case))
                    final = Staub._finish(
                        ArbitrageReport(
                            case,
                            model=candidate,
                            t_trans=t_trans,
                            t_post=round_work - t_check,
                            t_check=t_check,
                            width=width,
                            inference=inference,
                            bounded_status="sat",
                        )
                    )
                    break

                # unsat at this width
                span.set_attr("case", CASE_BOUNDED_UNSAT)
                rounds.append((width, CASE_BOUNDED_UNSAT))
                if kind == "unsat-escalate" and (
                    len(rounds) < self.max_rounds and width < self.max_width
                ):
                    if budget is not None and total_work >= budget:
                        budget_exhausted = True
                        final = self._exhausted_report(width, inference)
                        break
                    # Whatever widths this round settled on ride into
                    # the next one as its entry assumptions (clamped to
                    # the old round width, so the next round starts one
                    # schedule step behind and its unsat core decides
                    # what actually widens). Only a real solve round
                    # earns this: the slices say "these widths were
                    # enough for everything the last conflict did not
                    # complain about".
                    carry = dict(var_widths)
                    prev_width = width
                    width = self._grow(width)
                    continue
                if kind == "unsat-stop":
                    # Width-independent conflict: every wider round would
                    # return the same answer, so they are skipped.
                    telemetry.counter_add("refine.rounds_skipped", mode="incremental")
                final = Staub._finish(
                    ArbitrageReport(
                        CASE_BOUNDED_UNSAT,
                        t_trans=t_trans,
                        t_post=round_work,
                        width=width,
                        inference=inference,
                        bounded_status="unsat",
                    )
                )
                break

        telemetry.counter_add("refine.rounds", amount=len(rounds), mode="incremental")
        telemetry.counter_add(
            "refine.subrounds", amount=ctx["subrounds"], mode="incremental"
        )
        return RefinementReport(
            final,
            rounds,
            total_work,
            mode="incremental",
            budget_exhausted=budget_exhausted,
            cache_hits=ctx["cache_hits"],
            clauses_reused=ctx["clauses_reused"],
            core_widened=ctx["core_widened"],
            subrounds=ctx["subrounds"],
        )

    @staticmethod
    def _int_transform_fits(script, width):
        """Whether a width-``width`` int transform is representable."""
        try:
            transform_script(script, "int", width=width)
        except TransformError:
            return False
        return True

    def _incremental_round(
        self, script, transformed, ctx, width, ceiling, var_widths,
        budget, spent, store,
    ):
        """One scheduled round at global width ``width``.

        A round whose entry slices are all at the round width (the first
        solve round, and every round after a transform-failed one) is a
        single solve -- no assumptions, no caps: exactly the scratch
        round. A round entered with narrow slices (carried out of a
        previous unsat round) runs in phases on one warm solver:

        1. a conflict-capped solve at the full round width -- no
           assumption ladders built at all, so a round the scratch
           engine finishes quickly concludes here at exactly scratch
           cost (a capped solve that concludes took the identical
           search);
        2. on cap-out, the narrow entry slices as assumptions, iterating
           core-guided widening: an UNSAT whose core names variables
           still below ``width`` widens just those and re-solves warm --
           learned clauses survive, nothing is re-encoded;
        3. a final uncapped full-width solve if the slices keep stalling.

        Every conclusive answer comes from the same encoding a scratch
        round at ``width`` uses (a model under extra assumptions is a
        model, and a conclusive UNSAT is assumption-free), so the
        round's verdict is identical to scratch regardless of which
        phase concluded.

        Returns ``(kind, payload, work)`` with kind one of ``"sat"``
        (payload ``(case, model, t_check)``), ``"unsat-stop"``
        (width-independent), ``"unsat-escalate"``, ``"unknown"``, or
        ``"exhausted"``.
        """
        work = 0
        full = {name: width for name in var_widths}
        lazy = any(value < width for value in var_widths.values())
        phase = "full-capped" if lazy else "full"
        # Each probe pass widens at least one variable and each cap-out
        # advances the phase, so the loop is bounded by total available
        # widening; the cap is a defensive backstop.
        cap = 6 + 4 * len(var_widths)
        for _ in range(cap):
            if budget is not None and spent + work >= budget:
                return "exhausted", None, work
            remaining = None if budget is None else budget - spent - work
            capped = phase != "full"
            result, hit = self._solve_sub_round(
                script, transformed, ctx, width, ceiling,
                var_widths if phase == "probe" else full,
                remaining, PROBE_CONFLICTS if capped else None, store,
            )
            ctx["subrounds"] += 1
            ctx["cache_hits"] += hit
            ctx["clauses_reused"] += result.reused_clauses
            telemetry.counter_add(
                "refine.clauses_reused", amount=result.reused_clauses
            )
            work += costs.from_sat(result.work)
            if result.status == "unknown":
                if capped and (remaining is None or result.work < remaining):
                    # The conflict cap bit, not the budget: advance to
                    # the next phase on the (now warm) solver.
                    phase = "probe" if phase == "full-capped" else "full"
                    continue
                return "unknown", result, work
            if result.status == "sat":
                case, candidate, t_check = check_candidate(
                    script, transformed, result.model
                )
                work += t_check
                return "sat", (case, candidate, t_check), work
            # unsat: read the assumption core
            if result.root_conflict or not result.assumed:
                # Nothing retractable was involved: the *ceiling* encoding
                # is unsatisfiable, which covers every width up to it
                # (the underapproximation grows with width). Only when the
                # ceiling already reaches the loop's cap is that a
                # width-independent verdict; otherwise a wider stage may
                # still answer differently.
                if ceiling >= self.max_width:
                    return "unsat-stop", result, work
                return "unsat-escalate", result, work
            widenable = [
                name for name in result.core if var_widths.get(name, width) < width
            ]
            if not widenable:
                # Either the round-width guards bind or every core
                # variable is already at the round width (possible under
                # an encoding ceiling above the round): the fix is global
                # growth, not more per-variable widening.
                return "unsat-escalate", result, work
            for name in widenable:
                var_widths[name] = self._grow(var_widths[name], cap=width)
            ctx["core_widened"] += len(widenable)
            telemetry.counter_add("refine.core_vars", amount=len(widenable))
            phase = "probe"
        return "unsat-escalate", None, work

    def _solve_sub_round(
        self, script, transformed, ctx, width, ceiling, widths,
        remaining, max_conflicts, store,
    ):
        """One solver call (or cache replay) at an exact width state."""
        key = None
        if store is not None:
            # The key pins the solver-state position (sub-round ordinal)
            # and conflict cap alongside the width state: a sub-round's
            # work depends on the learned clauses accumulated before it,
            # so only the exact same point in the exact same schedule may
            # replay it.
            key = refine_round_key(
                script,
                dict(widths),
                f"incremental/g{width}/s{ctx['subrounds']}/c{max_conflicts or 0}",
                ceiling,
            )
            entry = store.get(key, kind="refine")
            if entry is not None and entry.get("mode") == "incremental":
                telemetry.counter_add("refine.cache_hit", mode="incremental")
                return refine_round_from_entry(entry), 1
        if ctx["session"] is None:
            # Lazy: a fully warm replay never pays for blasting at all.
            ctx["session"] = IncrementalBoundedSession(
                transformed.script, tracked=transformed.tracked
            )
        plan = chaos.active()
        injected_before = plan.total_injected if plan is not None else 0
        result = ctx["session"].solve_round(
            widths, guard_width=width, max_work=remaining,
            max_conflicts=max_conflicts,
        )
        # Conclusive answers are facts about the width state; a *capped*
        # unknown (the conflict cap bit before the budget did) is a
        # deterministic phase step and replays too. A budget unknown is
        # an artifact of this run's remaining budget and is never stored.
        conclusive = result.status != "unknown"
        capped_out = max_conflicts is not None and (
            remaining is None or result.work < remaining
        )
        if (
            key is not None
            and (conclusive or capped_out)
            and (plan is None or plan.total_injected == injected_before)
        ):
            try:
                store.put(key, entry_from_refine_round(result), kind="refine")
            except TypeError:
                pass  # model value the cache cannot encode
        return result, 0
