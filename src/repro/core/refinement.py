"""Iterative bound refinement (Section 6.2's proposed extension).

The base pipeline picks one width and gives up (reverts) when the bounded
constraint is unsatisfiable -- insufficient bounds and genuine unsat are
indistinguishable. The refinement loop instead *widens and retries*:

    width_0 = inferred width
    width_{k+1} = growth_factor * width_k      (until a cap or budget)

Every retry costs bounded-solver time, which is exactly the tradeoff the
paper's discussion predicts ("checking whether the bounds are too large
or too small likely requires solving a constraint"); the ablation
benchmark quantifies it on the NIA suite.

A verified model at any round is still checked against the original under
exact semantics, so the refinement loop preserves the pipeline's
correctness contract unchanged.
"""

from repro.core.pipeline import (
    CASE_BOUNDED_UNKNOWN,
    CASE_BOUNDED_UNSAT,
    CASE_TRANSFORM_FAILED,
    CASE_VERIFIED_SAT,
    ArbitrageReport,
    Staub,
)


class RefinementReport:
    """Outcome of the refinement loop.

    Attributes:
        final: the last :class:`ArbitrageReport`.
        rounds: list of (width, case) pairs, in execution order.
        total_work: cumulative work across every round.
    """

    def __init__(self, final, rounds, total_work):
        self.final = final
        self.rounds = rounds
        self.total_work = total_work

    @property
    def case(self):
        return self.final.case

    @property
    def model(self):
        return self.final.model

    @property
    def usable(self):
        return self.final.usable

    def __repr__(self):
        return f"RefinementReport({self.case}, rounds={self.rounds})"


class RefinementStaub:
    """STAUB with iterative width refinement on bounded-unsat.

    Args:
        growth_factor: multiplicative width growth per round.
        max_rounds: retry cap (including the initial round).
        max_width: hard width ceiling; refinement stops there.
    """

    def __init__(self, growth_factor=2, max_rounds=3, max_width=24, initial_width=None):
        self.growth_factor = growth_factor
        self.max_rounds = max_rounds
        self.max_width = max_width
        self.initial_width = initial_width

    def run(self, script, budget=None):
        """Run the refinement loop; returns a :class:`RefinementReport`."""
        rounds = []
        total_work = 0
        # Round 0 uses the abstract-interpretation width unless the user
        # pinned a starting width (the paper's user-specified-width knob).
        if self.initial_width is None:
            staub = Staub()
        else:
            staub = Staub(width_strategy=self.initial_width)
        report = staub.run(script, budget=budget)
        rounds.append((report.width or self.initial_width, report.case))
        total_work += report.total_work

        # transform-failed with a user-pinned width means "constants did
        # not fit" -- widening fixes that too. With the inferred width the
        # failure is structural (unsupported operators) and final.
        width = report.width if report.width is not None else self.initial_width
        while (
            (
                report.case == CASE_BOUNDED_UNSAT
                or (report.case == CASE_TRANSFORM_FAILED and self.initial_width)
            )
            and len(rounds) < self.max_rounds
            and width is not None
            and width < self.max_width
        ):
            width = min(self.max_width, width * self.growth_factor)
            remaining = None if budget is None else max(1, budget - total_work)
            report = Staub(width_strategy=width).run(script, budget=remaining)
            rounds.append((width, report.case))
            total_work += report.total_work
            if report.case == CASE_BOUNDED_UNKNOWN:
                break
        return RefinementReport(report, rounds, total_work)
