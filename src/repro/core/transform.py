"""Constraint transformation: unbounded -> bounded (Section 4.3).

Integer constraints become bitvector constraints of an inferred width with
overflow-guard assertions (``(assert (not (bvsmulo x x)))`` and friends)
that pin the bounded semantics to the unbounded ones.

Real constraints become *fixed-point* bitvector constraints: a real value
``v`` is represented by the signed ``(M+P)``-bit vector of ``v * 2**P``,
where ``(M, P)`` comes straight from the magnitude/precision abstract
domain. Addition is exact; multiplication and division truncate like
floating-point rounding would, which reproduces the paper's
semantic-difference behaviour for real arithmetic (DESIGN.md discusses
this substitution).

The result carries a ``back_map`` that converts bounded models into
candidate assignments for the original constraint -- the inverse phi of
the sort correspondence -- consumed by the verification step.
"""

from fractions import Fraction

from repro.core.correspondence import (
    INT_OVERFLOW_GUARDS,
    INT_TO_BITVECTOR,
    REAL_TO_FIXEDPOINT,
    FixedPointShape,
)
from repro.errors import TransformError
from repro.smtlib import build
from repro.smtlib.script import Script
from repro.smtlib.sorts import BOOL, INT, REAL
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue


class TransformResult:
    """A bounded script plus the metadata needed to interpret its models.

    Attributes:
        script: the bounded :class:`Script` (QF_BV).
        theory: ``"int"`` or ``"real"``.
        width: total bitvector width used for variables.
        shape: the :class:`FixedPointShape` (real case only, else None).
        guards: number of overflow/semantics guard assertions added.
        inexact_constants: True when some real constant had to be rounded
            to the fixed-point grid (a semantic difference risk).
        correspondence: the :class:`SortCorrespondence` used.
        tracked: arithmetic result terms of the bounded script (int case
            only). A width-``w`` round of the incremental refinement
            engine assumes each of these fits ``w`` bits, which -- given
            the hard full-width guards -- is exactly the width-``w``
            overflow-guard semantics of a scratch transform at ``w``.
    """

    def __init__(
        self,
        script,
        theory,
        width,
        shape,
        guards,
        inexact_constants,
        correspondence,
        tracked=(),
    ):
        self.script = script
        self.theory = theory
        self.width = width
        self.shape = shape
        self.guards = guards
        self.inexact_constants = inexact_constants
        self.correspondence = correspondence
        self.tracked = tracked

    def back_map(self, bounded_model):
        """Convert a bounded model into an unbounded candidate assignment."""
        assignment = {}
        for name, value in bounded_model.items():
            if isinstance(value, BVValue):
                if self.theory == "int":
                    assignment[name] = self.correspondence.phi_inverse(value, self.width)
                else:
                    assignment[name] = self.correspondence.phi_inverse(value, self.shape)
            else:
                assignment[name] = value
        return assignment

    def __repr__(self):
        return (
            f"TransformResult({self.theory}, width={self.width}, "
            f"guards={self.guards})"
        )


class _IntTransformer:
    """Int -> BitVec translation with overflow guards."""

    def __init__(self, width):
        self.width = width
        self.sort_width = width
        self.guards = []
        self._guarded = set()
        self.tracked = []
        self._tracked_ids = set()

    def _track(self, term):
        """Record an arithmetic result for width-sliced refinement guards."""
        if term.tid not in self._tracked_ids:
            self._tracked_ids.add(term.tid)
            self.tracked.append(term)
        return term

    def _guard(self, op, operands):
        guard_pred = INT_OVERFLOW_GUARDS.get(op)
        if guard_pred is None:
            return
        if guard_pred is Op.BVNEGO:
            guard = build.BVNegO(operands[0])
        else:
            guard = build.bv_overflow(guard_pred, operands[0], operands[1])
        negated = build.Not(guard)
        if negated.tid not in self._guarded:
            self._guarded.add(negated.tid)
            self.guards.append(negated)

    def _fold(self, op, mapped_args):
        result = mapped_args[0]
        for arg in mapped_args[1:]:
            self._guard(op, (result, arg))
            result = self._track(build.bv_binary(op, result, arg))
        return result

    def transform_node(self, term, new_args):
        op = term.op
        if op is Op.CONST:
            if term.sort is INT:
                image = INT_TO_BITVECTOR.phi(term.value, self.width)
                if image is None:
                    raise TransformError(
                        f"constant {term.value} does not fit in width {self.width}"
                    )
                return build.BitVecConst(image, self.width)
            return term
        if op is Op.VAR:
            if term.sort is INT:
                return build.BitVecVar(term.name, self.width)
            return term
        if term.sort is BOOL and op in (Op.LE, Op.LT, Op.GE, Op.GT):
            mapped = INT_TO_BITVECTOR.map_operator(op)
            return build.bv_compare(mapped, new_args[0], new_args[1])
        if op in (Op.ADD, Op.SUB, Op.MUL):
            mapped = INT_TO_BITVECTOR.map_operator(op)
            return self._fold(mapped, new_args)
        if op is Op.NEG:
            self._guard(Op.BVNEG, (new_args[0],))
            return self._track(build.BVNeg(new_args[0]))
        if op is Op.ABS:
            self._guard(Op.BVABS, (new_args[0],))
            return self._track(build.BVAbs(new_args[0]))
        if op is Op.IDIV or op is Op.MOD:
            dividend, divisor = new_args
            # Euclidean div/mod agree with bvsdiv/bvsmod exactly on the
            # region dividend >= 0 and divisor > 0; restrict to it (a
            # further underapproximation, checked at verification).
            zero = build.BitVecConst(0, self.width)
            self.guards.append(build.bv_compare(Op.BVSGE, dividend, zero))
            self.guards.append(build.bv_compare(Op.BVSGT, divisor, zero))
            if op is Op.IDIV:
                self._guard(Op.BVSDIV, (dividend, divisor))
                return self._track(build.bv_binary(Op.BVSDIV, dividend, divisor))
            return self._track(build.bv_binary(Op.BVSMOD, dividend, divisor))
        if op is Op.EQ:
            return build.Eq(new_args[0], new_args[1])
        if op is Op.DISTINCT:
            return build.Distinct(*new_args)
        if op is Op.ITE:
            return build.Ite(new_args[0], new_args[1], new_args[2])
        if op in (Op.NOT, Op.AND, Op.OR, Op.XOR, Op.IMPLIES):
            rebuilt = {
                Op.NOT: lambda a: build.Not(a[0]),
                Op.AND: lambda a: build.And(*a),
                Op.OR: lambda a: build.Or(*a),
                Op.XOR: lambda a: build.Xor(*a),
                Op.IMPLIES: lambda a: build.Implies(a[0], a[1]),
            }[op]
            return rebuilt(new_args)
        raise TransformError(f"integer transformation cannot handle {op}")


class _RealTransformer:
    """Real -> fixed-point bitvector translation."""

    def __init__(self, shape):
        self.shape = shape
        self.guards = []
        self.inexact_constants = False
        self._guarded = set()

    @property
    def width(self):
        return self.shape.width

    def _add_guard(self, guard):
        if guard.tid not in self._guarded:
            self._guarded.add(guard.tid)
            self.guards.append(guard)

    def _overflow_guard(self, pred, left, right):
        self._add_guard(build.Not(build.bv_overflow(pred, left, right)))

    def _const(self, value):
        scaled = Fraction(value) * self.shape.scale
        if scaled.denominator != 1:
            # Round to the fixed-point grid: a semantic difference.
            self.inexact_constants = True
            scaled = Fraction(round(scaled))
        scaled = int(scaled)
        half = 1 << (self.width - 1)
        if not (-half <= scaled < half):
            raise TransformError(
                f"constant {value} does not fit fixed-point shape {self.shape}"
            )
        return build.BitVecConst(BVValue(scaled, self.width), self.width)

    def _mul(self, left, right):
        """Fixed-point multiply: widen, multiply, guard, rescale."""
        precision = self.shape.precision_bits
        wide = self.width + precision + 1
        extend = wide - self.width
        left_wide = build.SignExtend(extend, left)
        right_wide = build.SignExtend(extend, right)
        self._overflow_guard(Op.BVSMULO, left_wide, right_wide)
        product = build.bv_binary(Op.BVMUL, left_wide, right_wide)
        # Rescale: drop P fractional bits (truncation toward -oo, the
        # fixed-point analogue of floating-point rounding).
        shifted = build.bv_binary(
            Op.BVASHR, product, build.BitVecConst(precision, wide)
        )
        # The rescaled value must fit back into the working width.
        kept = build.Extract(self.width - 1, 0, shifted)
        self._add_guard(build.Eq(build.SignExtend(extend, kept), shifted))
        return kept

    def _div(self, left, right):
        """Fixed-point divide: prescale the dividend, divide, narrow."""
        precision = self.shape.precision_bits
        wide = self.width + precision + 1
        extend = wide - self.width
        left_wide = build.bv_binary(
            Op.BVSHL,
            build.SignExtend(extend, left),
            build.BitVecConst(precision, wide),
        )
        right_wide = build.SignExtend(extend, right)
        zero = build.BitVecConst(0, wide)
        self._add_guard(build.Not(build.Eq(right_wide, zero)))
        self._overflow_guard(Op.BVSDIVO, left_wide, right_wide)
        quotient = build.bv_binary(Op.BVSDIV, left_wide, right_wide)
        kept = build.Extract(self.width - 1, 0, quotient)
        self._add_guard(build.Eq(build.SignExtend(extend, kept), quotient))
        return kept

    def transform_node(self, term, new_args):
        op = term.op
        if op is Op.CONST:
            if term.sort is REAL:
                return self._const(term.value)
            return term
        if op is Op.VAR:
            if term.sort is REAL:
                return build.BitVecVar(term.name, self.width)
            return term
        if term.sort is BOOL and op in (Op.LE, Op.LT, Op.GE, Op.GT):
            mapped = REAL_TO_FIXEDPOINT.map_operator(op)
            return build.bv_compare(mapped, new_args[0], new_args[1])
        if op is Op.ADD:
            result = new_args[0]
            for arg in new_args[1:]:
                self._overflow_guard(Op.BVSADDO, result, arg)
                result = build.bv_binary(Op.BVADD, result, arg)
            return result
        if op is Op.SUB:
            result = new_args[0]
            for arg in new_args[1:]:
                self._overflow_guard(Op.BVSSUBO, result, arg)
                result = build.bv_binary(Op.BVSUB, result, arg)
            return result
        if op is Op.MUL:
            result = new_args[0]
            for arg in new_args[1:]:
                result = self._mul(result, arg)
            return result
        if op is Op.RDIV:
            return self._div(new_args[0], new_args[1])
        if op is Op.NEG:
            self._add_guard(build.Not(build.BVNegO(new_args[0])))
            return build.BVNeg(new_args[0])
        if op is Op.EQ:
            return build.Eq(new_args[0], new_args[1])
        if op is Op.DISTINCT:
            return build.Distinct(*new_args)
        if op is Op.ITE:
            return build.Ite(new_args[0], new_args[1], new_args[2])
        if op in (Op.NOT, Op.AND, Op.OR, Op.XOR, Op.IMPLIES):
            rebuilt = {
                Op.NOT: lambda a: build.Not(a[0]),
                Op.AND: lambda a: build.And(*a),
                Op.OR: lambda a: build.Or(*a),
                Op.XOR: lambda a: build.Xor(*a),
                Op.IMPLIES: lambda a: build.Implies(a[0], a[1]),
            }[op]
            return rebuilt(new_args)
        raise TransformError(f"real transformation cannot handle {op}")


def _transform_assertions(script, transformer):
    from repro.smtlib.terms import map_terms

    return map_terms(script.assertions, transformer.transform_node)


def transform_script(script, theory, width=None, shape=None):
    """Translate an unbounded script to a bounded one.

    Args:
        script: the original unbounded script.
        theory: ``"int"`` or ``"real"``.
        width: bitvector width (int case; required).
        shape: :class:`FixedPointShape` (real case; required).

    Returns:
        A :class:`TransformResult`.

    Raises:
        TransformError: a constant does not fit the chosen bounds, or an
            operator is outside the supported fragment.
    """
    if theory == "int":
        if width is None:
            raise TransformError("integer transformation needs a width")
        transformer = _IntTransformer(width)
        correspondence = INT_TO_BITVECTOR
        result_shape = None
    else:
        if shape is None:
            raise TransformError("real transformation needs a fixed-point shape")
        transformer = _RealTransformer(shape)
        correspondence = REAL_TO_FIXEDPOINT
        width = shape.width
        result_shape = shape

    new_assertions = _transform_assertions(script, transformer)
    bounded = Script(logic="QF_BV")
    for assertion in new_assertions:
        bounded.add_assertion(assertion)
    for guard in transformer.guards:
        bounded.add_assertion(guard)
    return TransformResult(
        bounded,
        theory,
        width,
        result_shape,
        len(transformer.guards),
        getattr(transformer, "inexact_constants", False),
        correspondence,
        tracked=tuple(getattr(transformer, "tracked", ())),
    )
