"""Theoretical properties of the unbounded logics (Table 1 of the paper).

A small registry of established results, used by the Table 1 experiment
and double-checked empirically by the test suite where possible (e.g. the
linear-integer solution bound of Papadimitriou is evaluated on concrete
instances to show it is "practically unbounded").
"""


class LogicProperties:
    """Decidability / boundedness facts for one logic."""

    __slots__ = ("logic", "name", "decidable", "theoretically_bounded", "practically_bounded", "note")

    def __init__(self, logic, name, decidable, theoretically_bounded, practically_bounded, note):
        self.logic = logic
        self.name = name
        self.decidable = decidable
        self.theoretically_bounded = theoretically_bounded
        self.practically_bounded = practically_bounded
        self.note = note


TABLE1 = (
    LogicProperties(
        "QF_LIA",
        "Linear Integer Arithmetic",
        decidable=True,
        theoretically_bounded=True,
        practically_bounded=False,
        note="solutions bounded by 2n(ma)^(2m+1) [Papadimitriou 1981]; "
        "exponential in the number of inequalities",
    ),
    LogicProperties(
        "QF_NIA",
        "Nonlinear Integer Arithmetic",
        decidable=False,
        theoretically_bounded=False,
        practically_bounded=False,
        note="Hilbert's tenth problem [Davis-Matijasevic-Robinson 1976]",
    ),
    LogicProperties(
        "QF_LRA",
        "Linear Real Arithmetic",
        decidable=True,
        theoretically_bounded=False,
        practically_bounded=False,
        note="decidable via simplex; magnitudes and precision unbounded",
    ),
    LogicProperties(
        "QF_NRA",
        "Nonlinear Real Arithmetic",
        decidable=True,
        theoretically_bounded=False,
        practically_bounded=False,
        note="decidable via CAD [Tarski]; no bound on satisfying assignments",
    ),
)


def papadimitriou_bound(num_vars, num_inequalities, largest_constant):
    """The LIA solution bound ``2n(ma)^(2m+1)`` from Table 1's source.

    Used by the Table 1 experiment to demonstrate the bound's practical
    uselessness: for even modest constraint counts it exceeds any usable
    bitvector width.
    """
    return 2 * num_vars * (num_inequalities * largest_constant) ** (
        2 * num_inequalities + 1
    )


def bits_needed(value):
    """Bitvector width needed to represent ``value`` (signed)."""
    return int(value).bit_length() + 1
