"""Bitvector width reduction (Section 6.4's proposed extension).

The paper suggests applying the bound-inference idea to constraints that
are *already* bounded: shrink a wide bitvector constraint to a narrower
width, solve the cheap narrow version, and verify the model against the
original semantics -- the same underapproximate-then-check contract, with
sign-extension as phi inverse. (Cf. Jonas & Strejcek's width reduction,
which the paper cites as evidence the idea helps.)

Only uniform-width scripts over the arithmetic/comparison fragment are
reduced; any structural operator tied to the width (extract, concat,
extensions, shifts) makes the reduction unsound-to-attempt, and the
reducer reports failure instead.
"""

from repro.bv.solver import solve_bounded_script
from repro.errors import TransformError
from repro.smtlib import build
from repro.smtlib.evaluator import evaluate_assertions
from repro.smtlib.script import Script
from repro.smtlib.sorts import BOOL, bv_sort
from repro.smtlib.terms import Op, Term, map_terms
from repro.smtlib.values import BVValue
from repro.solver import costs

#: Operators safe to re-width (width-polymorphic, value-semantics ones).
_REDUCIBLE_OPS = {
    Op.CONST, Op.VAR, Op.NOT, Op.AND, Op.OR, Op.XOR, Op.IMPLIES, Op.ITE,
    Op.EQ, Op.DISTINCT,
    Op.BVNOT, Op.BVAND, Op.BVOR, Op.BVXOR, Op.BVNEG, Op.BVADD, Op.BVSUB,
    Op.BVMUL, Op.BVSDIV, Op.BVSREM, Op.BVSMOD, Op.BVABS,
    Op.BVULT, Op.BVULE, Op.BVUGT, Op.BVUGE,
    Op.BVSLT, Op.BVSLE, Op.BVSGT, Op.BVSGE,
    Op.BVSADDO, Op.BVUADDO, Op.BVSSUBO, Op.BVUSUBO, Op.BVSMULO,
    Op.BVUMULO, Op.BVSDIVO, Op.BVNEGO,
}


class WidthReductionResult:
    """Outcome of a reduce-solve-verify run.

    Attributes:
        case: "verified-sat" / "reduced-unsat" / "reduction-failed" /
            "unknown".
        model: a model of the ORIGINAL script when verified.
        original_width / reduced_width: the widths involved.
        work: unified work spent on the reduced solve + verification.
    """

    def __init__(self, case, model, original_width, reduced_width, work):
        self.case = case
        self.model = model
        self.original_width = original_width
        self.reduced_width = reduced_width
        self.work = work

    @property
    def usable(self):
        return self.case == "verified-sat"

    def __repr__(self):
        return (
            f"WidthReductionResult({self.case}, "
            f"{self.original_width}->{self.reduced_width})"
        )


def _uniform_width(script):
    widths = {
        sort.width for sort in script.declarations.values() if sort.is_bv
    }
    if len(widths) != 1:
        raise TransformError(
            "width reduction needs a uniform-width bitvector script"
        )
    return widths.pop()


def reduce_script(script, new_width):
    """Rebuild a QF_BV script at a narrower width.

    Constants must fit the narrow width *signed* (otherwise the reduction
    is refused -- a constant that cannot be represented makes the whole
    attempt pointless).

    Raises:
        TransformError: non-uniform widths, width-dependent operators, or
            unrepresentable constants.
    """
    original_width = _uniform_width(script)
    if new_width >= original_width:
        raise TransformError("new width must be strictly narrower")

    def rebuild(term, new_args):
        if term.op not in _REDUCIBLE_OPS:
            raise TransformError(
                f"operator {term.op} blocks width reduction"
            )
        if term.op is Op.CONST:
            if isinstance(term.value, BVValue):
                signed = term.value.signed
                half = 1 << (new_width - 1)
                if not -half <= signed < half:
                    raise TransformError(
                        f"constant {signed} does not fit width {new_width}"
                    )
                return build.BitVecConst(signed, new_width)
            return term
        if term.op is Op.VAR:
            if term.sort.is_bv:
                return build.BitVecVar(term.name, new_width)
            return term
        new_sort = term.sort if term.sort is BOOL else bv_sort(new_width)
        return Term(term.op, tuple(new_args), term.payload, new_sort)

    reduced_assertions = map_terms(script.assertions, rebuild)
    reduced = Script(logic="QF_BV")
    for assertion in reduced_assertions:
        reduced.add_assertion(assertion)
    return reduced, original_width


def reduce_and_solve(script, new_width, budget=None):
    """The full reduce-solve-verify pipeline for bounded constraints.

    Returns:
        A :class:`WidthReductionResult`. A ``reduced-unsat`` outcome says
        nothing about the original (underapproximation); callers revert.
    """
    try:
        reduced, original_width = reduce_script(script, new_width)
    except TransformError:
        return WidthReductionResult("reduction-failed", None, None, new_width, 0)

    outcome = solve_bounded_script(reduced, max_work=budget)
    work = costs.from_sat(outcome.work)
    if outcome.status == "unknown":
        return WidthReductionResult("unknown", None, original_width, new_width, work)
    if outcome.status == "unsat":
        return WidthReductionResult(
            "reduced-unsat", None, original_width, new_width, work
        )

    # Sign-extend the narrow model back to the original width (phi
    # inverse) and verify under the original semantics.
    model = {}
    for name, value in outcome.model.items():
        if isinstance(value, BVValue):
            model[name] = BVValue(value.signed, original_width)
        else:
            model[name] = value
    work += costs.from_interval(sum(a.size() for a in script.assertions))
    if evaluate_assertions(script.assertions, model):
        return WidthReductionResult(
            "verified-sat", model, original_width, new_width, work
        )
    return WidthReductionResult(
        "semantic-difference", None, original_width, new_width, work
    )


class WidthRefinementOutcome:
    """Result of :func:`iterative_reduce_and_solve`.

    Attributes:
        final: the last :class:`WidthReductionResult`.
        rounds: list of (reduced_width, case) pairs in execution order.
        total_work: cumulative unified work across every round.
        budget_exhausted: True when the loop stopped on budget with a
            wider retry still available.
    """

    def __init__(self, final, rounds, total_work, budget_exhausted=False):
        self.final = final
        self.rounds = rounds
        self.total_work = total_work
        self.budget_exhausted = budget_exhausted

    @property
    def case(self):
        return self.final.case

    @property
    def model(self):
        return self.final.model

    @property
    def usable(self):
        return self.final.usable

    def __repr__(self):
        return f"WidthRefinementOutcome({self.case}, rounds={self.rounds})"


def iterative_reduce_and_solve(script, initial_width, growth_factor=2, budget=None):
    """Widen-and-retry width reduction, mirroring the refinement loop.

    A ``reduced-unsat`` round says nothing about the original script
    (the reduction is an underapproximation), so the loop grows the
    width by ``growth_factor`` and retries until the next retry would
    reach the original width -- at which point reduction is pointless
    and the caller should solve the original directly. Budget semantics
    match :class:`repro.core.refinement.RefinementStaub`: the loop
    terminates as soon as cumulative work reaches the budget, rather
    than launching further floor-clamped rounds.
    """
    if not isinstance(initial_width, int) or initial_width < 1:
        raise ValueError("initial_width must be a positive integer")
    if growth_factor <= 1:
        raise ValueError("growth_factor must be greater than 1")
    rounds = []
    total_work = 0
    width = initial_width
    while True:
        remaining = None if budget is None else budget - total_work
        result = reduce_and_solve(script, width, budget=remaining)
        rounds.append((width, result.case))
        total_work += result.work
        if result.case != "reduced-unsat":
            return WidthRefinementOutcome(result, rounds, total_work)
        next_width = max(width + 1, int(width * growth_factor))
        if next_width >= result.original_width:
            # Widening further would just re-solve the original.
            return WidthRefinementOutcome(result, rounds, total_work)
        if budget is not None and total_work >= budget:
            return WidthRefinementOutcome(
                result, rounds, total_work, budget_exhausted=True
            )
        width = next_width
