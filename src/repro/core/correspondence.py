"""Sort correspondences (Definition 4.1) and semantic differences (4.2).

A :class:`SortCorrespondence` packages the tuple ``(S, K, phi, M)``:

- ``S``: the unbounded sort (Int or Real);
- ``K``: the bounded kind (bitvector sorts of each width, or fixed-point
  shapes over bitvectors);
- ``phi``: the partial value conversion from S into a member of K, and its
  inverse (total on K, per property (ii) of the definition);
- ``M``: the operator mapping (e.g. ``* -> bvmul``, ``+ -> fp.add``).

Two concrete correspondences are provided:

- :data:`INT_TO_BITVECTOR` -- the paper's integer arbitrage. Semantic
  differences stem from two's-complement overflow; the transformation
  suppresses them with overflow-guard assertions.
- :data:`REAL_TO_FIXEDPOINT` -- the real arbitrage, targeting scaled
  fixed-point bitvectors parameterized by the (magnitude, precision)
  abstract domain (see DESIGN.md for the substitution rationale vs the
  paper's IEEE FP target). Semantic differences stem from rounding:
  constants without a finite base-2 expansion and truncated products.

The module also exposes :data:`REAL_TO_FLOATINGPOINT`'s value maps for
the genuine FP theory (used by the softfloat tests and the SMT-LIB FP
printer), where NaN/infinities are additional semantic differences
(footnote 1 of the paper).
"""

from fractions import Fraction

from repro.errors import TransformError
from repro.fp.softfloat import fp_from_fraction
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue, FPValue


class SortCorrespondence:
    """A concrete (S, K, phi, M) tuple.

    Attributes:
        name: identifier for reports.
        source_sort: "Int" or "Real".
        operator_map: Op -> Op mapping (the injective M).
        comparison_map: comparison Op -> bounded comparison Op.
    """

    def __init__(self, name, source_sort, operator_map, comparison_map, phi, phi_inverse):
        self.name = name
        self.source_sort = source_sort
        self.operator_map = dict(operator_map)
        self.comparison_map = dict(comparison_map)
        self._phi = phi
        self._phi_inverse = phi_inverse

    def phi(self, value, shape):
        """Convert an unbounded value into the bounded sort of ``shape``.

        Returns None when the value is not representable (phi is partial).
        """
        return self._phi(value, shape)

    def phi_inverse(self, value, shape):
        """Convert a bounded value back (total, property (ii))."""
        return self._phi_inverse(value, shape)

    def map_operator(self, op):
        mapped = self.operator_map.get(op) or self.comparison_map.get(op)
        if mapped is None:
            raise TransformError(f"{self.name}: no mapping for operator {op}")
        return mapped

    def __repr__(self):
        return f"SortCorrespondence({self.name})"


# ---------------------------------------------------------------------------
# Int -> BitVec
# ---------------------------------------------------------------------------


def _int_phi(value, width):
    """Two's-complement image of an integer, or None if it does not fit."""
    half = 1 << (width - 1)
    if -half <= value < half:
        return BVValue(value, width)
    return None


def _int_phi_inverse(value, width):
    del width
    return value.signed


INT_TO_BITVECTOR = SortCorrespondence(
    "int->bitvector",
    "Int",
    operator_map={
        Op.ADD: Op.BVADD,
        Op.SUB: Op.BVSUB,
        Op.MUL: Op.BVMUL,
        Op.NEG: Op.BVNEG,
        Op.ABS: Op.BVABS,
        Op.IDIV: Op.BVSDIV,
        Op.MOD: Op.BVSMOD,
    },
    comparison_map={
        Op.LE: Op.BVSLE,
        Op.LT: Op.BVSLT,
        Op.GE: Op.BVSGE,
        Op.GT: Op.BVSGT,
    },
    phi=_int_phi,
    phi_inverse=_int_phi_inverse,
)

#: Overflow guard for each mapped integer operator (Section 4.3): the
#: predicate that must be *false* for the bounded op to agree with the
#: unbounded one.
INT_OVERFLOW_GUARDS = {
    Op.BVADD: Op.BVSADDO,
    Op.BVSUB: Op.BVSSUBO,
    Op.BVMUL: Op.BVSMULO,
    Op.BVSDIV: Op.BVSDIVO,
    Op.BVNEG: Op.BVNEGO,
    Op.BVABS: Op.BVNEGO,  # |INT_MIN| overflows exactly like -INT_MIN
}


# ---------------------------------------------------------------------------
# Real -> fixed-point (scaled bitvector)
# ---------------------------------------------------------------------------


class FixedPointShape:
    """A fixed-point format: ``magnitude_bits`` integer bits (including
    sign) plus ``precision_bits`` fractional bits, stored as a signed
    bitvector of ``width = magnitude_bits + precision_bits``.

    The represented real is ``bits.signed / 2**precision_bits``.
    """

    __slots__ = ("magnitude_bits", "precision_bits")

    def __init__(self, magnitude_bits, precision_bits):
        self.magnitude_bits = max(2, magnitude_bits)
        self.precision_bits = max(0, precision_bits)

    @property
    def width(self):
        return self.magnitude_bits + self.precision_bits

    @property
    def scale(self):
        return 1 << self.precision_bits

    def __eq__(self, other):
        return (
            isinstance(other, FixedPointShape)
            and self.magnitude_bits == other.magnitude_bits
            and self.precision_bits == other.precision_bits
        )

    def __hash__(self):
        return hash((self.magnitude_bits, self.precision_bits))

    def __repr__(self):
        return f"FixedPointShape(m={self.magnitude_bits}, p={self.precision_bits})"


def _real_phi(value, shape):
    """Exact fixed-point image of a rational, or None (partial phi)."""
    scaled = Fraction(value) * shape.scale
    if scaled.denominator != 1:
        return None
    scaled = int(scaled)
    half = 1 << (shape.width - 1)
    if -half <= scaled < half:
        return BVValue(scaled, shape.width)
    return None


def _real_phi_inverse(value, shape):
    return Fraction(value.signed, shape.scale)


REAL_TO_FIXEDPOINT = SortCorrespondence(
    "real->fixedpoint",
    "Real",
    operator_map={
        Op.ADD: Op.BVADD,
        Op.SUB: Op.BVSUB,
        Op.MUL: Op.BVMUL,  # with rescaling, see transform
        Op.NEG: Op.BVNEG,
        Op.RDIV: Op.BVSDIV,  # with prescaling, see transform
    },
    comparison_map={
        Op.LE: Op.BVSLE,
        Op.LT: Op.BVSLT,
        Op.GE: Op.BVSGE,
        Op.GT: Op.BVSGT,
    },
    phi=_real_phi,
    phi_inverse=_real_phi_inverse,
)


# ---------------------------------------------------------------------------
# Real -> IEEE floating point (value-level correspondence)
# ---------------------------------------------------------------------------


def _fp_phi(value, sort):
    """Round a rational into (eb, sb); None when the image is pathological
    or inexact (phi must be exact to be a correspondence image)."""
    image = fp_from_fraction(Fraction(value), sort.eb, sort.sb)
    if image.is_pathological:
        return None
    if image.to_fraction() != Fraction(value):
        return None
    return image


def _fp_phi_inverse(value, sort):
    del sort
    if value.is_pathological:
        # NaN and infinities have no preimage; the paper treats any
        # computation reaching them as a semantic difference.
        raise TransformError("pathological floating-point value has no preimage")
    return value.to_fraction()


REAL_TO_FLOATINGPOINT = SortCorrespondence(
    "real->floatingpoint",
    "Real",
    operator_map={
        Op.ADD: Op.FP_ADD,
        Op.SUB: Op.FP_SUB,
        Op.MUL: Op.FP_MUL,
        Op.NEG: Op.FP_NEG,
        Op.RDIV: Op.FP_DIV,
    },
    comparison_map={
        Op.LE: Op.FP_LEQ,
        Op.LT: Op.FP_LT,
        Op.GE: Op.FP_GEQ,
        Op.GT: Op.FP_GT,
    },
    phi=_fp_phi,
    phi_inverse=_fp_phi_inverse,
)
