"""Bound inference by abstract interpretation (Section 4.2).

A single post-order traversal of each assertion's syntax tree, applying
the transfer functions of Fig. 5. The variable assumption ``x`` follows
the paper's practical choice: the width of the largest constant in the
constraint, plus one bit (componentwise for the real domain).

The inferred bound ``[S]`` is the join over all assertion roots. The
pipeline then chooses the bitvector width (or fixed-point shape) from it,
possibly capped -- with correctness guaranteed regardless by the
underapproximate-then-verify strategy of Section 4.4.
"""

from fractions import Fraction

from repro.core.absint import (
    IntWidthDomain,
    MagPrec,
    RealMagnitudePrecisionDomain,
    dig,
    int_width,
)
from repro.errors import TransformError
from repro.smtlib.sorts import INT, REAL
from repro.smtlib.terms import Op


class BoundInference:
    """Result of bound inference over a script.

    Attributes:
        theory: ``"int"`` or ``"real"``.
        assumption: the variable assumption ``x`` (int width, or MagPrec).
        root: the inferred ``[S]`` (int width, or MagPrec; the real
            precision component may be None = infinite before capping).
        node_widths: tid -> abstract value for every arithmetic node.
        largest_constant: the constant that drove the assumption.
    """

    def __init__(self, theory, assumption, root, node_widths, largest_constant):
        self.theory = theory
        self.assumption = assumption
        self.root = root
        self.node_widths = node_widths
        self.largest_constant = largest_constant

    def __repr__(self):
        return (
            f"BoundInference({self.theory}, x={self.assumption}, "
            f"[S]={self.root})"
        )


def _arith_constants(assertions):
    """Every Int/Real literal constant in the assertions."""
    constants = []
    seen = set()
    for assertion in assertions:
        for sub in assertion.subterms():
            if sub.tid in seen:
                continue
            seen.add(sub.tid)
            if sub.is_const and (sub.sort is INT or sub.sort is REAL):
                constants.append(sub.value)
    return constants


def _integer_assumption(constants):
    """x = width of the largest constant, plus one bit."""
    widest = 2
    largest = 0
    for value in constants:
        width = int_width(value)
        if width > widest:
            widest = width
            largest = value
    return widest + 1, largest


def _real_assumption(constants):
    """Componentwise: magnitude of the largest constant plus one bit,
    precision of the most precise constant plus one bit."""
    magnitude = 2
    precision = 1
    largest = Fraction(0)
    for value in constants:
        value = Fraction(value)
        element = RealMagnitudePrecisionDomain.alpha([value])
        if element.magnitude > magnitude:
            magnitude = element.magnitude
            largest = value
        digits = dig(value)
        if digits is None:
            # No finite binary expansion (e.g. 0.1): take the bits of the
            # denominator as a practical proxy; exactness is re-checked at
            # verification time anyway.
            digits = value.denominator.bit_length()
        precision = max(precision, digits)
    return MagPrec(magnitude + 1, precision + 1), largest


_JOIN_OPS = {
    Op.NOT,
    Op.AND,
    Op.OR,
    Op.XOR,
    Op.IMPLIES,
    Op.EQ,
    Op.DISTINCT,
    Op.LE,
    Op.LT,
    Op.GE,
    Op.GT,
    Op.ITE,
}


def _analyze_term(term, domain, node_widths, is_real):
    for sub in term.subterms():
        if sub.tid in node_widths:
            continue
        op = sub.op
        args = [node_widths[a.tid] for a in sub.args]
        if op is Op.CONST:
            value = node_widths[sub.tid] = domain.const(sub.value)
            continue
        if op is Op.VAR:
            if sub.sort is INT or sub.sort is REAL:
                node_widths[sub.tid] = domain.var()
            else:
                node_widths[sub.tid] = domain.join([])
            continue
        if op is Op.ADD or op is Op.SUB:
            node_widths[sub.tid] = domain.add(args)
        elif op is Op.NEG:
            node_widths[sub.tid] = domain.neg(args[0])
        elif op is Op.ABS:
            node_widths[sub.tid] = domain.abs(args[0])
        elif op is Op.MUL:
            node_widths[sub.tid] = domain.mul(args)
        elif op is Op.IDIV:
            node_widths[sub.tid] = domain.idiv(args[0], args[1])
        elif op is Op.MOD:
            node_widths[sub.tid] = domain.mod(args[0], args[1])
        elif op is Op.RDIV:
            node_widths[sub.tid] = domain.div(args[0], args[1])
        elif op in _JOIN_OPS:
            node_widths[sub.tid] = domain.join(args)
        elif op is Op.TO_REAL or op is Op.TO_INT:
            raise TransformError(
                "mixed int/real constraints are outside STAUB's scope"
            )
        else:
            raise TransformError(f"cannot infer bounds through operator {op}")
    return node_widths[term.tid]


def infer_bounds(script):
    """Run bound inference on a script.

    Returns:
        A :class:`BoundInference`, with ``theory`` chosen from the
        declared variable sorts.

    Raises:
        TransformError: the script mixes integer and real variables or
            uses operators outside the Int/Real fragment.
    """
    sorts = set()
    for sort in script.declarations.values():
        if sort is INT or sort is REAL:
            sorts.add(sort)
    if len(sorts) > 1:
        raise TransformError("constraint mixes Int and Real variables")
    theory = "real" if REAL in sorts else "int"

    constants = _arith_constants(script.assertions)
    if theory == "int":
        assumption, largest = _integer_assumption(constants)
        domain = IntWidthDomain(assumption)
    else:
        assumption, largest = _real_assumption(constants)
        domain = RealMagnitudePrecisionDomain(assumption)

    node_widths = {}
    roots = [
        _analyze_term(assertion, domain, node_widths, theory == "real")
        for assertion in script.assertions
    ]
    root = domain.join(roots) if roots else domain.join([])
    return BoundInference(theory, assumption, root, node_widths, largest)
