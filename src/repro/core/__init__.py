"""STAUB's core: theory arbitrage from unbounded to bounded theories.

The four pipeline stages of Fig. 3 in the paper:

1. *Sort selection* -- :mod:`repro.core.correspondence` (Definition 4.1's
   sort correspondences for Int -> BitVec and Real -> fixed-point/FP).
2. *Bound inference* -- :mod:`repro.core.absint` (the width and
   magnitude/precision abstract domains with their Galois connections)
   driving :mod:`repro.core.inference`.
3. *Translation* -- :mod:`repro.core.transform` (operator mapping plus
   overflow-guard insertion).
4. *Solve + verify* -- :mod:`repro.core.verify` (exact re-checking of the
   bounded model against the original constraint) orchestrated by
   :mod:`repro.core.pipeline` under portfolio semantics (Fig. 6).
"""

from repro.core.absint import (
    IntWidthDomain,
    RealMagnitudePrecisionDomain,
    MagPrec,
)
from repro.core.inference import BoundInference, infer_bounds
from repro.core.correspondence import (
    INT_TO_BITVECTOR,
    REAL_TO_FIXEDPOINT,
    SortCorrespondence,
)
from repro.core.transform import TransformResult, transform_script
from repro.core.verify import VerifyOutcome, verify_model
from repro.core.pipeline import ArbitrageReport, Staub
from repro.core.refinement import RefinementReport, RefinementStaub
from repro.core.width_reduction import WidthReductionResult, reduce_and_solve

__all__ = [
    "IntWidthDomain",
    "RealMagnitudePrecisionDomain",
    "MagPrec",
    "BoundInference",
    "infer_bounds",
    "INT_TO_BITVECTOR",
    "REAL_TO_FIXEDPOINT",
    "SortCorrespondence",
    "TransformResult",
    "transform_script",
    "VerifyOutcome",
    "verify_model",
    "ArbitrageReport",
    "Staub",
    "RefinementReport",
    "RefinementStaub",
    "WidthReductionResult",
    "reduce_and_solve",
]
