"""Scope-aware theory arbitrage: STAUB under a push/pop assertion stack.

The classic pipeline (:class:`repro.core.pipeline.Staub`) re-infers,
re-translates, and re-blasts the whole constraint for every query. A
client that streams many closely-related queries -- the termination
driver pushes a candidate layer onto a fixed Farkas core fifty times --
pays that cost over and over for the unchanged part.

:class:`ArbitrageSession` keeps the pipeline's stages *scoped*:

- **Inference** is piecewise: the variable assumption is the max over
  live per-assertion constant widths, and the root ``[S]`` is the domain
  join of per-assertion roots. Per-assertion analyses are cached by
  ``(term, assumption)``, so a pop that does not move the assumption
  re-analyzes nothing, and one that does (it retracted the widest
  constant) lazily re-analyzes only the live assertions
  (``counters["reinferred"]`` measures that).
- **Translation** caches each assertion's bounded slice (translated
  term + overflow guards) per ``(term, width)``.
- **Solving** shares one persistent
  :class:`~repro.solver.session._BoundedBackend`: slices blast once and
  retract by scope as assumption literals, so learned clauses survive
  every pop.

The chosen width never shrinks within a session: pops can loosen the
inferred bounds, but narrowing would forfeit the encoding and the
learned clauses, and a wider-than-necessary width stays sound -- the
verify stage guards every sat answer, and unsat remains the usual
indistinguishable bounded-unsat. Width *growth* re-encodes into a fresh
backend (``counters["rewiden"]``).

Each :meth:`ArbitrageSession.check` returns the same
:class:`~repro.core.pipeline.ArbitrageReport` the scratch pipeline
produces, with ``t_trans`` covering only the *fresh* analysis and
translation work this check actually did.
"""

from repro import telemetry
from repro import cache as solve_cache
from repro.cache.keys import assertion_digest
from repro.core.absint import IntWidthDomain, int_width
from repro.guard import chaos
from repro.telemetry.stats import unified_stats
from repro.core.correspondence import INT_TO_BITVECTOR
from repro.core.inference import BoundInference, _analyze_term
from repro.core.pipeline import (
    CASE_BOUNDED_UNKNOWN,
    CASE_BOUNDED_UNSAT,
    CASE_SEMANTIC_DIFFERENCE,
    CASE_TRANSFORM_FAILED,
    CASE_VERIFIED_SAT,
    MAX_INT_WIDTH,
    TRANSLATE_COST_PER_NODE,
    ArbitrageReport,
    choose_int_width,
)
from repro.core.transform import transform_script
from repro.core.verify import verify_model
from repro.errors import SessionError, SmtLibError, TransformError
from repro.smtlib.script import Script
from repro.smtlib.sorts import BOOL, INT, bv_sort
from repro.smtlib.values import BVValue
from repro.solver.result import SAT, UNSAT
from repro.solver.session import _BoundedBackend


class _ScopedInference:
    """Incremental integer bound inference over a scope stack.

    Mirrors :func:`repro.core.inference.infer_bounds` piecewise: the
    assumption and the root are both joins over per-assertion
    contributions, so scopes compose and retract exactly.
    """

    def __init__(self):
        self._scopes = [[]]  # per scope: (term, const_width, size) triples
        self._roots = {}  # (tid, assumption) -> abstract root width
        self.reinferred = 0

    def push(self, count=1):
        for _ in range(count):
            self._scopes.append([])

    def pop(self, count=1):
        del self._scopes[len(self._scopes) - count:]

    def reset(self):
        self._scopes = [[]]

    def add(self, term):
        widest = 2
        for sub in term.subterms():
            if sub.is_const and sub.sort is INT:
                width = int_width(sub.value)
                if width > widest:
                    widest = width
        self._scopes[-1].append((term, widest, term.size()))

    @property
    def assumption(self):
        """x = width of the largest live constant, plus one bit."""
        widest = 2
        for scope in self._scopes:
            for _, width, _ in scope:
                if width > widest:
                    widest = width
        return widest + 1

    def infer(self):
        """Bounds for the live stack, re-analyzing only cache misses.

        Returns:
            ``(BoundInference, fresh_work)`` where ``fresh_work`` counts
            the DAG nodes actually traversed this call (zero when every
            live assertion was already analyzed at this assumption).
        """
        assumption = self.assumption
        domain = IntWidthDomain(assumption)
        roots = []
        fresh = 0
        for scope in self._scopes:
            for term, _, size in scope:
                key = (term.tid, assumption)
                root = self._roots.get(key)
                if root is None:
                    root = self._roots[key] = _analyze_term(
                        term, domain, {}, False
                    )
                    fresh += size
                    self.reinferred += 1
                roots.append(root)
        root = domain.join(roots) if roots else domain.join([])
        return BoundInference("int", assumption, root, {}, None), fresh


class ArbitrageSession:
    """A push/pop session of *unbounded* integer constraints, solved by
    scoped theory arbitrage over one persistent bounded backend.

    Args:
        width_strategy: ``"absint"`` or a fixed int (as for
            :class:`~repro.core.pipeline.Staub`).
        max_int_width: practical width cap.
        width_hint: pre-size the first encoding (e.g. the width the
            widest expected query needs) so later checks never rewiden.
        budget: default unified work budget per check.
    """

    def __init__(self, width_strategy="absint", max_int_width=MAX_INT_WIDTH,
                 width_hint=None, budget=None):
        self.width_strategy = width_strategy
        self.max_int_width = max_int_width
        self.budget = budget
        self.declarations = {}
        self._scopes = [[]]
        self._inference = _ScopedInference()
        self._width = width_hint or 0
        self._backend = None
        self._slices = {}  # (tid, width) -> tuple of bounded terms
        self._digest_memo = {}  # bounded-term tid -> canonical digest
        self._last_live = None  # tids live at the previous check
        self.counters = {
            "checks": 0,
            "rewiden": 0,
            "reinferred": 0,
            "rescued": 0,
            "core_hits": 0,
        }

    # -- scope stack -------------------------------------------------------

    @property
    def depth(self):
        return len(self._scopes) - 1

    @property
    def width(self):
        """The current encoding width (0 before the first check)."""
        return self._width if self._backend is not None else 0

    def push(self, count=1):
        for _ in range(count):
            self._scopes.append([])
        self._inference.push(count)

    def pop(self, count=1):
        if count > self.depth:
            raise SessionError(
                f"pop {count} below assertion-stack depth {self.depth}"
            )
        del self._scopes[len(self._scopes) - count:]
        self._inference.pop(count)

    def reset_assertions(self):
        self._scopes = [[]]
        self._inference.reset()

    def declare(self, name, sort):
        existing = self.declarations.get(name)
        if existing is None:
            self.declarations[name] = sort
        elif existing is not sort:
            raise SmtLibError(
                f"variable {name} redeclared with sort {sort}, was {existing}"
            )

    def assert_term(self, term):
        if term.sort is not BOOL:
            raise SmtLibError(
                f"asserted term has sort {term.sort}, expected Bool"
            )
        for name, var in term.variables().items():
            self.declare(name, var.sort)
        self._scopes[-1].append(term)
        self._inference.add(term)

    def assertions(self):
        return [term for scope in self._scopes for term in scope]

    def flattened_script(self):
        """The live stack as one flat unbounded script (what sat answers
        are verified against)."""
        script = Script(declarations=self.declarations, assertions=self.assertions())
        script.logic = script.infer_logic()
        return script

    # -- the scoped pipeline ----------------------------------------------

    def _digest(self, term):
        digest = self._digest_memo.get(term.tid)
        if digest is None:
            digest = self._digest_memo[term.tid] = assertion_digest(term)
        return digest

    def check(self, budget=None):
        """Run the arbitrage pipeline on the live stack.

        Returns:
            An :class:`~repro.core.pipeline.ArbitrageReport`; exactly the
            scratch pipeline's contract, but ``t_trans`` only charges
            analysis/translation work this check actually performed.
        """
        budget = self.budget if budget is None else budget
        self.counters["checks"] += 1
        before = self._inference.reinferred
        try:
            report = self._check(budget)
        except TransformError:
            report = ArbitrageReport(
                CASE_TRANSFORM_FAILED,
                t_trans=TRANSLATE_COST_PER_NODE * self.flattened_script().size(),
            )
        self.counters["reinferred"] += self._inference.reinferred - before
        report.stats["case"] = report.case
        if telemetry.enabled:
            telemetry.counter_add("session.arbitrage_case", case=report.case)
            if report.width is not None:
                telemetry.observe("arbitrage.width", int(report.width))
        return report

    def _check(self, budget):
        for name, sort in self.declarations.items():
            if not (sort.is_bool or sort.is_int):
                raise TransformError(
                    f"arbitrage sessions cover the integer theory; variable "
                    f"{name} has sort {sort}"
                )
        t_trans = 0
        inference, fresh = self._inference.infer()
        if fresh:
            with telemetry.span("infer", incremental=True) as span:
                span.set_attr("theory", "int")
                span.add_work(fresh)
            t_trans += fresh

        needed = choose_int_width(
            inference, self.width_strategy, self.max_int_width
        )
        width = max(self._width, needed)
        if self._backend is None or width > self._width:
            if self._backend is not None:
                self.counters["rewiden"] += 1
                telemetry.counter_add("session.rewiden")
            self._backend = _BoundedBackend()
            self._width = width
        width = self._width

        scope_slices = []
        fresh_nodes = 0
        for scope in self._scopes:
            bounded_scope = []
            for term in scope:
                key = (term.tid, width)
                bounded = self._slices.get(key)
                if bounded is None:
                    result = transform_script(
                        Script.from_assertions([term]), "int", width=width
                    )
                    bounded = self._slices[key] = tuple(result.script.assertions)
                    fresh_nodes += term.size()
                bounded_scope.extend(bounded)
            scope_slices.append(bounded_scope)
        if fresh_nodes:
            with telemetry.span("transform", incremental=True) as span:
                span.set_attr("width", width)
                span.add_work(fresh_nodes)
            t_trans += fresh_nodes

        bounded_decls = {
            name: (BOOL if sort.is_bool else bv_sort(width))
            for name, sort in self.declarations.items()
        }
        remaining = None if budget is None else max(1, budget - t_trans)

        store = solve_cache.get_cache()
        slice_digests = None
        if store is not None and store.has_cores():
            slice_digests = frozenset(
                self._digest(term)
                for bounded_scope in scope_slices
                for term in bounded_scope
            )
            if slice_digests and store.find_core(
                slice_digests, kind="arbitrage-session"
            ) is not None:
                # Subsumption over the *flattened* slice digests: a core
                # learned under any scope chain (or by the scratch
                # pipeline at this width) answers this stack unsat with
                # zero solver work -- the bounded-solve span never opens
                # and the warm backend is left untouched.
                self.counters["core_hits"] += 1
                telemetry.counter_add("session.core_hit")
                stats = unified_stats(core_reuse=True)
                stats["width"] = width
                return ArbitrageReport(
                    CASE_BOUNDED_UNSAT,
                    t_trans=t_trans,
                    t_post=0,
                    width=width,
                    inference=inference,
                    bounded_status=UNSAT,
                    stats=stats,
                )

        # Retraction-only checks (the live stack is a strict subset of
        # the previous check's -- e.g. pop the compact-argument box and
        # re-check unbounded) are where a warm backend can *hurt*: saved
        # phases and activities were tuned under the retracted slices and
        # can point the search away from the newly opened region. Split
        # the budget: the warm backend gets half, and if it comes back
        # unknown a fresh encoding gets the rest.
        plan = chaos.active()
        injected_before = plan.total_injected if plan is not None else 0
        live = frozenset(
            term.tid for scope in self._scopes for term in scope
        )
        stale = (
            self._backend.checks > 0
            and self._last_live is not None
            and live < self._last_live
        )
        rescue_eligible = stale and remaining is not None
        first_budget = max(1, remaining // 2) if rescue_eligible else remaining
        t_post = 0
        with telemetry.span("bounded-solve", width=width, incremental=True) as span:
            bounded = self._backend.check(scope_slices, bounded_decls, first_budget)
            t_post += bounded.work
            if rescue_eligible and bounded.status not in (SAT, UNSAT):
                self.counters["rescued"] += 1
                telemetry.counter_add("session.rescue")
                self._backend = _BoundedBackend()
                retry = self._backend.check(
                    scope_slices,
                    bounded_decls,
                    max(1, remaining - bounded.work),
                )
                t_post += retry.work
                bounded = retry
            span.set_attr("status", bounded.status)
            span.settle(t_post)
        self._last_live = live
        stats = dict(bounded.stats)
        stats["width"] = width
        common = dict(
            t_trans=t_trans,
            t_post=t_post,
            width=width,
            inference=inference,
            bounded_status=bounded.status,
            stats=stats,
        )

        if bounded.status == UNSAT:
            if (
                store is not None
                and store.core_reuse
                and (plan is None or plan.total_injected == injected_before)
            ):
                core_terms = self._backend.last_core_terms
                if core_terms:
                    store.add_core(
                        frozenset(self._digest(term) for term in core_terms),
                        kind="arbitrage-session",
                    )
            return ArbitrageReport(CASE_BOUNDED_UNSAT, **common)
        if bounded.status != SAT:
            return ArbitrageReport(CASE_BOUNDED_UNKNOWN, **common)

        candidate = {}
        for name, value in bounded.model.items():
            if isinstance(value, BVValue):
                candidate[name] = INT_TO_BITVECTOR.phi_inverse(value, width)
            else:
                candidate[name] = value
        with telemetry.span("verify") as span:
            outcome = verify_model(self.flattened_script(), candidate)
            span.set_attr("ok", outcome.ok)
            span.settle(outcome.work)
        common["t_check"] = outcome.work
        if outcome.ok:
            return ArbitrageReport(CASE_VERIFIED_SAT, model=candidate, **common)
        return ArbitrageReport(CASE_SEMANTIC_DIFFERENCE, **common)
