"""Deterministic benchmark harness (``staub bench``).

The bench layer is the measurement discipline every perf PR is gated
on. It runs named suites through the real solver stack and writes a
versioned ``BENCH_<suite>.json`` artifact with two cleanly segregated
sections:

- **deterministic**: verdicts, unified work units, per-stage span
  aggregates, and solver counters. Byte-identical across machines and
  runs; CI diffs it exactly against a checked-in baseline.
- **wall_clock**: median-of-N timings and throughput rates
  (propagations/sec, pivots/sec, ...). Informational -- it moves with
  the hardware and is compared only within a tolerance, never gated by
  default.

See :mod:`repro.bench.suites` for the suite catalogue,
:mod:`repro.bench.harness` for the runner, and
:mod:`repro.bench.compare` for baseline comparison / regression gating.
"""

from repro.bench.compare import compare_payloads, render_comparison
from repro.bench.harness import BENCH_FORMAT, default_artifact_name, run_suite, write_artifact
from repro.bench.suites import available_suites, get_suite

__all__ = [
    "BENCH_FORMAT",
    "available_suites",
    "compare_payloads",
    "default_artifact_name",
    "get_suite",
    "render_comparison",
    "run_suite",
    "write_artifact",
]
