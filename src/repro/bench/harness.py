"""Run a bench suite and build the ``BENCH_<suite>.json`` payload.

Each case runs three ways:

1. **cold, instrumented**: fresh metrics registry, in-memory span sink,
   fresh solve cache. Produces the case's deterministic record: verdict,
   unified work, per-stage span aggregates, and the registry's counter
   totals (propagations, conflicts, decisions, pivots, gates blasted,
   refinement rounds, ...).
2. **warm, instrumented**: the same case again on the now-warm cache,
   recording the cache-served work and hit counts -- the per-query
   hit/latency accounting that makes cache/reuse claims credible.
3. **timed, uninstrumented** (optional): ``repeats`` cold repeats with
   telemetry off, wall-clock only. The median lands in the wall-clock
   section together with throughput rates derived from the cold
   deterministic counters.

The deterministic section contains only ints, strings, and bools -- no
floats, no timestamps, no paths -- and serializes byte-identically under
``json.dumps(..., sort_keys=True)`` on every machine.
"""

import json
import statistics
import time

from repro import telemetry
from repro.bench.suites import get_suite
from repro.cache import SolveCache
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import aggregate
from repro.telemetry.spans import Tracer

#: Version stamp of the artifact layout; bump on incompatible changes.
BENCH_FORMAT = 1

#: Counters whose suite-wide totals feed throughput rates.
THROUGHPUT_COUNTERS = (
    "solver.propagations",
    "solver.conflicts",
    "solver.decisions",
    "solver.pivots",
    "blast.cnf_clauses",
)


def default_artifact_name(suite):
    return f"BENCH_{suite}.json"


def _counter_totals(snapshot):
    """Collapse a registry snapshot to ``{base_name: total}`` ints.

    Labels are summed away (``solver.propagations{engine=sat}`` and any
    other labelling of the same base name pool together); histogram
    snapshots (dicts) and other non-int values are skipped -- totals are
    the deterministic, diffable core.
    """
    totals = {}
    for name, value in snapshot.items():
        base = name.split("{", 1)[0]
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        totals[base] = totals.get(base, 0) + value
    return totals


def _run_instrumented(case, cache):
    """Run ``case`` under a fresh registry + span sink; returns
    ``(outcome, counter_totals, stage_aggregates)``."""
    spans = []
    registry = MetricsRegistry()
    previous = telemetry.set_registry(registry)
    was_enabled = telemetry.enabled
    telemetry.enable(sink=spans.append)
    try:
        outcome = case.run(cache)
    finally:
        telemetry.disable()
        telemetry.set_registry(previous)
        if was_enabled:
            # The caller had telemetry on (e.g. nested under a traced
            # run); re-arm it without a sink rather than leaving it dead.
            telemetry.enable()
    stages = {
        name: {"spans": entry["spans"], "work": entry["work"]}
        for name, entry in sorted(aggregate(spans).items())
    }
    return outcome, _counter_totals(registry.snapshot()), stages


def _time_case(case, repeats):
    """Median wall seconds over ``repeats`` cold, uninstrumented runs."""
    samples = []
    for _ in range(repeats):
        cache = SolveCache(max_entries=None)
        start = time.perf_counter()
        case.run(cache)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def run_suite(suite, repeats=3, timing=True, progress=None):
    """Run a named suite; returns the full artifact payload dict.

    Args:
        suite: suite name (see :func:`repro.bench.suites.get_suite`).
        repeats: wall-clock repeats per case (median is reported).
        timing: skip the wall-clock section entirely when False (the
            deterministic section never depends on it).
        progress: optional ``callable(str)`` for per-case progress lines.
    """
    cases = get_suite(suite)
    det_cases = {}
    wall_cases = {}
    totals = {"cases": len(cases), "work": 0}
    counter_sums = {}

    for case in cases:
        if progress is not None:
            progress(f"bench: {suite}/{case.name}")
        cache = SolveCache(max_entries=None)
        cold, counters, stages = _run_instrumented(case, cache)
        hits_after_cold = cache.hits
        core_hits_after_cold = cache.core_hits
        cores_after_cold = cache.stats()["cores"]
        warm, warm_counters, warm_stages = _run_instrumented(case, cache)
        record = {
            "kind": case.kind,
            "cold": cold,
            "cores_stored": cores_after_cold,
            "warm": {
                "outcome": warm,
                "cache_hits": cache.hits - hits_after_cold,
                # Unsat queries the warm rerun answered by core
                # subsumption instead of solving (the CI core-reuse job
                # gates that this is nonzero and deterministic on the
                # termination suite).
                "core_hits": cache.core_hits - core_hits_after_cold,
                "bounded_solve_spans": warm_stages.get("bounded-solve", {}).get(
                    "spans", 0
                ),
            },
            "counters": counters,
            "stages": stages,
        }
        det_cases[case.name] = record
        totals["work"] += int(cold.get("work", 0))
        for name, value in counters.items():
            counter_sums[name] = counter_sums.get(name, 0) + value

        if timing and repeats > 0:
            seconds = _time_case(case, repeats)
            rates = {}
            for name in THROUGHPUT_COUNTERS:
                count = counters.get(name, 0)
                if count and seconds > 0:
                    rates[f"{name}_per_sec"] = round(count / seconds, 1)
            wall_cases[case.name] = {
                "seconds_median": round(seconds, 6),
                "throughput": rates,
            }

    payload = {
        "format": BENCH_FORMAT,
        "suite": suite,
        "deterministic": {
            "cases": det_cases,
            "totals": totals,
            "counters": {name: counter_sums[name] for name in sorted(counter_sums)},
        },
        "wall_clock": {
            "repeats": repeats if timing else 0,
            "cases": wall_cases,
            "seconds_total": round(
                sum(entry["seconds_median"] for entry in wall_cases.values()), 6
            ),
        },
    }
    return payload


def deterministic_bytes(payload):
    """The canonical serialization of the deterministic section.

    This is the string CI byte-compares: two runs of the same suite on
    any machines must agree on it exactly.
    """
    return json.dumps(payload["deterministic"], sort_keys=True)


def write_artifact(payload, path):
    """Write the artifact (sorted keys, trailing newline); returns path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path


def load_artifact(path):
    """Read a ``BENCH_*.json`` artifact back into a payload dict."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
