"""The named benchmark suites ``staub bench`` can run.

Every case is deterministic end to end: seeded generators, fixed work
budgets, no wall-clock dependence anywhere in the measured path. A case
is a callable taking the per-case :class:`~repro.cache.SolveCache` and
returning a small dict of deterministic outcomes (``verdict`` plus
``work`` in unified units, at minimum); the harness wraps it with
telemetry, runs it cold and warm, and times separate repeats for the
wall-clock section.

Suites:

- ``smoke``: a handful of fast cases covering every engine family
  (bounded BV, LIA simplex, NIA interval/bit-blast, incremental
  refinement). Small enough for CI to run twice per push.
- ``qf_nia``: the QF_NIA refinement set -- seeded NIA instances run
  through the incremental width-refinement engine (the workload the
  ROADMAP's SAT-core overhaul is measured on).
- ``benchgen``: a seeded slice of all four generator logics through the
  solve facade, both unbounded profiles on NIA.
- ``termination``: termination-prover programs through the Automizer
  client (the RQ3 query stream: many similar, mostly-unsat queries),
  each program both in the classic per-query mode (``term/``) and with
  the STAUB lane scoped through push/pop sessions (``term-session/``).
"""

from repro.benchgen import suite_for
from repro.smtlib import parse_script

#: Budget used by bench cases (small: suites must stay CI-fast).
BENCH_BUDGET = 200_000


class BenchCase:
    """One named, deterministic benchmark case.

    Attributes:
        name: unique within the suite; keys the artifact sections.
        kind: coarse grouping label (``solve`` / ``refine`` / ...).
        run: ``run(cache) -> dict`` with at least ``verdict`` and
            ``work``; ``cache`` is a fresh or warmed
            :class:`~repro.cache.SolveCache` the case must route its
            solves through.
    """

    __slots__ = ("name", "kind", "run")

    def __init__(self, name, kind, run):
        self.name = name
        self.kind = kind
        self.run = run

    def __repr__(self):
        return f"BenchCase({self.name!r}, kind={self.kind!r})"


def _solve_case(name, script, profile="zorro", budget=BENCH_BUDGET):
    from repro.solver import solve_script

    def run(cache):
        result = solve_script(script, budget=budget, profile=profile, cache=cache)
        return {
            "verdict": result.status,
            "work": result.work,
            "engine": result.engine,
            "cached": bool(result.cached),
        }

    return BenchCase(name, "solve", run)


def _refine_case(name, script, incremental=True, budget=BENCH_BUDGET):
    from repro.solver import refine_script

    def run(cache):
        report = refine_script(
            script, budget=budget, incremental=incremental, cache=cache
        )
        return {
            "verdict": report.case,
            "work": report.total_work,
            "rounds": len(report.rounds),
            "subrounds": report.subrounds,
            "cache_hits": report.cache_hits,
        }

    return BenchCase(name, "refine", run)


def _arbitrage_case(name, script, budget=BENCH_BUDGET):
    from repro.core.pipeline import Staub

    def run(cache):
        from repro.cache import activated

        with activated(cache):
            report = Staub().run(script, budget=budget)
        return {
            "verdict": report.case,
            "work": report.total_work,
            "width": report.width if report.width is None else int(report.width),
        }

    return BenchCase(name, "arbitrage", run)


def _termination_case(name, program, budget=BENCH_BUDGET, use_sessions=False):
    from repro.cache import activated
    from repro.termination.automizer import Automizer

    def run(cache):
        with activated(cache):
            analysis = Automizer(budget=budget, use_sessions=use_sessions).analyze(
                program
            )
        return {
            "verdict": analysis.verdict,
            "work": analysis.final_work,
            "queries": len(analysis.queries),
            "staub_work": sum(query.staub_work for query in analysis.queries),
            "baseline_work": analysis.baseline_work,
        }

    return BenchCase(name, "termination", run)


_MOTIVATING = (
    "(set-logic QF_NIA)\n"
    "(declare-fun x () Int)(declare-fun y () Int)\n"
    "(assert (= (* x y) 77))(assert (> x 1))(assert (< x y))\n"
    "(check-sat)\n"
)

_BOUNDED = (
    "(declare-fun v () (_ BitVec 8))(declare-fun w () (_ BitVec 8))\n"
    "(assert (= (bvmul v w) (_ bv77 8)))(assert (bvult (_ bv1 8) v))\n"
    "(assert (bvult v w))\n"
    "(check-sat)\n"
)

_UNSAT_NIA = (
    "(set-logic QF_NIA)\n"
    "(declare-fun x () Int)\n"
    "(assert (> x 3))(assert (= (* x x) 4))\n"
    "(check-sat)\n"
)


def _smoke():
    nia = suite_for("QF_NIA", seed=2024, scale=0.04)
    lia = suite_for("QF_LIA", seed=2024, scale=0.03)
    cases = [
        _solve_case("bv/planted-product", parse_script(_BOUNDED)),
        _arbitrage_case("pipeline/motivating", parse_script(_MOTIVATING)),
        _refine_case("refine/unsat-square", parse_script(_UNSAT_NIA)),
    ]
    for benchmark in list(nia)[:2]:
        cases.append(_solve_case(f"nia/{benchmark.name}", benchmark.script))
    for benchmark in list(lia)[:2]:
        cases.append(_solve_case(f"lia/{benchmark.name}", benchmark.script))
    return cases


def _qf_nia():
    cases = []
    for benchmark in suite_for("QF_NIA", seed=2024, scale=0.15):
        cases.append(
            _refine_case(f"refine/{benchmark.name}", benchmark.script, incremental=True)
        )
    return cases


def _benchgen():
    cases = []
    for logic, scale in (
        ("QF_NIA", 0.1),
        ("QF_LIA", 0.1),
        ("QF_NRA", 0.1),
        ("QF_LRA", 0.1),
    ):
        prefix = logic.split("_", 1)[1].lower()
        for benchmark in suite_for(logic, seed=2024, scale=scale):
            cases.append(_solve_case(f"{prefix}/{benchmark.name}", benchmark.script))
            if logic == "QF_NIA":
                cases.append(
                    _solve_case(
                        f"{prefix}/{benchmark.name}/corvus",
                        benchmark.script,
                        profile="corvus",
                    )
                )
    return cases


def _termination():
    from repro.termination.programs import termination_benchmark_suite

    cases = []
    for program, _expected in termination_benchmark_suite(seed=2024, count=4):
        cases.append(_termination_case(f"term/{program.name}", program))
        # The same query stream with the STAUB lane scoped: a shared
        # push/pop session per constraint family, so the iterative
        # candidates pay inference/translation/bit-blasting once. The
        # session-vs-classic comparison (strictly less deterministic
        # STAUB work, verdicts never downgraded) is asserted by
        # tests/test_bench.py over this artifact.
        cases.append(
            _termination_case(
                f"term-session/{program.name}", program, use_sessions=True
            )
        )
    return cases


_SUITES = {
    "smoke": _smoke,
    "qf_nia": _qf_nia,
    "benchgen": _benchgen,
    "termination": _termination,
}


def available_suites():
    """Suite names, sorted."""
    return sorted(_SUITES)


def get_suite(name):
    """Build the cases of a named suite.

    Raises:
        KeyError: unknown suite name.
    """
    try:
        factory = _SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown suite {name!r}; available: {', '.join(available_suites())}"
        ) from None
    return factory()
