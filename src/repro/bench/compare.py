"""Compare a bench artifact against a baseline (``staub bench --compare``).

Two regimes, matching the artifact's two sections:

- The **deterministic** sections are diffed *exactly*. Any difference --
  a changed verdict, a work total that moved, a counter that appeared or
  vanished -- is a finding. This is the regression gate CI enforces: a
  perf PR that changes deterministic work must regenerate the checked-in
  baseline deliberately, making every cost change visible in review.
- The **wall-clock** sections are compared within a relative tolerance,
  and only when one is requested: timings move with the hardware, so by
  default wall drift is reported as informational warnings and never
  fails the comparison.
"""


def _walk_diff(current, baseline, path, findings, limit=200):
    """Structural diff; appends ``(path, kind, detail)`` findings."""
    if len(findings) >= limit:
        return
    if type(current) is not type(baseline):
        findings.append((path, "type", f"{_show(baseline)} -> {_show(current)}"))
        return
    if isinstance(current, dict):
        for key in sorted(set(baseline) | set(current)):
            child = f"{path}.{key}" if path else str(key)
            if key not in current:
                findings.append((child, "removed", _show(baseline[key])))
            elif key not in baseline:
                findings.append((child, "added", _show(current[key])))
            else:
                _walk_diff(current[key], baseline[key], child, findings, limit)
        return
    if isinstance(current, list):
        if len(current) != len(baseline):
            findings.append(
                (path, "length", f"{len(baseline)} -> {len(current)}")
            )
            return
        for index, (cur, base) in enumerate(zip(current, baseline)):
            _walk_diff(cur, base, f"{path}[{index}]", findings, limit)
        return
    if current != baseline:
        findings.append((path, "changed", f"{_show(baseline)} -> {_show(current)}"))


def _show(value):
    text = repr(value)
    return text if len(text) <= 60 else text[:57] + "..."


def compare_payloads(current, baseline, wall_tolerance=None):
    """Compare two bench payloads.

    Args:
        current: the fresh run's payload dict.
        baseline: the baseline payload dict.
        wall_tolerance: relative slowdown allowed before a wall-clock
            drift counts as a regression (e.g. ``0.25`` = 25% slower).
            None (default) keeps wall drift informational.

    Returns:
        ``(regressions, warnings)`` -- lists of human-readable strings.
        Empty ``regressions`` means the gate passes.
    """
    regressions = []
    warnings = []

    if current.get("format") != baseline.get("format"):
        regressions.append(
            "artifact format mismatch: baseline "
            f"{baseline.get('format')!r}, current {current.get('format')!r}"
        )
        return regressions, warnings
    if current.get("suite") != baseline.get("suite"):
        regressions.append(
            f"suite mismatch: baseline {baseline.get('suite')!r}, "
            f"current {current.get('suite')!r}"
        )
        return regressions, warnings

    findings = []
    _walk_diff(
        current.get("deterministic", {}),
        baseline.get("deterministic", {}),
        "",
        findings,
    )
    for path, kind, detail in findings:
        regressions.append(f"deterministic: {path}: {kind}: {detail}")

    cur_wall = current.get("wall_clock", {}).get("cases", {})
    base_wall = baseline.get("wall_clock", {}).get("cases", {})
    for name in sorted(set(cur_wall) & set(base_wall)):
        cur_s = cur_wall[name].get("seconds_median")
        base_s = base_wall[name].get("seconds_median")
        if not cur_s or not base_s:
            continue
        ratio = cur_s / base_s
        message = (
            f"wall-clock: {name}: {base_s:.6f}s -> {cur_s:.6f}s "
            f"({ratio:.2f}x)"
        )
        if wall_tolerance is not None and ratio > 1.0 + wall_tolerance:
            regressions.append(message + f" exceeds tolerance {wall_tolerance:.2f}")
        elif ratio > 1.0:
            warnings.append(message)

    return regressions, warnings


def render_comparison(regressions, warnings):
    """Human-readable comparison report."""
    lines = []
    if regressions:
        lines.append(f"REGRESSIONS ({len(regressions)}):")
        lines.extend(f"  {entry}" for entry in regressions)
    else:
        lines.append("deterministic sections identical")
    if warnings:
        lines.append(f"wall-clock drift (informational, {len(warnings)}):")
        lines.extend(f"  {entry}" for entry in warnings)
    return "\n".join(lines)
