"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SmtLibError(ReproError):
    """Malformed SMT-LIB input or an ill-typed term construction."""


class ParseError(SmtLibError):
    """A syntax error while reading SMT-LIB text.

    Attributes:
        line: 1-based line of the offending token, when known.
        column: 1-based column of the offending token, when known.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SortError(SmtLibError):
    """A term was constructed with operands of the wrong sort."""


class EvaluationError(ReproError):
    """A term could not be evaluated under the given assignment."""


class SolverError(ReproError):
    """The solver stack was used incorrectly or hit an internal limit."""


class UnsupportedLogicError(SolverError):
    """A constraint uses operations outside the supported logics."""


class TransformError(ReproError):
    """STAUB could not transform a constraint to a bounded theory."""


class BudgetExceeded(SolverError):
    """A solver exhausted its deterministic work budget (a timeout).

    Attributes:
        spent: work units actually spent.
        budget: the limit that was exceeded (None = no numeric limit; the
            governor tripped on a deadline or cancellation instead).
        layer: the stack layer that ran out (``"simplex"``, ``"sat"``,
            ...), when known.
    """

    def __init__(self, spent, budget, layer=None):
        limit = "unlimited" if budget is None else budget
        message = f"budget exceeded: spent {spent} of {limit} work units"
        if layer:
            message += f" in {layer}"
        super().__init__(message)
        self.spent = spent
        self.budget = budget
        self.layer = layer


class SessionError(SolverError):
    """An incremental session was driven outside its contract.

    Raised for structural misuse -- popping below the root scope,
    using a closed session -- never for resource exhaustion (which
    degrades to a structured ``unknown`` result instead).
    """


class CacheError(ReproError):
    """The persistent solve cache was unusable (corrupt or unwritable)."""
