"""Pass manager: run term passes to fixpoint over a bounded script."""

from repro.errors import SolverError
from repro.slot.passes import PASS_REGISTRY, AssertionCleanup
from repro.smtlib.script import Script
from repro.smtlib.terms import map_terms


class PassManager:
    """Runs a pipeline of term passes plus assertion cleanup.

    Args:
        passes: pass classes (defaults to :data:`PASS_REGISTRY`).
        max_iterations: fixpoint cap; each iteration runs every pass once.
    """

    def __init__(self, passes=None, max_iterations=4):
        self.passes = [cls() for cls in (passes or PASS_REGISTRY)]
        self.max_iterations = max_iterations
        self.statistics = {cls.name: 0 for cls in (passes or PASS_REGISTRY)}

    def run_on_assertions(self, assertions):
        """Optimize a list of boolean terms; returns the new list."""
        current = list(assertions)
        for _ in range(self.max_iterations):
            changed = False
            for pass_instance in self.passes:
                def rewrite(term, new_args, _pass=pass_instance):
                    return _pass.rewrite(term, new_args)

                rewritten = map_terms(current, rewrite)
                for before, after in zip(current, rewritten):
                    if before is not after:
                        changed = True
                        self.statistics[pass_instance.name] += 1
                current = rewritten
            cleaned, _ = AssertionCleanup().run(current)
            if cleaned != current:
                changed = True
            current = cleaned
            if not changed:
                break
        return current

    def run(self, script):
        """Optimize a bounded script; returns a new :class:`Script`."""
        if not script.is_bounded:
            raise SolverError(
                "SLOT-style optimization only applies to bounded constraints "
                "(run STAUB first; this is the point of RQ2)"
            )
        optimized = Script(logic=script.logic)
        # Preserve original declarations: optimization can erase variables
        # from assertions, but models must still assign them.
        optimized.declarations.update(script.declarations)
        for assertion in self.run_on_assertions(script.assertions):
            optimized.add_assertion(assertion)
        return optimized


def optimize_script(script, passes=None):
    """One-shot convenience wrapper; returns (optimized, statistics)."""
    manager = PassManager(passes)
    optimized = manager.run(script)
    return optimized, dict(manager.statistics)
