"""SLOT analogue: compiler optimizations for bounded SMT constraints.

The paper's RQ2 chains STAUB with SLOT (Mikek & Zhang, ESEC/FSE 2023),
which lowers bitvector/floating-point constraints through LLVM and runs
standard compiler optimizations. This package reproduces the same class
of rewrites natively on the bounded term IR:

- constant folding,
- algebraic identity simplification (InstCombine-style),
- strength reduction (multiply/divide by powers of two become shifts),
- commutative canonicalization + global value numbering (CSE),
- assertion-level cleanup (dedup, drop ``true``, short-circuit ``false``).

None of these passes apply to unbounded constraints -- machine-semantics
rewrites need machine semantics -- which is exactly why STAUB "unlocks"
them (Section 5.3).
"""

from repro.slot.passes import (
    PASS_REGISTRY,
    AlgebraicSimplify,
    AssertionCleanup,
    Canonicalize,
    ConstantFold,
    StrengthReduce,
)
from repro.slot.manager import PassManager, optimize_script

__all__ = [
    "PASS_REGISTRY",
    "AlgebraicSimplify",
    "AssertionCleanup",
    "Canonicalize",
    "ConstantFold",
    "StrengthReduce",
    "PassManager",
    "optimize_script",
]
