"""Individual optimization passes over bounded terms.

Each pass is a bottom-up rewrite implemented with
:func:`repro.smtlib.terms.map_terms`; hash-consing makes repeated
applications cheap and gives CSE for free once operands are canonicalized.
All passes are semantics-preserving over the bounded theory -- the
property-based tests check every pass against the exact evaluator on
random terms and assignments.
"""

from repro.smtlib import build
from repro.smtlib.evaluator import _eval_node
from repro.smtlib.sorts import BOOL
from repro.smtlib.terms import Op, Term
from repro.smtlib.values import BVValue


class Pass:
    """Base class: a named bottom-up term rewrite."""

    name = "pass"

    def rewrite(self, term, new_args):
        """Return the replacement for ``term`` given rewritten args."""
        raise NotImplementedError

    def _rebuild(self, term, new_args):
        if not term.args and not new_args:
            return term
        if all(a is b for a, b in zip(term.args, new_args)) and len(term.args) == len(
            new_args
        ):
            return term
        return Term(term.op, tuple(new_args), term.payload, term.sort)


#: Operators whose results we can fold when all arguments are literals.
_FOLDABLE = {
    Op.NOT, Op.AND, Op.OR, Op.XOR, Op.IMPLIES, Op.ITE, Op.EQ, Op.DISTINCT,
    Op.BVNOT, Op.BVAND, Op.BVOR, Op.BVXOR, Op.BVNEG, Op.BVADD, Op.BVSUB,
    Op.BVMUL, Op.BVUDIV, Op.BVSDIV, Op.BVUREM, Op.BVSREM, Op.BVSMOD,
    Op.BVSHL, Op.BVLSHR, Op.BVASHR, Op.BVULT, Op.BVULE, Op.BVUGT, Op.BVUGE,
    Op.BVSLT, Op.BVSLE, Op.BVSGT, Op.BVSGE, Op.BVABS, Op.CONCAT, Op.EXTRACT,
    Op.ZERO_EXTEND, Op.SIGN_EXTEND, Op.BVSADDO, Op.BVUADDO, Op.BVSSUBO,
    Op.BVUSUBO, Op.BVSMULO, Op.BVUMULO, Op.BVSDIVO, Op.BVNEGO,
}


class ConstantFold(Pass):
    """Evaluate any operator whose operands are all literals."""

    name = "constant-fold"

    def rewrite(self, term, new_args):
        term = self._rebuild(term, new_args)
        if term.op in _FOLDABLE and term.args and all(a.is_const for a in term.args):
            value = _eval_node(term, [a.value for a in term.args])
            return build.Const(value, term.sort)
        return term


def _const_unsigned(term):
    if term.is_const and isinstance(term.value, BVValue):
        return term.value.unsigned
    return None


class AlgebraicSimplify(Pass):
    """InstCombine-style identities on bitvector and boolean terms."""

    name = "algebraic-simplify"

    def rewrite(self, term, new_args):
        term = self._rebuild(term, new_args)
        op = term.op
        args = term.args
        if op is Op.BVADD:
            if _const_unsigned(args[0]) == 0:
                return args[1]
            if _const_unsigned(args[1]) == 0:
                return args[0]
        elif op is Op.BVSUB:
            if _const_unsigned(args[1]) == 0:
                return args[0]
            if args[0] is args[1]:
                return build.BitVecConst(0, term.sort.width)
        elif op is Op.BVMUL:
            for index in (0, 1):
                value = _const_unsigned(args[index])
                if value == 0:
                    return build.BitVecConst(0, term.sort.width)
                if value == 1:
                    return args[1 - index]
        elif op in (Op.BVAND, Op.BVOR, Op.BVXOR):
            width = term.sort.width
            ones = (1 << width) - 1
            left_value = _const_unsigned(args[0])
            right_value = _const_unsigned(args[1])
            if args[0] is args[1]:
                if op is Op.BVXOR:
                    return build.BitVecConst(0, width)
                return args[0]
            for own, other in ((left_value, args[1]), (right_value, args[0])):
                if own is None:
                    continue
                if op is Op.BVAND:
                    if own == 0:
                        return build.BitVecConst(0, width)
                    if own == ones:
                        return other
                elif op is Op.BVOR:
                    if own == 0:
                        return other
                    if own == ones:
                        return build.BitVecConst(ones, width)
                elif op is Op.BVXOR and own == 0:
                    return other
        elif op is Op.BVNOT:
            if args[0].op is Op.BVNOT:
                return args[0].args[0]
        elif op is Op.BVNEG:
            if args[0].op is Op.BVNEG:
                return args[0].args[0]
        elif op is Op.NOT:
            if args[0].op is Op.NOT:
                return args[0].args[0]
            if args[0].is_const:
                return build.BoolConst(not args[0].value)
        elif op is Op.EQ:
            if args[0] is args[1]:
                return build.TRUE
        elif op in (Op.BVULE, Op.BVSLE, Op.BVUGE, Op.BVSGE):
            if args[0] is args[1]:
                return build.TRUE
        elif op in (Op.BVULT, Op.BVSLT, Op.BVUGT, Op.BVSGT):
            if args[0] is args[1]:
                return build.FALSE
        elif op is Op.AND:
            kept = []
            for arg in term.args:
                if arg.is_const:
                    if not arg.value:
                        return build.FALSE
                    continue
                kept.append(arg)
            if len(kept) != len(term.args):
                return build.And(*kept) if kept else build.TRUE
        elif op is Op.OR:
            kept = []
            for arg in term.args:
                if arg.is_const:
                    if arg.value:
                        return build.TRUE
                    continue
                kept.append(arg)
            if len(kept) != len(term.args):
                return build.Or(*kept) if kept else build.FALSE
        elif op is Op.ITE:
            if args[0].is_const:
                return args[1] if args[0].value else args[2]
            if args[1] is args[2]:
                return args[1]
        return term


class StrengthReduce(Pass):
    """Multiplication/division by powers of two become shifts.

    Shifts by a constant are pure rewiring for the bit-blaster, while a
    generic multiplier is a quadratic adder tree -- this is the flagship
    compiler optimization the paper's SLOT pipeline gets from LLVM.
    """

    name = "strength-reduce"

    @staticmethod
    def _power_of_two(term):
        value = _const_unsigned(term)
        if value is not None and value > 1 and (value & (value - 1)) == 0:
            return value.bit_length() - 1
        return None

    def rewrite(self, term, new_args):
        term = self._rebuild(term, new_args)
        op = term.op
        if op is Op.BVMUL:
            for index in (0, 1):
                shift = self._power_of_two(term.args[index])
                if shift is not None:
                    width = term.sort.width
                    return build.bv_binary(
                        Op.BVSHL,
                        term.args[1 - index],
                        build.BitVecConst(shift, width),
                    )
        elif op is Op.BVUDIV:
            shift = self._power_of_two(term.args[1])
            if shift is not None:
                width = term.sort.width
                return build.bv_binary(
                    Op.BVLSHR, term.args[0], build.BitVecConst(shift, width)
                )
        elif op is Op.BVUREM:
            value = _const_unsigned(term.args[1])
            if value is not None and value > 0 and (value & (value - 1)) == 0:
                width = term.sort.width
                return build.bv_binary(
                    Op.BVAND,
                    term.args[0],
                    build.BitVecConst(value - 1, width),
                )
        return term


#: Commutative operators canonicalized by operand identity. The
#: commutative overflow predicates are included so that the guard pairs
#: STAUB emits for mirrored products (bvsmulo x y / bvsmulo y x) merge.
_COMMUTATIVE = {
    Op.BVADD,
    Op.BVMUL,
    Op.BVAND,
    Op.BVOR,
    Op.BVXOR,
    Op.EQ,
    Op.BVSADDO,
    Op.BVUADDO,
    Op.BVSMULO,
    Op.BVUMULO,
}


def _term_key(term):
    """A deterministic content-based ordering key for canonicalization.

    Using content (not tid) keeps the ordering stable across runs and
    independent of construction order, so mirrored expressions like
    ``x*y`` and ``y*x`` always normalize identically.
    """
    if term.is_const:
        value = term.value
        if isinstance(value, BVValue):
            return (0, "", value.unsigned)
        return (0, "", int(value) if not isinstance(value, bool) else int(value))
    if term.is_var:
        return (1, term.name, 0)
    return (2, term.op.value, term.tid)


class Canonicalize(Pass):
    """Sort commutative operands; hash-consing then merges mirror terms.

    This is the GVN/CSE step: after canonicalization, ``x*y`` and ``y*x``
    are the *same* node, so the bit-blaster emits one multiplier for both.
    """

    name = "canonicalize"

    def rewrite(self, term, new_args):
        term = self._rebuild(term, new_args)
        if term.op in _COMMUTATIVE and len(term.args) >= 2:
            ordered = sorted(term.args, key=_term_key)
            if ordered != list(term.args):
                return Term(term.op, tuple(ordered), term.payload, term.sort)
        if term.op in (Op.AND, Op.OR, Op.XOR) and len(term.args) >= 2:
            ordered = sorted(term.args, key=_term_key)
            # Also deduplicate idempotent operands (and/or only).
            if term.op is not Op.XOR:
                deduped = []
                for arg in ordered:
                    if not deduped or deduped[-1] is not arg:
                        deduped.append(arg)
                ordered = deduped
            if len(ordered) == 1:
                return ordered[0]
            if ordered != list(term.args):
                return Term(term.op, tuple(ordered), term.payload, term.sort)
        return term


class AssertionCleanup:
    """Script-level pass: drop ``true`` assertions, dedup, detect ``false``.

    Unlike the term passes this operates on the assertion list; it returns
    the new list plus a flag for a literally-false assertion (the script
    is then trivially unsat).
    """

    name = "assertion-cleanup"

    def run(self, assertions):
        seen = set()
        kept = []
        trivially_false = False
        for assertion in assertions:
            if assertion.is_const:
                if assertion.value:
                    continue
                trivially_false = True
                kept = [build.FALSE]
                break
            if assertion.tid in seen:
                continue
            seen.add(assertion.tid)
            kept.append(assertion)
        return kept, trivially_false


#: Default pass order, mirroring an -O2-style pipeline.
PASS_REGISTRY = (
    ConstantFold,
    AlgebraicSimplify,
    StrengthReduce,
    Canonicalize,
)
