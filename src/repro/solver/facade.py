"""Top-level solving entry point: route a script to the right engine.

``solve_script`` detects the script's logic, dispatches bounded scripts to
the bit-blasting back end and unbounded ones to DPLL(T) over the profile's
theory engine, and reports results on the unified virtual clock
(:mod:`repro.solver.costs`).
"""

from repro.bv.solver import solve_bounded_script
from repro.errors import UnsupportedLogicError
from repro.solver import costs
from repro.solver.dpllt import solve_with_theory
from repro.solver.profiles import get_profile
from repro.solver.result import SAT, UNKNOWN, UNSAT, SolveResult


def _bounded_logic(script):
    return all(sort.is_bounded for sort in script.declarations.values())


def solve_script(script, budget=None, profile="zorro"):
    """Solve a script under a profile with a unified work budget.

    Args:
        script: a :class:`~repro.smtlib.script.Script` in one of the
            supported quantifier-free logics.
        budget: unified work budget (None = unlimited). Exhaustion yields
            status ``"unknown"`` -- the reproduction's timeout.
        profile: profile name or :class:`SolverProfile`.

    Returns:
        A :class:`~repro.solver.result.SolveResult` whose ``work`` is in
        unified units regardless of engine.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)

    if _bounded_logic(script):
        if any(sort.is_fp for sort in script.declarations.values()):
            raise UnsupportedLogicError(
                "floating-point scripts are solved through the fixed-point "
                "encoding (see repro.fp.fixedpoint), not directly"
            )
        bounded = solve_bounded_script(script, max_work=budget)
        return SolveResult(
            bounded.status,
            bounded.model,
            costs.from_sat(bounded.work),
            engine="bv",
            detail={
                "cnf_vars": bounded.cnf_vars,
                "cnf_clauses": bounded.cnf_clauses,
                **bounded.stats.as_dict(),
            },
        )

    logic = script.logic or script.infer_logic()
    if logic not in ("QF_LIA", "QF_LRA", "QF_NIA", "QF_NRA"):
        # Scripts that mix or mis-declare logics still route by inference.
        logic = script.infer_logic()
    if logic not in ("QF_LIA", "QF_LRA", "QF_NIA", "QF_NRA"):
        raise UnsupportedLogicError(f"unsupported logic {logic}")

    engine_factory = profile.engine_for(logic)
    if logic in ("QF_LIA", "QF_LRA"):
        raw_budget = costs.budget_for_simplex(budget)
        to_unified = costs.from_simplex
        engine_name = "simplex-bb" if logic == "QF_LIA" else "simplex"
    else:
        raw_budget = costs.budget_for_interval(budget)
        to_unified = costs.from_interval
        engine_name = "nia" if logic == "QF_NIA" else "nra"
        if logic == "QF_NIA":
            engine_name = f"nia-{profile.name}"

    status, model, theory_work, sat_work = solve_with_theory(
        script, engine_factory, budget=raw_budget
    )
    work = to_unified(theory_work) + costs.from_sat(sat_work)
    return SolveResult(status, model, work, engine=engine_name)
