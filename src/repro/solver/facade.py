"""Top-level solving entry point: route a script to the right engine.

``solve_script`` detects the script's logic, dispatches bounded scripts to
the bit-blasting back end and unbounded ones to DPLL(T) over the profile's
theory engine, and reports results on the unified virtual clock
(:mod:`repro.solver.costs`).

Both paths populate the same uniform ``stats`` dict on the result (see
:mod:`repro.telemetry.stats`); the historical engine-specific ``detail``
dict survives as a deprecated alias of ``stats``.

When a :class:`~repro.cache.SolveCache` is active (installed via
:func:`repro.cache.set_cache` or passed explicitly), solves are keyed by
the canonical form of the normalized script plus the (profile, budget)
parameters, and repeated identical questions are answered from the cache
with ``result.cached`` set.
"""

from repro import cache as solve_cache
from repro import guard, telemetry
from repro.bv.solver import assertion_core_digests, solve_bounded_script
from repro.cache.keys import cache_key, script_digests
from repro.cache.store import entry_from_result, result_from_entry
from repro.errors import BudgetExceeded, UnsupportedLogicError
from repro.guard import chaos
from repro.solver import costs
from repro.solver.dpllt import solve_with_theory
from repro.solver.profiles import get_profile
from repro.solver.result import SAT, UNKNOWN, UNSAT, SolveResult
from repro.telemetry.stats import unified_stats


def _bounded_logic(script):
    return all(sort.is_bounded for sort in script.declarations.values())


def solve_script(script, budget=None, profile="zorro", cache=None, governor=None):
    """Solve a script under a profile with a unified resource envelope.

    Args:
        script: a :class:`~repro.smtlib.script.Script` in one of the
            supported quantifier-free logics.
        budget: unified work budget (None = unlimited). Exhaustion yields
            status ``"unknown"`` -- the reproduction's timeout.
        profile: profile name or :class:`SolverProfile`.
        cache: a :class:`~repro.cache.SolveCache` overriding the
            process-wide active cache (None = use the active one, if any).
        governor: a :class:`~repro.guard.ResourceBudget` governing this
            solve (deadline, cancellation, depth/memory ceilings). Built
            from ``budget`` when omitted; an already-active outer
            governor (e.g. a portfolio race deadline) becomes its parent.

    Returns:
        A :class:`~repro.solver.result.SolveResult` whose ``work`` is in
        unified units regardless of engine. Resource exhaustion in *any*
        layer comes back as a structured ``"unknown"`` (with the layer
        that gave up in ``stats["gave_up"]``), never as a raised
        :class:`~repro.errors.BudgetExceeded`.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)

    outer = guard.active()
    if governor is None:
        governor = guard.ResourceBudget(
            work=budget, parent=outer if outer is not guard.NULL_GOVERNOR else None
        )
    elif budget is None:
        budget = governor.work_limit

    store = cache if cache is not None else solve_cache.get_cache()
    key = None
    if store is not None:
        key = cache_key(script, profile=profile.name, budget=budget)
        with telemetry.span("cache-lookup", profile=profile.name) as span:
            entry = store.get(key)
            span.set_attr("hit", entry is not None)
            core = None
            if entry is None and store.has_cores() and script.assertions:
                # Whole-key miss: a cached unsat core that is a subset of
                # this script's assertion set still proves it unsat with
                # zero solving (Cache-a-lot subsumption).
                core = store.find_core(script_digests(script))
                span.set_attr("core_hit", core is not None)
        if entry is not None:
            return result_from_entry(entry)
        if core is not None:
            return SolveResult(
                UNSAT,
                None,
                0,
                engine="core-reuse",
                stats=unified_stats(core_reuse=True),
                cached=True,
            )

    plan = chaos.active()
    injected_before = plan.total_injected if plan is not None else 0
    with guard.activate(governor):
        chaos.inject("solver.pre_solve", salt=profile.name, governor=governor)
        try:
            result = _solve_uncached(script, budget, profile)
        except BudgetExceeded as error:
            # Safety net: no engine should leak this, but if one does the
            # caller still gets a structured best-effort unknown.
            result = _gave_up_result(governor, error, profile)
    if governor.work_limit is not None:
        # Cumulative accounting: a governor reused across solves (e.g. a
        # portfolio race) trips its work ceiling on the next check.
        governor.spent += result.work
    if governor.gave_up_layer is not None:
        result.stats.setdefault("gave_up", governor.gave_up_layer)
        result.stats.setdefault("gave_up_reason", governor.reason)
    if store is not None and _cacheable(result, governor, plan, injected_before):
        try:
            store.put(key, entry_from_result(result))
        except TypeError:
            pass  # model value with no JSON encoding: don't cache it
        if (
            result.status == UNSAT
            and store.core_reuse
            and script.assertions
            and _bounded_logic(script)
        ):
            digests = assertion_core_digests(script, max_work=budget)
            if digests is not None:
                store.add_core(digests)
    return result


def refine_script(
    script,
    budget=None,
    incremental=False,
    growth_factor=2,
    max_rounds=3,
    max_width=24,
    initial_width=None,
    headroom=0,
    cache=None,
):
    """Solve with width refinement: widen and retry on bounded-unsat.

    A thin façade over :class:`repro.core.refinement.RefinementStaub`,
    matching :func:`solve_script`'s cache conventions (per-round entries
    land in the active process-wide cache unless ``cache`` overrides it).

    Returns:
        A :class:`repro.core.refinement.RefinementReport`.
    """
    # Local import: repro.core imports this package for cost accounting,
    # so a top-level import would be circular.
    from repro.core.refinement import RefinementStaub

    loop = RefinementStaub(
        growth_factor=growth_factor,
        max_rounds=max_rounds,
        max_width=max_width,
        initial_width=initial_width,
        incremental=incremental,
        headroom=headroom,
        cache=cache,
    )
    return loop.run(script, budget=budget)


def open_session(profile="zorro", budget=None, cache=None):
    """Start an incremental session sharing this facade's conventions.

    A :class:`~repro.solver.session.Session` answers a *stream* of
    ``check-sat`` questions over a push/pop assertion stack, paying
    bit-blasting once for bounded stacks. Unbounded stacks fall back to
    :func:`solve_script` of the flattened scopes, so a session is never
    worse than scratch solving.
    """
    # Local import: the session module builds on this facade.
    from repro.solver.session import Session

    return Session(profile=profile, budget=budget, cache=cache)


def _gave_up_result(governor, error, profile):
    """A structured unknown for a budget error that escaped an engine."""
    layer = getattr(error, "layer", None) or "solver"
    governor.note_give_up(layer, "work")
    telemetry.counter_add("solve.budget_exceeded", profile=profile.name, layer=layer)
    stats = unified_stats(gave_up=layer, gave_up_reason=governor.reason)
    result = SolveResult(
        UNKNOWN, None, getattr(error, "spent", 0) or 0, engine="guard", stats=stats
    )
    _record_solve(result, profile.name)
    return result


def _cacheable(result, governor, plan, injected_before):
    """Whether a fresh result may be persisted.

    Deadline/cancellation unknowns are wall-clock artifacts and chaos-
    perturbed results are fault artifacts; caching either would let a
    transient condition poison every warm rerun.
    """
    if governor.reason in ("deadline", "cancelled"):
        return False
    if plan is not None and plan.total_injected != injected_before:
        return False
    return True


def _solve_uncached(script, budget, profile):
    """The engine-dispatch core of :func:`solve_script` (cache miss path)."""
    if _bounded_logic(script):
        if any(sort.is_fp for sort in script.declarations.values()):
            raise UnsupportedLogicError(
                "floating-point scripts are solved through the fixed-point "
                "encoding (see repro.fp.fixedpoint), not directly"
            )
        with telemetry.span("solve", engine="bv", profile=profile.name) as span:
            bounded = solve_bounded_script(script, max_work=budget)
            work = costs.from_sat(bounded.work)
            span.settle(work)
        result = SolveResult(
            bounded.status,
            bounded.model,
            work,
            engine="bv",
            stats=bounded.stats_dict(),
        )
        _record_solve(result, profile.name)
        return result

    logic = script.logic or script.infer_logic()
    if logic not in ("QF_LIA", "QF_LRA", "QF_NIA", "QF_NRA"):
        # Scripts that mix or mis-declare logics still route by inference.
        logic = script.infer_logic()
    if logic not in ("QF_LIA", "QF_LRA", "QF_NIA", "QF_NRA"):
        raise UnsupportedLogicError(f"unsupported logic {logic}")

    engine_factory = profile.engine_for(logic)
    if logic in ("QF_LIA", "QF_LRA"):
        raw_budget = costs.budget_for_simplex(budget)
        to_unified = costs.from_simplex
        engine_name = "simplex-bb" if logic == "QF_LIA" else "simplex"
    else:
        raw_budget = costs.budget_for_interval(budget)
        to_unified = costs.from_interval
        engine_name = "nia" if logic == "QF_NIA" else "nra"
        if logic == "QF_NIA":
            engine_name = f"nia-{profile.name}"

    with telemetry.span("solve", engine=engine_name, profile=profile.name) as span:
        outcome = solve_with_theory(script, engine_factory, budget=raw_budget)
        status, model, theory_work, sat_work = outcome
        work = to_unified(theory_work) + costs.from_sat(sat_work)
        span.settle(work)
    result = SolveResult(
        status, model, work, engine=engine_name, stats=outcome.stats
    )
    _record_solve(result, profile.name)
    return result


def _record_solve(result, profile_name):
    """Metrics hook: one bulk counter update per top-level solve."""
    if not telemetry.enabled:
        return
    telemetry.counter_add(
        "solve.requests", engine=result.engine, profile=profile_name
    )
    telemetry.counter_add(
        "solve.status", engine=result.engine, status=result.status
    )
    telemetry.observe(
        "solve.work", result.work, engine=result.engine, profile=profile_name
    )
