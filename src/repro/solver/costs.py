"""Unified virtual-cost model.

Each engine counts its own natural work unit (SAT propagations, simplex
pivots, interval node evaluations). These differ wildly in wall-clock cost
per unit, so the evaluation harness converts everything into *unified
work units* -- calibrated so one unit corresponds to roughly the cost of
one SAT propagation step. Experiments then compare engines on one
deterministic, machine-independent clock.

The calibration constants were measured on this implementation (see
``tests/test_costs.py`` for the sanity bounds); they only need to be
right to within a small factor for the paper's comparisons to be
meaningful, since the effects being reproduced are orders of magnitude.
"""

#: One CDCL step (propagation-dominated): the base unit.
SAT_STEP = 1

#: One interval node evaluation / exact term evaluation step: Fraction
#: arithmetic over term DAG nodes.
INTERVAL_STEP = 20

#: One simplex pivot (row updates over exact rationals).
PIVOT_STEP = 100


def from_sat(work):
    """Unified work of a bounded (bit-blast + CDCL) run."""
    return work * SAT_STEP


def from_interval(work):
    """Unified work of an ICP engine (NIA / NRA) run."""
    return work * INTERVAL_STEP


def from_simplex(work):
    """Unified work of a simplex-based engine (LRA / LIA) run."""
    return work * PIVOT_STEP


def budget_for_interval(unified_budget):
    """Translate a unified budget into raw ICP units."""
    return None if unified_budget is None else max(1, unified_budget // INTERVAL_STEP)


def budget_for_simplex(unified_budget):
    """Translate a unified budget into raw simplex units."""
    return None if unified_budget is None else max(1, unified_budget // PIVOT_STEP)
